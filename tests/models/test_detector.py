"""Tests for the simulated detector."""

import numpy as np
import pytest

from repro.data import build_validation_set
from repro.data.backgrounds import background
from repro.data.scene import SceneState
from repro.models import default_zoo, detect, shared_scene_noise
from repro.models.detector import DetectionOutcome


def _scene(distance=0.2, name="open_sky", visible=True):
    return SceneState(
        background=background(name),
        background_name=name,
        cx=48.0,
        cy=48.0,
        distance=distance,
        visible=visible,
    )


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def yolov7(zoo):
    return zoo.get("yolov7")


@pytest.fixture(scope="module")
def tiny_ssd(zoo):
    return zoo.get("ssd-mobilenet-v2-320")


class TestDeterminism:
    def test_same_inputs_same_outcome(self, yolov7):
        scene = _scene()
        a = detect(yolov7, scene, (1, 5))
        b = detect(yolov7, scene, (1, 5))
        assert a == b

    def test_different_frames_differ(self, yolov7):
        scene = _scene()
        outcomes = {detect(yolov7, scene, (1, i)).confidence for i in range(12)}
        assert len(outcomes) > 1

    def test_different_models_differ(self, zoo):
        scene = _scene(distance=0.5)
        confs = {spec.name: detect(spec, scene, (1, 3)).confidence for spec in zoo}
        assert len(set(confs.values())) > 1


class TestOutcomeStructure:
    def test_easy_scene_detected_well(self, yolov7):
        outcome = detect(yolov7, _scene(distance=0.05), (2, 1))
        assert outcome.detected
        assert outcome.iou > 0.5
        assert outcome.confidence >= 0.35
        assert outcome.box is not None

    def test_impossible_scene_mostly_missed(self, tiny_ssd):
        misses = 0
        for i in range(30):
            outcome = detect(tiny_ssd, _scene(distance=0.95, name="forest_shade"), (3, i))
            if not outcome.detected or outcome.iou < 0.1:
                misses += 1
        assert misses >= 25

    def test_invisible_target_never_has_true_iou(self, yolov7):
        for i in range(20):
            outcome = detect(yolov7, _scene(visible=False), (4, i))
            assert outcome.iou == 0.0
            if outcome.detected:
                assert outcome.false_positive

    def test_iou_bounds(self, zoo):
        for spec in zoo:
            for i in range(10):
                outcome = detect(spec, _scene(distance=0.4), (5, i))
                assert 0.0 <= outcome.iou <= 1.0
                assert 0.0 <= outcome.confidence <= 1.0
                assert 0.0 <= outcome.quality <= 1.0

    def test_missed_detection_reports_subthreshold_confidence(self, tiny_ssd):
        found_miss = False
        for i in range(40):
            outcome = detect(tiny_ssd, _scene(distance=0.9, name="forest_shade"), (6, i))
            if not outcome.detected:
                found_miss = True
                assert outcome.box is None
                assert outcome.confidence < 0.35
        assert found_miss

    def test_box_inside_frame(self, zoo):
        for spec in zoo:
            outcome = detect(spec, _scene(distance=0.3), (7, 0))
            if outcome.box is not None:
                assert 0 <= outcome.box.x1 <= 96 and 0 <= outcome.box.y2 <= 96


class TestAccuracyStructure:
    def test_quality_decreases_with_difficulty(self, yolov7):
        easy = np.mean([detect(yolov7, _scene(distance=0.1), (8, i)).quality for i in range(20)])
        hard = np.mean(
            [
                detect(yolov7, _scene(distance=0.8, name="forest_shade"), (8, i)).quality
                for i in range(20)
            ]
        )
        assert easy > hard + 0.2

    def test_confidences_correlate_across_models(self, zoo):
        """Shared scene noise induces cross-model confidence correlation —
        the statistical basis of the confidence graph."""
        samples = build_validation_set(200, seed=31)
        yolo_conf, ssd_conf = [], []
        yolo = zoo.get("yolov7")
        ssd = zoo.get("ssd-mobilenet-v1")
        for sample in samples:
            yolo_conf.append(detect(yolo, sample.scene, sample.context_id).confidence)
            ssd_conf.append(detect(ssd, sample.scene, sample.context_id).confidence)
        correlation = np.corrcoef(yolo_conf, ssd_conf)[0, 1]
        assert correlation > 0.5

    def test_ssd_overconfident_on_hard_frames(self, zoo):
        """SSD confidence exceeds its true quality on hard frames."""
        ssd = zoo.get("ssd-mobilenet-v1")
        gaps = []
        for i in range(40):
            outcome = detect(ssd, _scene(distance=0.7, name="tree_line"), (9, i))
            gaps.append(outcome.confidence - outcome.quality)
        assert np.mean(gaps) > 0.05

    def test_temporal_smoothness_within_stream(self, yolov7):
        """Consecutive frames of one stream see similar quality (smooth
        noise), unlike frames from different streams."""
        scene = _scene(distance=0.5)
        qualities = [detect(yolov7, scene, (10, i)).quality for i in range(60)]
        step = np.mean(np.abs(np.diff(qualities)))
        spread = np.std(qualities)
        assert step < spread  # adjacent frames closer than the global spread

    def test_shared_noise_deterministic(self):
        assert shared_scene_noise((1, 2)) == shared_scene_noise((1, 2))
        assert shared_scene_noise((1, 2)) != shared_scene_noise((1, 3))


class TestDataclass:
    def test_outcome_fields(self, yolov7):
        outcome = detect(yolov7, _scene(), (11, 0))
        assert isinstance(outcome, DetectionOutcome)
        assert outcome.model_name == "yolov7"
