"""Tests for model specs, skill curves, and calibrations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import ConfidenceCalibration, ModelSpec, SkillCurve


def _spec(**overrides):
    params = {
        "name": "m",
        "family": "yolo",
        "input_size": 640,
        "params_millions": 30.0,
        "skill": SkillCurve(peak=0.8, break_point=0.5, width=0.15),
        "calibration": ConfidenceCalibration(scale=1.0, bias=0.0, noise=0.05),
    }
    params.update(overrides)
    return ModelSpec(**params)


class TestSkillCurve:
    def test_quality_below_peak(self):
        curve = SkillCurve(peak=0.8, break_point=0.5, width=0.15)
        assert 0.0 < curve.quality(0.0) <= 0.8

    def test_monotonically_decreasing(self):
        curve = SkillCurve(peak=0.8, break_point=0.5, width=0.15)
        values = [curve.quality(d) for d in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_half_peak_at_break_point(self):
        curve = SkillCurve(peak=0.8, break_point=0.5, width=0.15)
        assert curve.quality(0.5) == pytest.approx(0.4)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SkillCurve(peak=0.0, break_point=0.5, width=0.1)
        with pytest.raises(ValueError):
            SkillCurve(peak=0.5, break_point=2.0, width=0.1)
        with pytest.raises(ValueError):
            SkillCurve(peak=0.5, break_point=0.5, width=0.0)

    @given(st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=50)
    def test_quality_in_unit_interval(self, difficulty):
        curve = SkillCurve(peak=0.9, break_point=0.6, width=0.2)
        assert 0.0 <= curve.quality(difficulty) <= 0.9


class TestCalibration:
    def test_mean_confidence_clipped(self):
        calib = ConfidenceCalibration(scale=1.0, bias=0.5, noise=0.0)
        assert calib.mean_confidence(0.9) == 1.0
        assert ConfidenceCalibration(scale=1.0, bias=-0.5, noise=0.0).mean_confidence(0.1) == 0.0

    def test_overconfident_family_inflates_low_quality(self):
        honest = ConfidenceCalibration(scale=1.0, bias=0.0, noise=0.0)
        overconfident = ConfidenceCalibration(scale=0.78, bias=0.20, noise=0.0)
        assert overconfident.mean_confidence(0.2) > honest.mean_confidence(0.2)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceCalibration(scale=0.0, bias=0.0, noise=0.0)
        with pytest.raises(ValueError):
            ConfidenceCalibration(scale=1.0, bias=0.0, noise=-0.1)


class TestModelSpec:
    def test_valid(self):
        assert _spec().name == "m"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            _spec(name="")

    def test_invalid_input_size_rejected(self):
        with pytest.raises(ValueError):
            _spec(input_size=0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            _spec(params_millions=0.0)
        with pytest.raises(ValueError):
            _spec(model_noise=-0.1)
        with pytest.raises(ValueError):
            _spec(false_positive_rate=3.0)
        with pytest.raises(ValueError):
            _spec(no_response_floor=1.0)

    def test_salt_stable_and_distinct(self):
        assert _spec(name="a").salt == _spec(name="a").salt
        assert _spec(name="a").salt != _spec(name="b").salt
