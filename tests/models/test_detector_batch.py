"""Scalar-vs-batched detection equality: the batch engine's contract.

``detect_batch`` must produce *bit-identical* ``DetectionOutcome``s to the
scalar ``detect`` loop for every scenario the suite evaluates — the six
paper scenarios and the frozen ``x_*`` extended flights — plus arbitrary
validation-set-shaped batches.  Speed must never change results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import build_validation_set, evaluation_scenarios, extended_scenarios
from repro.data.generator import scenario_scenes
from repro.models import default_zoo
from repro.models.detector import SceneBatch, detect, detect_batch

ZOO = default_zoo()

# Small but representative slices: every segment survives scaling (>= 2
# frames), every knot window and stream type gets exercised.
ROSTER = [scenario.scaled(0.06) for scenario in evaluation_scenarios()] + [
    scenario.scaled(0.06) for scenario in extended_scenarios()
]


def _scalar_outcomes(spec, scenes, seed):
    return [detect(spec, scene, (seed, i)) for i, scene in enumerate(scenes)]


class TestRosterEquality:
    def test_bit_identical_outcomes_across_full_roster(self):
        for scenario in ROSTER:
            scenes = scenario_scenes(scenario)
            batch = SceneBatch(scenes, scenario.seed)
            for spec in ZOO:
                batched = detect_batch(spec, batch)
                reference = _scalar_outcomes(spec, scenes, scenario.seed)
                assert batched == reference, (scenario.name, spec.name)

    def test_outcome_fields_are_plain_python_floats(self):
        # Trace persistence json-serializes outcome fields directly; a
        # stray np.float64 would crash the store writer.
        scenario = ROSTER[0]
        batch = SceneBatch(scenario_scenes(scenario), scenario.seed)
        for outcome in detect_batch(ZOO.specs()[0], batch):
            assert type(outcome.confidence) is float
            assert type(outcome.quality) is float
            assert type(outcome.iou) is float
            if outcome.box is not None:
                assert type(outcome.box.x1) is float


class TestValidationShapedBatches:
    @settings(max_examples=15)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        size=st.integers(min_value=1, max_value=24),
    )
    def test_property_batch_equals_scalar_on_validation_samples(self, seed, size):
        samples = build_validation_set(size=size, seed=seed)
        scenes = [sample.scene for sample in samples]
        indices = [sample.context_id[1] for sample in samples]
        batch = SceneBatch(scenes, seed, frame_indices=indices)
        spec = ZOO.specs()[seed % len(ZOO)]
        batched = detect_batch(spec, batch)
        reference = [detect(spec, s.scene, s.context_id) for s in samples]
        assert batched == reference

    def test_non_contiguous_frame_indices(self):
        samples = build_validation_set(size=40, seed=11)
        picked = samples[::3]
        batch = SceneBatch(
            [s.scene for s in picked], 11, frame_indices=[s.context_id[1] for s in picked]
        )
        for spec in ZOO.specs()[:2]:
            batched = detect_batch(spec, batch)
            assert batched == [detect(spec, s.scene, s.context_id) for s in picked]


class TestSceneBatch:
    def test_empty_batch(self):
        batch = SceneBatch([], 5)
        assert detect_batch(ZOO.specs()[0], batch) == []

    def test_misaligned_frame_indices_rejected(self):
        samples = build_validation_set(size=3, seed=1)
        scenes = [s.scene for s in samples]
        try:
            SceneBatch(scenes, 1, frame_indices=[0, 1])
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for misaligned frame_indices")

    def test_precomputed_truths_and_difficulties_change_nothing(self):
        scenario = ROSTER[1]
        scenes = scenario_scenes(scenario)
        plain = SceneBatch(scenes, scenario.seed)
        seeded = SceneBatch(
            scenes,
            scenario.seed,
            truths=[scene.ground_truth_box() for scene in scenes],
            difficulties=plain.difficulties,
        )
        spec = ZOO.specs()[-1]
        assert detect_batch(spec, plain) == detect_batch(spec, seeded)

    def test_shared_noise_matches_scalar_helper(self):
        from repro.models.detector import shared_scene_noise

        scenario = ROSTER[2]
        batch = SceneBatch(scenario_scenes(scenario), scenario.seed)
        expected = np.array(
            [shared_scene_noise((scenario.seed, i)) for i in range(len(batch))]
        )
        assert np.array_equal(batch.shared_noise, expected)
