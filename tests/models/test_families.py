"""Tests for the paper's eight-model zoo definitions."""

from repro.models import SSD_FAMILY, YOLO_FAMILY, paper_specs


class TestPaperSpecs:
    def test_eight_models(self):
        assert len(paper_specs()) == 8

    def test_names_match_profiles(self):
        from repro.sim import paper_model_names

        assert [s.name for s in paper_specs()] == paper_model_names()

    def test_two_families(self):
        families = {s.family for s in paper_specs()}
        assert families == {YOLO_FAMILY, SSD_FAMILY}

    def test_yolo_break_points_ordered_by_size(self):
        # Heavier YOLO variants survive further into hard contexts.
        by_name = {s.name: s for s in paper_specs()}
        ladder = ["yolov7-e6e", "yolov7-x", "yolov7", "yolov7-tiny"]
        breaks = [by_name[n].skill.break_point for n in ladder]
        assert breaks == sorted(breaks, reverse=True)

    def test_ssd_break_points_below_yolo(self):
        by_family = {}
        for spec in paper_specs():
            by_family.setdefault(spec.family, []).append(spec.skill.break_point)
        assert max(by_family[SSD_FAMILY]) < min(by_family[YOLO_FAMILY]) + 0.1

    def test_ssd_family_overconfident(self):
        ssd = [s for s in paper_specs() if s.family == SSD_FAMILY]
        yolo = [s for s in paper_specs() if s.family == YOLO_FAMILY]
        assert all(s.calibration.bias > y.calibration.bias for s in ssd for y in yolo)

    def test_hard_frames_favor_heavy_models(self):
        by_name = {s.name: s for s in paper_specs()}
        hard = 0.68
        quality_e6e = by_name["yolov7-e6e"].skill.quality(hard)
        quality_tiny = by_name["yolov7-tiny"].skill.quality(hard)
        assert quality_e6e > quality_tiny

    def test_easy_frames_favor_tiny_model(self):
        by_name = {s.name: s for s in paper_specs()}
        easy = 0.1
        assert by_name["yolov7-tiny"].skill.quality(easy) > by_name["yolov7-e6e"].skill.quality(easy)

    def test_input_sizes(self):
        by_name = {s.name: s for s in paper_specs()}
        assert by_name["ssd-mobilenet-v2-320"].input_size == 320
        assert by_name["yolov7"].input_size == 640
