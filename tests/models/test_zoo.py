"""Tests for the model zoo registry."""

import pytest

from repro.models import ConfidenceCalibration, ModelSpec, ModelZoo, SkillCurve, default_zoo


def _spec(name="custom"):
    return ModelSpec(
        name=name,
        family="custom",
        input_size=320,
        params_millions=1.0,
        skill=SkillCurve(peak=0.5, break_point=0.3, width=0.1),
        calibration=ConfidenceCalibration(scale=1.0, bias=0.0, noise=0.02),
    )


class TestModelZoo:
    def test_default_zoo_has_paper_models(self):
        zoo = default_zoo()
        assert len(zoo) == 8
        assert "yolov7" in zoo
        assert zoo.families() == ["yolov7", "ssd"]

    def test_register_and_get(self):
        zoo = ModelZoo()
        zoo.register(_spec())
        assert zoo.get("custom").family == "custom"

    def test_register_duplicate_rejected(self):
        zoo = ModelZoo([_spec()])
        with pytest.raises(ValueError):
            zoo.register(_spec())

    def test_register_replace(self):
        zoo = ModelZoo([_spec()])
        replacement = _spec()
        zoo.register(replacement, replace=True)
        assert zoo.get("custom") is replacement

    def test_remove(self):
        zoo = ModelZoo([_spec()])
        removed = zoo.remove("custom")
        assert removed.name == "custom"
        assert "custom" not in zoo
        with pytest.raises(KeyError):
            zoo.remove("custom")

    def test_get_unknown_raises_with_guidance(self):
        with pytest.raises(KeyError, match="registered models"):
            default_zoo().get("resnet-152")

    def test_iteration_order(self):
        zoo = default_zoo()
        assert [s.name for s in zoo] == zoo.names()

    def test_names_in_registration_order(self):
        zoo = ModelZoo([_spec("b"), _spec("a")])
        assert zoo.names() == ["b", "a"]
