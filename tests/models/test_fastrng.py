"""fastrng must replay NumPy's seeding bit-for-bit.

The batched detector's whole bit-identity contract rests on
``pcg64_state_words`` + ``DrawPool`` producing exactly the streams
``np.random.default_rng(entropy)`` produces.  These tests pin that against
the live NumPy, so a (historically frozen) upstream algorithm change, or a
mistake in the vectorized reimplementation, fails here first.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.fastrng import (
    DrawPool,
    entropy_rows,
    pcg64_state_words,
)


def _reference_words(entropy: tuple) -> np.ndarray:
    return np.random.SeedSequence(entropy).generate_state(4, np.uint64)


class TestStateWords:
    def test_matches_seedsequence_for_frame_suffix(self):
        frames = np.arange(200)
        words = pcg64_state_words([0x5E1F7, 17, 9301, 9301, frames])
        for i in (0, 1, 7, 42, 199):
            expected = _reference_words((0x5E1F7, 17, 9301, 9301, int(frames[i])))
            assert np.array_equal(words[i], expected)

    def test_matches_seedsequence_for_mid_tuple_variation(self):
        frames = np.arange(64)
        words = pcg64_state_words([0x5E1F7, 9301, frames, 4093204925])
        for i in (0, 3, 63):
            expected = _reference_words((0x5E1F7, 9301, i, 4093204925))
            assert np.array_equal(words[i], expected)

    def test_wide_scalar_entropy_expands_to_two_words(self):
        big = 2**32 + 5  # crc32-salt + offset can exceed one uint32 word
        words = pcg64_state_words([0x5E1F7, big, np.arange(4)])
        for i in range(4):
            assert np.array_equal(words[i], _reference_words((0x5E1F7, big, i)))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_property_matches_seedsequence(self, prefix, varying):
        words = pcg64_state_words([*prefix, np.array([varying], dtype=np.uint64)])
        assert np.array_equal(words[0], _reference_words((*prefix, varying)))

    def test_rejects_oversized_varying_values(self):
        with pytest.raises(ValueError):
            pcg64_state_words([1, np.array([2**32], dtype=np.uint64)])

    def test_rejects_mismatched_varying_lengths(self):
        with pytest.raises(ValueError):
            entropy_rows([np.arange(3), np.arange(4)])

    def test_scalar_only_parts_need_explicit_count(self):
        with pytest.raises(ValueError):
            entropy_rows([1, 2, 3])
        rows = entropy_rows([1, 2, 3], count=5)
        assert rows.shape == (5, 3)


class TestDrawPool:
    def test_first_normals_match_default_rng(self):
        frames = np.arange(300)
        words = pcg64_state_words([0x5E1F7, 3, 9301, 9301, frames])
        drawn = DrawPool().first_normals(words)
        for i in (0, 1, 99, 299):
            expected = np.random.default_rng((0x5E1F7, 3, 9301, 9301, int(i))).standard_normal()
            assert drawn[i] == expected

    def test_generator_for_replays_full_stream(self):
        words = pcg64_state_words([0x5E1F7, 9301, np.arange(3), 77])
        pool = DrawPool()
        for i in range(3):
            gen = pool.generator_for(words[i])
            ref = np.random.default_rng((0x5E1F7, 9301, i, 77))
            assert gen.poisson(0.4) == ref.poisson(0.4)
            assert np.array_equal(gen.uniform(size=5), ref.uniform(size=5))
            assert gen.normal(0.0, 0.3) == ref.normal(0.0, 0.3)

    def test_scaled_normal_matches_numpy_loc_scale_path(self):
        words = pcg64_state_words([11, np.arange(50)])
        z = DrawPool().first_normals(words)
        for i in (0, 13, 49):
            assert 0.37 * z[i] == np.random.default_rng((11, int(i))).normal(0.0, 0.37)
