"""Tests for the Oracle baselines."""

import pytest

from repro.baselines import (
    ORACLE_IOU_THRESHOLD,
    OracleObjective,
    oracle_accuracy,
    oracle_energy,
    oracle_latency,
)
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, aggregate, run_policy
from repro.sim import AcceleratorClass, perf_point


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def trace(zoo):
    scenario = scenario_by_name("s1_multi_background_varying_distance").scaled(0.08)
    return ScenarioTrace.build(scenario, zoo)


class TestOracleDefinitions:
    def test_factories(self):
        assert oracle_energy().objective is OracleObjective.ENERGY
        assert oracle_accuracy().objective is OracleObjective.ACCURACY
        assert oracle_latency().objective is OracleObjective.LATENCY

    def test_names(self):
        assert oracle_energy().name == "oracle:energy"


class TestOracleBehaviour:
    def test_oracle_a_maximizes_iou_per_frame(self, trace, zoo):
        result = run_policy(oracle_accuracy(), trace)
        for record in result.records[:40]:
            best_iou = max(
                trace.outcome(name, record.frame_index).iou for name in zoo.names()
            )
            assert record.iou == pytest.approx(best_iou)

    def test_oracle_e_picks_cheapest_qualifying(self, trace, zoo):
        result = run_policy(oracle_energy(), trace)
        for record in result.records[:40]:
            idx = record.frame_index
            qualifying = [
                (name, accel)
                for (name, accel) in [(n, a) for n in zoo.names() for a in ("gpu", "dla0", "oakd")]
                if trace.outcomes.get(name)
                and trace.outcome(name, idx).iou >= ORACLE_IOU_THRESHOLD
            ]
            if not qualifying:
                continue
            chosen_energy = _pair_energy(record.pair)
            cheapest = min(_pair_energy(p) for p in qualifying if _supported(p))
            assert chosen_energy == pytest.approx(cheapest)

    def test_all_oracles_share_success_rate(self, trace):
        metrics = [
            aggregate(run_policy(policy, trace))
            for policy in (oracle_energy(), oracle_accuracy(), oracle_latency())
        ]
        rates = {round(m.success_rate, 9) for m in metrics}
        assert len(rates) == 1

    def test_oracle_orderings(self, trace):
        energy = aggregate(run_policy(oracle_energy(), trace))
        accuracy = aggregate(run_policy(oracle_accuracy(), trace))
        latency = aggregate(run_policy(oracle_latency(), trace))
        assert accuracy.mean_iou >= energy.mean_iou
        assert accuracy.mean_iou >= latency.mean_iou
        assert energy.mean_energy_j <= accuracy.mean_energy_j
        assert energy.mean_energy_j <= latency.mean_energy_j
        assert latency.mean_latency_s <= accuracy.mean_latency_s

    def test_no_load_cost_or_overhead(self, trace):
        result = run_policy(oracle_energy(), trace)
        assert all(r.stall_s == 0.0 and r.overhead_s == 0.0 for r in result.records)
        assert all(not r.cold_load for r in result.records)

    def test_step_before_begin_raises(self, trace):
        with pytest.raises(RuntimeError):
            oracle_energy().step(trace.frames[0])

    def test_first_frame_not_a_swap(self, trace):
        result = run_policy(oracle_accuracy(), trace)
        assert not result.records[0].swap


def _supported(pair):
    from repro.sim import has_profile

    accel_class = {"gpu": AcceleratorClass.GPU, "dla0": AcceleratorClass.DLA,
                   "oakd": AcceleratorClass.OAKD}[pair[1]]
    return has_profile(pair[0], accel_class)


def _pair_energy(pair):
    accel_class = {"gpu": AcceleratorClass.GPU, "dla0": AcceleratorClass.DLA,
                   "oakd": AcceleratorClass.OAKD}[pair[1]]
    return perf_point(pair[0], accel_class).energy_j
