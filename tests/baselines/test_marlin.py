"""Tests for the Marlin baseline (DNN + tracker alternation)."""

import pytest

from repro.baselines import MarlinPolicy, TRACKER_LATENCY_S
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, aggregate, run_policy


@pytest.fixture(scope="module")
def trace():
    # Calm indoor scenario: tracking works most of the time.
    scenario = scenario_by_name("s3_indoor_close_wall").scaled(0.2)
    return ScenarioTrace.build(scenario, default_zoo())


class TestMarlin:
    def test_mixes_tracker_and_dnn_frames(self, trace):
        result = run_policy(MarlinPolicy("yolov7"), trace)
        tracked = [r for r in result.records if r.used_tracker]
        detected = [r for r in result.records if not r.used_tracker]
        assert tracked and detected
        assert len(tracked) > len(detected)  # tracking dominates calm scenes

    def test_tracker_frames_cheap(self, trace):
        result = run_policy(MarlinPolicy("yolov7"), trace)
        for record in result.records:
            if record.used_tracker:
                assert record.latency_s == pytest.approx(TRACKER_LATENCY_S)
                assert record.energy_j < 0.05

    def test_saves_energy_vs_single_model(self, trace):
        from repro.baselines import SingleModelPolicy

        marlin = aggregate(run_policy(MarlinPolicy("yolov7"), trace))
        single = aggregate(run_policy(SingleModelPolicy("yolov7", "gpu"), trace))
        assert marlin.mean_energy_j < single.mean_energy_j
        assert marlin.mean_iou > 0.7 * single.mean_iou

    def test_redetect_interval_enforced(self, trace):
        policy = MarlinPolicy("yolov7", redetect_interval=5)
        result = run_policy(policy, trace)
        consecutive = 0
        for record in result.records:
            if record.used_tracker:
                consecutive += 1
                assert consecutive <= 5
            else:
                consecutive = 0

    def test_never_swaps_and_stays_on_gpu(self, trace):
        metrics = aggregate(run_policy(MarlinPolicy("yolov7"), trace))
        assert metrics.swaps == 0
        assert metrics.non_gpu_share == 0.0
        assert metrics.pairs_used == 1

    def test_first_frame_is_detection_with_load(self, trace):
        result = run_policy(MarlinPolicy("yolov7"), trace)
        first = result.records[0]
        assert not first.used_tracker
        assert first.cold_load

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MarlinPolicy("yolov7", redetect_interval=0)

    def test_unsupported_pair_rejected(self, trace):
        with pytest.raises(ValueError):
            run_policy(MarlinPolicy("ssd-resnet50", "oakd"), trace)

    def test_step_before_begin_raises(self, trace):
        with pytest.raises(RuntimeError):
            MarlinPolicy("yolov7").step(trace.frames[0])

    def test_tiny_variant_cheaper_than_full(self, trace):
        tiny = aggregate(run_policy(MarlinPolicy("yolov7-tiny"), trace))
        full = aggregate(run_policy(MarlinPolicy("yolov7"), trace))
        assert tiny.mean_energy_j < full.mean_energy_j
