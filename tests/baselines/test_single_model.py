"""Tests for the single-model baseline."""

import pytest

from repro.baselines import SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, aggregate, run_policy
from repro.sim import AcceleratorClass, perf_point


@pytest.fixture(scope="module")
def trace():
    scenario = scenario_by_name("s3_indoor_close_wall").scaled(0.1)
    return ScenarioTrace.build(scenario, default_zoo())


class TestSingleModel:
    def test_runs_fixed_pair(self, trace):
        result = run_policy(SingleModelPolicy("yolov7", "gpu"), trace)
        assert all(r.pair == ("yolov7", "gpu") for r in result.records)
        assert result.pairs_used() == {("yolov7", "gpu")}

    def test_no_swaps(self, trace):
        metrics = aggregate(run_policy(SingleModelPolicy("yolov7", "gpu"), trace))
        assert metrics.swaps == 0
        assert metrics.pairs_used == 1

    def test_first_frame_pays_load(self, trace):
        result = run_policy(SingleModelPolicy("yolov7", "gpu"), trace)
        assert result.records[0].cold_load
        assert result.records[0].stall_s > 0
        assert all(not r.cold_load for r in result.records[1:])

    def test_mean_latency_near_profile(self, trace):
        result = run_policy(SingleModelPolicy("yolov7", "gpu"), trace)
        steady = result.records[1:]
        mean = sum(r.latency_s for r in steady) / len(steady)
        expected = perf_point("yolov7", AcceleratorClass.GPU).latency_s
        assert mean == pytest.approx(expected, rel=0.1)

    def test_dla_deployment_uses_less_power(self, trace):
        gpu = aggregate(run_policy(SingleModelPolicy("yolov7", "gpu"), trace))
        dla = aggregate(run_policy(SingleModelPolicy("yolov7", "dla0"), trace))
        assert dla.mean_energy_j < gpu.mean_energy_j
        assert dla.non_gpu_share == 1.0

    def test_unsupported_pair_rejected(self, trace):
        policy = SingleModelPolicy("ssd-resnet50", "oakd")
        with pytest.raises(ValueError):
            run_policy(policy, trace)

    def test_step_before_begin_raises(self, trace):
        policy = SingleModelPolicy("yolov7", "gpu")
        with pytest.raises(RuntimeError):
            policy.step(trace.frames[0])

    def test_policy_name(self):
        assert SingleModelPolicy("yolov7", "gpu").name == "single:yolov7@gpu"
