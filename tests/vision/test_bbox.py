"""Tests for bounding boxes and overlap metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.vision import (
    BoundingBox,
    center_distance,
    enclosing_box,
    iou,
    mean_iou,
    success_rate,
)

# Strategy: coordinates in a sane range, valid corner ordering.
coords = st.floats(min_value=-500.0, max_value=500.0, allow_nan=False)
sizes = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


@st.composite
def boxes(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(sizes)
    h = draw(sizes)
    return BoundingBox(x1, y1, x1 + w, y1 + h)


@st.composite
def nondegenerate_boxes(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(st.floats(min_value=0.5, max_value=200.0))
    h = draw(st.floats(min_value=0.5, max_value=200.0))
    return BoundingBox(x1, y1, x1 + w, y1 + h)


class TestBoundingBoxConstruction:
    def test_valid_box(self):
        box = BoundingBox(0, 0, 10, 5)
        assert box.width == 10
        assert box.height == 5
        assert box.area == 50

    def test_degenerate_box_allowed(self):
        box = BoundingBox(3, 3, 3, 3)
        assert box.is_degenerate()
        assert box.area == 0

    def test_inverted_x_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(10, 0, 0, 5)

    def test_inverted_y_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 10, 5, 0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(float("nan"), 0, 1, 1)

    def test_from_center(self):
        box = BoundingBox.from_center(5, 5, 4, 2)
        assert box.as_tuple() == (3, 4, 7, 6)

    def test_from_center_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_center(0, 0, -1, 1)

    def test_from_xywh(self):
        box = BoundingBox.from_xywh(1, 2, 3, 4)
        assert box.as_tuple() == (1, 2, 4, 6)

    def test_from_xywh_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_xywh(0, 0, 1, -1)

    def test_center(self):
        assert BoundingBox(0, 0, 10, 20).center == (5, 10)

    def test_hashable(self):
        assert len({BoundingBox(0, 0, 1, 1), BoundingBox(0, 0, 1, 1)}) == 1


class TestBoxOperations:
    def test_translated(self):
        assert BoundingBox(0, 0, 2, 2).translated(1, -1).as_tuple() == (1, -1, 3, 1)

    def test_scaled_about_center(self):
        box = BoundingBox(0, 0, 4, 4).scaled(0.5)
        assert box.as_tuple() == (1, 1, 3, 3)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).scaled(-2)

    def test_clipped_inside_unchanged(self):
        box = BoundingBox(1, 1, 5, 5)
        assert box.clipped(10, 10) == box

    def test_clipped_partial(self):
        assert BoundingBox(-5, -5, 5, 5).clipped(10, 10).as_tuple() == (0, 0, 5, 5)

    def test_clipped_outside_collapses(self):
        clipped = BoundingBox(20, 20, 30, 30).clipped(10, 10)
        assert clipped.is_degenerate()

    def test_intersection_overlapping(self):
        inter = BoundingBox(0, 0, 4, 4).intersection(BoundingBox(2, 2, 6, 6))
        assert inter is not None
        assert inter.as_tuple() == (2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert BoundingBox(0, 0, 1, 1).intersection(BoundingBox(5, 5, 6, 6)) is None

    def test_intersection_touching_edges_is_none(self):
        assert BoundingBox(0, 0, 1, 1).intersection(BoundingBox(1, 0, 2, 1)) is None

    def test_union_area_disjoint(self):
        assert BoundingBox(0, 0, 1, 1).union_area(BoundingBox(5, 5, 6, 6)) == 2.0

    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(1, 1)
        assert box.contains_point(0, 0)  # closed edges
        assert not box.contains_point(3, 1)

    @given(boxes(), coords, coords)
    def test_translation_preserves_area(self, box, dx, dy):
        assert math.isclose(box.translated(dx, dy).area, box.area, abs_tol=1e-6)

    @given(boxes())
    def test_clip_never_grows(self, box):
        clipped = box.clipped(100, 100)
        assert clipped.area <= box.area + 1e-9


class TestIoU:
    def test_identical_boxes(self):
        box = BoundingBox(0, 0, 10, 10)
        assert iou(box, box) == 1.0

    def test_disjoint_boxes(self):
        assert iou(BoundingBox(0, 0, 1, 1), BoundingBox(2, 2, 3, 3)) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 2, 1)
        b = BoundingBox(1, 0, 3, 1)
        assert math.isclose(iou(a, b), 1 / 3)

    def test_degenerate_is_zero_even_with_self(self):
        point = BoundingBox(1, 1, 1, 1)
        assert iou(point, point) == 0.0

    def test_contained_box(self):
        outer = BoundingBox(0, 0, 4, 4)
        inner = BoundingBox(1, 1, 3, 3)
        assert math.isclose(iou(outer, inner), 4 / 16)

    @given(nondegenerate_boxes(), nondegenerate_boxes())
    def test_symmetry(self, a, b):
        assert math.isclose(iou(a, b), iou(b, a), abs_tol=1e-12)

    @given(nondegenerate_boxes(), nondegenerate_boxes())
    def test_bounds(self, a, b):
        value = iou(a, b)
        assert 0.0 <= value <= 1.0

    @given(nondegenerate_boxes())
    def test_self_iou_is_one(self, box):
        assert math.isclose(iou(box, box), 1.0)

    @given(nondegenerate_boxes(), coords, coords)
    def test_translation_invariance(self, box, dx, dy):
        other = box.translated(3.0, 4.0)
        moved_a = box.translated(dx, dy)
        moved_b = other.translated(dx, dy)
        assert math.isclose(iou(box, other), iou(moved_a, moved_b), abs_tol=1e-7)


class TestAggregates:
    def test_center_distance(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(3, 4, 5, 6)
        assert math.isclose(center_distance(a, b), 5.0)

    def test_mean_iou_skips_missing_truth(self):
        box = BoundingBox(0, 0, 2, 2)
        pairs = [(box, box), (box, None)]
        assert mean_iou(pairs) == 1.0

    def test_mean_iou_missing_prediction_scores_zero(self):
        box = BoundingBox(0, 0, 2, 2)
        assert mean_iou([(None, box), (box, box)]) == 0.5

    def test_mean_iou_empty(self):
        assert mean_iou([]) == 0.0

    def test_success_rate_threshold(self):
        box = BoundingBox(0, 0, 10, 10)
        nearly = BoundingBox(0, 0, 9, 10)  # IoU 0.9
        barely = BoundingBox(0, 0, 4, 10)  # IoU 0.4
        pairs = [(nearly, box), (barely, box)]
        assert success_rate(pairs) == 0.5
        assert success_rate(pairs, threshold=0.3) == 1.0

    def test_success_rate_empty(self):
        assert success_rate([]) == 0.0

    def test_enclosing_box(self):
        boxes = [BoundingBox(0, 0, 1, 1), BoundingBox(5, -2, 6, 3)]
        assert enclosing_box(boxes).as_tuple() == (0, -2, 6, 3)

    def test_enclosing_box_empty_rejected(self):
        with pytest.raises(ValueError):
            enclosing_box([])

    @given(st.lists(nondegenerate_boxes(), min_size=1, max_size=8))
    def test_enclosing_box_contains_all(self, box_list):
        outer = enclosing_box(box_list)
        for box in box_list:
            assert outer.x1 <= box.x1 and outer.y1 <= box.y1
            assert outer.x2 >= box.x2 and outer.y2 >= box.y2
