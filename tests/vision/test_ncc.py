"""Tests for normalized cross-correlation (Eq. 1) and crops."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.vision import (
    BoundingBox,
    box_ncc,
    crop,
    frame_similarity,
    ncc,
    resize_nearest,
    stacked_ncc,
)

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.integers(2, 12)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


def _textured(seed: int, size: int = 16) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, 1, size=(size, size))


class TestNCC:
    def test_identical_images(self):
        image = _textured(1)
        assert math.isclose(ncc(image, image), 1.0)

    def test_negated_images(self):
        image = _textured(2)
        assert math.isclose(ncc(image, 1.0 - image), -1.0)

    def test_independent_images_near_zero(self):
        a = _textured(3, size=64)
        b = _textured(4, size=64)
        assert abs(ncc(a, b)) < 0.2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ncc(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ncc(np.zeros((0, 0)), np.zeros((0, 0)))

    def test_two_flat_images_fully_correlated(self):
        assert ncc(np.full((4, 4), 0.3), np.full((4, 4), 0.9)) == 1.0

    def test_flat_vs_textured_uncorrelated(self):
        assert ncc(np.full((8, 8), 0.5), _textured(5, 8)) == 0.0

    def test_brightness_invariance(self):
        image = _textured(6)
        assert math.isclose(ncc(image, image + 0.3), 1.0, abs_tol=1e-9)

    def test_contrast_invariance(self):
        image = _textured(7)
        assert math.isclose(ncc(image, image * 2.5), 1.0, abs_tol=1e-9)

    @given(images)
    @settings(max_examples=60)
    def test_bounds(self, image):
        other = np.roll(image, 1, axis=0)
        value = ncc(image, other)
        assert -1.0 <= value <= 1.0

    @given(images)
    @settings(max_examples=60)
    def test_symmetry(self, image):
        other = np.roll(image, 1, axis=1)
        assert math.isclose(ncc(image, other), ncc(other, image), abs_tol=1e-12)


class TestCrop:
    def test_exact_crop(self):
        image = np.arange(36, dtype=float).reshape(6, 6)
        patch = crop(image, BoundingBox(1, 2, 4, 5))
        assert patch.shape == (3, 3)
        assert patch[0, 0] == image[2, 1]

    def test_fractional_box_rounds_outward(self):
        image = np.zeros((6, 6))
        patch = crop(image, BoundingBox(1.2, 1.2, 2.8, 2.8))
        assert patch.shape == (2, 2)

    def test_outside_box_rejected(self):
        with pytest.raises(ValueError):
            crop(np.zeros((4, 4)), BoundingBox(10, 10, 12, 12))

    def test_partially_outside_clips(self):
        image = np.ones((4, 4))
        patch = crop(image, BoundingBox(-2, -2, 2, 2))
        assert patch.shape == (2, 2)


class TestResize:
    def test_upscale_shape(self):
        assert resize_nearest(np.zeros((2, 2)), 8, 8).shape == (8, 8)

    def test_downscale_shape(self):
        assert resize_nearest(np.zeros((9, 7)), 3, 3).shape == (3, 3)

    def test_identity(self):
        image = _textured(8, 5)
        assert np.array_equal(resize_nearest(image, 5, 5), image)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            resize_nearest(np.zeros((2, 2)), 0, 3)

    def test_values_come_from_source(self):
        image = _textured(9, 4)
        resized = resize_nearest(image, 16, 16)
        assert set(np.unique(resized)).issubset(set(np.unique(image)))


class TestBoxNCC:
    def test_missing_box_scores_zero(self):
        image = _textured(10, 32)
        assert box_ncc(image, None, image, BoundingBox(2, 2, 8, 8)) == 0.0
        assert box_ncc(image, BoundingBox(2, 2, 8, 8), image, None) == 0.0

    def test_degenerate_box_scores_zero(self):
        image = _textured(11, 32)
        degenerate = BoundingBox(5, 5, 5, 5)
        assert box_ncc(image, degenerate, image, BoundingBox(2, 2, 8, 8)) == 0.0

    def test_same_crop_scores_high(self):
        image = _textured(12, 32)
        box = BoundingBox(4, 4, 20, 20)
        assert box_ncc(image, box, image, box) > 0.99


class TestFrameSimilarity:
    def test_identical_frames(self):
        image = _textured(13, 32)
        box = BoundingBox(4, 4, 16, 16)
        assert frame_similarity(image, image, box, box) > 0.99

    def test_clamped_to_non_negative(self):
        image = _textured(14, 32)
        value = frame_similarity(image, 1.0 - image, None, None)
        assert value == 0.0

    def test_takes_minimum_of_signals(self):
        image = _textured(15, 32)
        # Same global frame but one detection missing: box signal is 0.
        assert frame_similarity(image, image, BoundingBox(2, 2, 9, 9), None) == 0.0


class TestStackedNCC:
    def test_matches_scalar_pairwise_ncc_bitwise(self):
        frames = np.stack([_textured(seed, 24) for seed in range(12)])
        values = stacked_ncc(frames)
        expected = np.array([ncc(frames[i], frames[i + 1]) for i in range(11)])
        assert np.array_equal(values, expected)

    def test_accepts_a_list_of_frames(self):
        frames = [_textured(s, 16) for s in (3, 4, 5)]
        values = stacked_ncc(frames)
        assert values.shape == (2,)
        assert values[0] == ncc(frames[0], frames[1])

    def test_flat_frame_conventions(self):
        textured = _textured(6, 8)
        flat = np.full((8, 8), 0.5)
        values = stacked_ncc([flat, flat, textured, flat])
        assert values[0] == 1.0  # flat vs flat
        assert values[1] == 0.0  # flat vs textured
        assert values[2] == 0.0  # textured vs flat

    def test_short_stacks_and_bad_input(self):
        assert stacked_ncc(np.zeros((1, 4, 4))).shape == (0,)
        assert stacked_ncc(np.zeros((0, 4, 4))).shape == (0,)
        with pytest.raises(ValueError):
            stacked_ncc(np.zeros(5))
        with pytest.raises(ValueError):
            stacked_ncc(np.zeros((3, 0, 4)))

    def test_on_rendered_scenario_frames(self):
        from repro.data import scenario_by_name
        from repro.data.generator import render_scenario

        frames = render_scenario(scenario_by_name("s3_indoor_close_wall").scaled(0.05))
        images = [frame.image for frame in frames]
        values = stacked_ncc(images)
        expected = [ncc(images[i], images[i + 1]) for i in range(len(images) - 1)]
        assert np.array_equal(values, np.array(expected))


class TestResizeIndexCache:
    def test_cached_resize_matches_fresh_computation(self):
        image = _textured(21, 30)
        a = resize_nearest(image, 24, 24)
        b = resize_nearest(image, 24, 24)  # served from the index cache
        src_h, src_w = image.shape
        row_idx = np.minimum((np.arange(24) * src_h) // 24, src_h - 1)
        col_idx = np.minimum((np.arange(24) * src_w) // 24, src_w - 1)
        assert np.array_equal(a, image[np.ix_(row_idx, col_idx)])
        assert np.array_equal(a, b)

    def test_resize_output_is_an_independent_copy(self):
        image = _textured(22, 10)
        out = resize_nearest(image, 4, 4)
        out[0, 0] = -99.0
        assert image[0, 0] != -99.0
