"""Segment-batched rendering must be bit-identical to the scalar renderer."""

import numpy as np
import pytest

from repro.data import all_scenarios
from repro.data.generator import generate_frames, render_scenario
from repro.vision.bbox import BoundingBox
from repro.vision.rendering import (
    BackgroundStyle,
    render_frame,
    render_segment_frames,
)

STYLE = BackgroundStyle(complexity=0.7, brightness=0.45, contrast=0.6, pattern_seed=901)


def _scalar_stack(style, boxes, drifts, frame_size, noise_rng):
    return np.stack(
        [
            render_frame(style, box, frame_size=frame_size, drift=drift, noise_rng=noise_rng)
            for box, drift in zip(boxes, drifts, strict=True)
        ]
    )


class TestRenderSegmentFrames:
    def test_matches_scalar_renderer_with_noise_stream(self):
        boxes = [
            BoundingBox.from_center(48.0, 40.0, 20.0, 12.0),
            None,
            BoundingBox.from_center(90.0, 90.0, 18.0, 11.0),  # clipped at the edge
            BoundingBox(5.0, 5.0, 5.0, 9.0),  # degenerate: skipped
            BoundingBox.from_center(10.0, 80.0, 3.0, 2.0),
        ]
        drifts = [0.0, 1.4, 1.4, 7.9, -2.6]
        batched = render_segment_frames(
            STYLE, boxes, drifts, frame_size=96, noise_rng=np.random.default_rng(7)
        )
        reference = _scalar_stack(STYLE, boxes, drifts, 96, np.random.default_rng(7))
        assert np.array_equal(batched, reference)

    def test_long_segment_spans_chunks(self):
        count = 75  # > 2 chunks at the default chunk size
        boxes = [BoundingBox.from_center(20.0 + i, 48.0, 14.0, 9.0) for i in range(count)]
        drifts = [0.35 * i for i in range(count)]
        batched = render_segment_frames(
            STYLE, boxes, drifts, frame_size=64, noise_rng=np.random.default_rng(3)
        )
        reference = _scalar_stack(STYLE, boxes, drifts, 64, np.random.default_rng(3))
        assert np.array_equal(batched, reference)

    def test_noise_free_and_empty(self):
        batched = render_segment_frames(STYLE, [None, None], [0.0, 0.5], frame_size=32)
        reference = _scalar_stack(STYLE, [None, None], [0.0, 0.5], 32, None)
        assert np.array_equal(batched, reference)
        empty = render_segment_frames(STYLE, [], [], frame_size=32)
        assert empty.shape == (0, 32, 32)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            render_segment_frames(STYLE, [None], [0.0], frame_size=0)
        with pytest.raises(ValueError):
            render_segment_frames(STYLE, [None, None], [0.0])


class TestRenderScenario:
    @pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
    def test_batched_scenario_rendering_matches_reference(self, scenario):
        small = scenario.scaled(0.04)
        reference = list(generate_frames(small))
        batched = render_scenario(small)
        assert len(reference) == len(batched)
        for ref, got in zip(reference, batched, strict=True):
            assert np.array_equal(ref.image, got.image)
            assert ref.scene == got.scene
            assert ref.ground_truth == got.ground_truth
            assert ref.difficulty == got.difficulty
            assert (ref.index, ref.timestamp, ref.segment) == (
                got.index,
                got.timestamp,
                got.segment,
            )
