"""Tests for non-maximum suppression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vision import BoundingBox, ScoredBox, best_detection, iou, non_max_suppression


def _box(x, y, size=10.0):
    return BoundingBox(x, y, x + size, y + size)


@st.composite
def scored_boxes(draw):
    x = draw(st.floats(0, 80, allow_nan=False))
    y = draw(st.floats(0, 80, allow_nan=False))
    size = draw(st.floats(2, 30))
    score = draw(st.floats(0.0, 1.0, allow_nan=False))
    return ScoredBox(box=BoundingBox(x, y, x + size, y + size), score=score)


class TestScoredBox:
    def test_score_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ScoredBox(box=_box(0, 0), score=1.2)
        with pytest.raises(ValueError):
            ScoredBox(box=_box(0, 0), score=-0.1)


class TestNMS:
    def test_empty_input(self):
        assert non_max_suppression([]) == []

    def test_single_survivor(self):
        kept = non_max_suppression([ScoredBox(_box(0, 0), 0.9)])
        assert len(kept) == 1

    def test_low_confidence_dropped(self):
        kept = non_max_suppression([ScoredBox(_box(0, 0), 0.2)])
        assert kept == []

    def test_overlapping_keeps_highest(self):
        strong = ScoredBox(_box(0, 0), 0.9)
        weak = ScoredBox(_box(1, 1), 0.6)  # heavy overlap
        kept = non_max_suppression([weak, strong])
        assert kept == [strong]

    def test_disjoint_boxes_all_kept(self):
        a = ScoredBox(_box(0, 0), 0.9)
        b = ScoredBox(_box(50, 50), 0.8)
        kept = non_max_suppression([a, b])
        assert set(id(k) for k in kept) == {id(a), id(b)}

    def test_result_sorted_by_score(self):
        a = ScoredBox(_box(0, 0), 0.7)
        b = ScoredBox(_box(50, 50), 0.95)
        kept = non_max_suppression([a, b])
        assert [k.score for k in kept] == [0.95, 0.7]

    def test_moderate_overlap_below_threshold_kept(self):
        a = ScoredBox(_box(0, 0), 0.9)
        b = ScoredBox(_box(8, 0), 0.8)  # IoU = 2/18 ~ 0.11 < 0.5
        assert len(non_max_suppression([a, b])) == 2

    def test_custom_iou_threshold(self):
        a = ScoredBox(_box(0, 0), 0.9)
        b = ScoredBox(_box(8, 0), 0.8)
        assert len(non_max_suppression([a, b], iou_threshold=0.05)) == 1

    def test_custom_confidence_threshold(self):
        kept = non_max_suppression([ScoredBox(_box(0, 0), 0.2)], confidence_threshold=0.1)
        assert len(kept) == 1

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=1.5)
        with pytest.raises(ValueError):
            non_max_suppression([], confidence_threshold=-0.5)

    def test_deterministic_regardless_of_input_order(self):
        boxes = [
            ScoredBox(_box(0, 0), 0.9),
            ScoredBox(_box(2, 2), 0.9),
            ScoredBox(_box(60, 60), 0.5),
        ]
        forward = non_max_suppression(boxes)
        backward = non_max_suppression(list(reversed(boxes)))
        assert [b.box for b in forward] == [b.box for b in backward]

    @given(st.lists(scored_boxes(), max_size=12))
    @settings(max_examples=60)
    def test_survivors_do_not_overlap_above_threshold(self, candidates):
        kept = non_max_suppression(candidates)
        for i, a in enumerate(kept):
            for b in kept[i + 1 :]:
                assert iou(a.box, b.box) <= 0.5 + 1e-9

    @given(st.lists(scored_boxes(), max_size=12))
    @settings(max_examples=60)
    def test_survivors_subset_of_input(self, candidates):
        kept = non_max_suppression(candidates)
        input_ids = {id(c) for c in candidates}
        assert all(id(k) in input_ids for k in kept)

    @given(st.lists(scored_boxes(), max_size=12))
    @settings(max_examples=60)
    def test_all_survivors_meet_confidence(self, candidates):
        kept = non_max_suppression(candidates)
        assert all(k.score >= 0.35 for k in kept)


class TestBestDetection:
    def test_none_when_empty(self):
        assert best_detection([]) is None

    def test_returns_top_survivor(self):
        a = ScoredBox(_box(0, 0), 0.7)
        b = ScoredBox(_box(50, 50), 0.95)
        best = best_detection([a, b])
        assert best is b
