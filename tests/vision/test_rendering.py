"""Tests for synthetic frame rendering."""

import numpy as np
import pytest

from repro.vision import BackgroundStyle, BoundingBox, frame_difference_energy, ncc, render_frame


def _style(**overrides):
    params = {"complexity": 0.5, "brightness": 0.6, "contrast": 0.4, "pattern_seed": 42}
    params.update(overrides)
    return BackgroundStyle(**params)


class TestBackgroundStyle:
    def test_valid(self):
        style = _style()
        assert style.complexity == 0.5

    @pytest.mark.parametrize("field", ["complexity", "brightness", "contrast"])
    def test_out_of_range_rejected(self, field):
        with pytest.raises(ValueError):
            _style(**{field: 1.5})
        with pytest.raises(ValueError):
            _style(**{field: -0.1})


class TestRenderFrame:
    def test_shape_and_range(self):
        frame = render_frame(_style(), None, frame_size=48)
        assert frame.shape == (48, 48)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_deterministic_without_noise(self):
        a = render_frame(_style(), None)
        b = render_frame(_style(), None)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = render_frame(_style(pattern_seed=1), None)
        b = render_frame(_style(pattern_seed=2), None)
        assert not np.array_equal(a, b)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            render_frame(_style(), None, frame_size=0)

    def test_target_darkens_region(self):
        box = BoundingBox.from_center(48, 48, 24, 16)
        bright = _style(brightness=0.85, contrast=0.1, complexity=0.1)
        with_target = render_frame(bright, box)
        without = render_frame(bright, None)
        ys, xs = int(box.center[1]), int(box.center[0])
        assert with_target[ys, xs] < without[ys, xs] - 0.3

    def test_target_outside_frame_ignored(self):
        box = BoundingBox.from_center(500, 500, 24, 16)
        frame = render_frame(_style(), box)
        baseline = render_frame(_style(), None)
        assert np.array_equal(frame, baseline)

    def test_drift_shifts_background(self):
        still = render_frame(_style(), None)
        panned = render_frame(_style(), None, drift=10)
        assert not np.array_equal(still, panned)
        # Pan by a full frame wraps around to the identical texture.
        wrapped = render_frame(_style(), None, drift=still.shape[1])
        assert np.array_equal(still, wrapped)

    def test_noise_is_reproducible_from_seeded_rng(self):
        a = render_frame(_style(), None, noise_rng=np.random.default_rng(5))
        b = render_frame(_style(), None, noise_rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_consecutive_frames_highly_correlated(self):
        style = _style()
        box_a = BoundingBox.from_center(40, 48, 20, 14)
        box_b = BoundingBox.from_center(42, 48, 20, 14)
        a = render_frame(style, box_a)
        b = render_frame(style, box_b)
        assert ncc(a, b) > 0.9

    def test_background_change_decorrelates(self):
        a = render_frame(_style(pattern_seed=1, brightness=0.9), None)
        b = render_frame(_style(pattern_seed=99, brightness=0.2, complexity=0.9), None)
        assert ncc(a, b) < 0.5


class TestFrameDifference:
    def test_identical_frames_zero(self):
        frame = render_frame(_style(), None)
        assert frame_difference_energy(frame, frame) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            frame_difference_energy(np.zeros((2, 2)), np.zeros((3, 3)))
