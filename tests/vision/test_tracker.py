"""Tests for the template-matching tracker (Marlin substrate)."""

import pytest

from repro.vision import BackgroundStyle, BoundingBox, TemplateTracker, render_frame

_STYLE = BackgroundStyle(complexity=0.2, brightness=0.8, contrast=0.2, pattern_seed=7)


def _frame_with_target(cx, cy, size=18.0):
    box = BoundingBox.from_center(cx, cy, size, size * 0.6)
    return render_frame(_STYLE, box, frame_size=96), box


class TestConstruction:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TemplateTracker(search_radius=0)
        with pytest.raises(ValueError):
            TemplateTracker(loss_threshold=2.0)
        with pytest.raises(ValueError):
            TemplateTracker(template_size=1)


class TestAnchorAndTrack:
    def test_track_without_anchor_is_lost(self):
        tracker = TemplateTracker()
        image, _ = _frame_with_target(48, 48)
        result = tracker.track(image)
        assert result.lost and result.box is None

    def test_anchor_registers_target(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(48, 48)
        tracker.anchor(image, box)
        assert tracker.has_target

    def test_anchor_degenerate_rejected(self):
        tracker = TemplateTracker()
        image, _ = _frame_with_target(48, 48)
        with pytest.raises(ValueError):
            tracker.anchor(image, BoundingBox(5, 5, 5, 5))

    def test_tracks_stationary_target(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(48, 48)
        tracker.anchor(image, box)
        result = tracker.track(image)
        assert not result.lost
        assert result.score > 0.9
        cx, cy = result.box.center
        assert abs(cx - 48) <= 2 and abs(cy - 48) <= 2

    def test_follows_moving_target(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(40, 48)
        tracker.anchor(image, box)
        for step, cx in enumerate((44, 48, 52, 56)):
            image, truth = _frame_with_target(float(cx), 48)
            result = tracker.track(image)
            assert not result.lost, f"lost at step {step}"
            assert abs(result.box.center[0] - cx) <= 4

    def test_loses_target_when_it_vanishes(self):
        tracker = TemplateTracker(loss_threshold=0.6)
        image, box = _frame_with_target(48, 48)
        tracker.anchor(image, box)
        # Target gone and background replaced: nothing to match.
        empty = render_frame(
            BackgroundStyle(complexity=0.9, brightness=0.2, contrast=0.8, pattern_seed=99),
            None,
            frame_size=96,
        )
        result = tracker.track(empty)
        assert result.lost

    def test_reset_clears_state(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(48, 48)
        tracker.anchor(image, box)
        tracker.reset()
        assert not tracker.has_target
        assert tracker.track(image).lost

    def test_track_updates_internal_box(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(40, 48)
        tracker.anchor(image, box)
        image2, _ = _frame_with_target(46, 48)
        first = tracker.track(image2)
        image3, _ = _frame_with_target(52, 48)
        second = tracker.track(image3)
        assert not second.lost
        assert second.box.center[0] > first.box.center[0]

    def test_result_box_stays_in_frame(self):
        tracker = TemplateTracker()
        image, box = _frame_with_target(88, 48)
        tracker.anchor(image, box)
        image2, _ = _frame_with_target(94, 48)
        result = tracker.track(image2)
        if result.box is not None:
            assert result.box.x2 <= 96 and result.box.y2 <= 96
            assert result.box.x1 >= 0 and result.box.y1 >= 0
