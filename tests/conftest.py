"""Test-suite-wide configuration.

Hypothesis: disable per-example deadlines (the detector/graph property
tests intentionally run non-trivial code per example, and shared-fixture
builds can make the first example slow) and keep example counts modest so
the full suite stays fast.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
