"""Tests for configuration presets."""

import pytest

from repro.core import ShiftConfig, config_for_objective, objective_names


class TestPresets:
    def test_known_objectives(self):
        assert set(objective_names()) == {"paper", "accuracy", "energy", "latency", "balanced"}

    def test_paper_preset_matches_table_iii(self):
        config = config_for_objective("paper")
        assert config.weights == (1.0, 0.5, 0.5)
        assert config.accuracy_goal == 0.25

    def test_energy_preset_weighted_toward_energy(self):
        config = config_for_objective("energy")
        assert config.knob_energy > config.knob_accuracy
        assert config.knob_energy > config.knob_latency

    def test_latency_preset_weighted_toward_latency(self):
        config = config_for_objective("latency")
        assert config.knob_latency == max(config.weights)

    def test_accuracy_preset_raises_goal(self):
        assert config_for_objective("accuracy").accuracy_goal > config_for_objective(
            "energy"
        ).accuracy_goal

    def test_overrides_forwarded(self):
        config = config_for_objective("paper", momentum=5, naive_loading=True)
        assert config.momentum == 5
        assert config.naive_loading

    def test_unknown_objective_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known objectives"):
            config_for_objective("warp-speed")

    def test_returns_real_config(self):
        assert isinstance(config_for_objective("balanced"), ShiftConfig)
