"""Tests for the dynamic model loader (§III-C)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DynamicModelLoader
from repro.sim import ExecutionEngine, OutOfMemoryError, xavier_nx_with_oakd
from repro.sim.soc import DLA_MODEL_BUDGET_MB


@pytest.fixture
def soc():
    return xavier_nx_with_oakd()


@pytest.fixture
def loader(soc):
    return DynamicModelLoader(soc, ExecutionEngine(soc, latency_jitter=0.0, power_jitter=0.0))


class TestEnsureLoaded:
    def test_cold_load_stalls_and_charges(self, soc, loader):
        outcome = loader.ensure_loaded(("yolov7", "gpu"))
        assert outcome.cold_load
        assert outcome.stall_s > 0
        assert outcome.energy_j > 0
        assert loader.is_resident(("yolov7", "gpu"))
        assert loader.is_ready(("yolov7", "gpu"))
        assert soc.accelerator("gpu").memory.holds("yolov7")

    def test_warm_hit_is_free(self, loader):
        loader.ensure_loaded(("yolov7", "gpu"))
        outcome = loader.ensure_loaded(("yolov7", "gpu"))
        assert not outcome.cold_load
        assert outcome.stall_s == 0.0
        assert outcome.energy_j == 0.0

    def test_unsupported_pair_rejected(self, loader):
        with pytest.raises(ValueError):
            loader.ensure_loaded(("ssd-resnet50", "oakd"))

    def test_separate_accelerators_separate_residency(self, loader):
        loader.ensure_loaded(("yolov7", "gpu"))
        assert not loader.is_resident(("yolov7", "dla0"))
        loader.ensure_loaded(("yolov7", "dla0"))
        assert loader.is_resident(("yolov7", "dla0"))
        assert loader.resident_pairs() == [("yolov7", "dla0"), ("yolov7", "gpu")]

    def test_counts(self, loader):
        loader.ensure_loaded(("yolov7", "gpu"))
        loader.ensure_loaded(("yolov7-tiny", "gpu"))
        loader.ensure_loaded(("yolov7", "gpu"))
        assert loader.cold_load_count == 2


class TestLRUEviction:
    def test_evicts_least_recently_requested(self, soc, loader):
        # DLA budget is 1800 MB: yolov7 (950) + yolov7-x (1180) cannot
        # coexist, and the LRU victim is the one requested least recently.
        loader.ensure_loaded(("yolov7", "dla0"))
        soc.clock.advance(1.0)
        loader.ensure_loaded(("yolov7-tiny", "dla0"))  # 260 MB, fits
        soc.clock.advance(1.0)
        loader.ensure_loaded(("yolov7", "dla0"))  # refresh yolov7
        soc.clock.advance(1.0)
        outcome = loader.ensure_loaded(("yolov7-x", "dla0"))  # needs room
        assert outcome.cold_load
        evicted_models = {pair[0] for pair in outcome.evicted}
        assert "yolov7-tiny" in evicted_models  # least recently requested
        assert loader.is_resident(("yolov7", "dla0")) or "yolov7" in evicted_models

    def test_memory_never_exceeded(self, soc, loader):
        models = ["yolov7", "yolov7-x", "yolov7-e6e", "yolov7-tiny", "ssd-resnet50"]
        for i in range(12):
            loader.ensure_loaded((models[i % len(models)], "dla0"))
            soc.clock.advance(0.5)
            used = soc.accelerator("dla0").memory.used_mb
            assert used <= DLA_MODEL_BUDGET_MB + 1e-6

    def test_model_too_big_for_accelerator_raises(self, soc, loader):
        # The OAK-D pool (450 MB) can hold yolov7 (320 MB) but a model
        # bigger than the pool is a permanent error.
        from repro.sim import PerfPoint, register_profile, AcceleratorClass

        register_profile("megamodel-test", AcceleratorClass.OAKD, PerfPoint(1.0, 2.0), 9999.0)
        try:
            with pytest.raises(OutOfMemoryError):
                loader.ensure_loaded(("megamodel-test", "oakd"))
        finally:
            import repro.sim.profiles as profiles

            del profiles._TABLE_IV["megamodel-test"]
            del profiles._FOOTPRINT_MB["megamodel-test"]

    def test_eviction_count(self, soc, loader):
        loader.ensure_loaded(("yolov7", "dla0"))
        soc.clock.advance(1.0)
        loader.ensure_loaded(("yolov7-x", "dla0"))
        assert loader.eviction_count >= 1


class TestPrefetch:
    def test_prefetch_fills_free_memory(self, soc, loader):
        started = loader.prefetch([("yolov7", "gpu"), ("yolov7-tiny", "gpu")])
        assert len(started) == 2
        assert loader.prefetch_load_count == 2
        assert soc.clock.now == 0.0  # no pipeline stall

    def test_prefetch_never_evicts(self, soc, loader):
        loader.ensure_loaded(("yolov7", "dla0"))
        started = loader.prefetch([("yolov7-e6e", "dla0")])  # 1450 > 850 free
        assert started == []
        assert loader.is_resident(("yolov7", "dla0"))

    def test_prefetched_model_not_ready_until_load_completes(self, soc, loader):
        loader.prefetch([("yolov7", "gpu")])
        assert loader.is_resident(("yolov7", "gpu"))
        assert not loader.is_ready(("yolov7", "gpu"))
        soc.clock.advance(5.0)
        assert loader.is_ready(("yolov7", "gpu"))

    def test_request_during_prefetch_stalls_remainder(self, soc, loader):
        loader.prefetch([("yolov7", "gpu")])
        soc.clock.advance(0.1)
        outcome = loader.ensure_loaded(("yolov7", "gpu"))
        assert not outcome.cold_load
        assert outcome.stall_s > 0
        assert outcome.energy_j == 0.0  # energy charged at prefetch time
        assert loader.is_ready(("yolov7", "gpu"))

    def test_prefetch_skips_unsupported(self, loader):
        assert loader.prefetch([("ssd-resnet50", "oakd")]) == []

    def test_prefetch_skips_resident(self, loader):
        loader.ensure_loaded(("yolov7", "gpu"))
        assert loader.prefetch([("yolov7", "gpu")]) == []


class TestNaiveMode:
    def test_naive_keeps_single_model_per_accelerator(self, soc):
        loader = DynamicModelLoader(soc, ExecutionEngine(soc), naive=True)
        loader.ensure_loaded(("yolov7", "gpu"))
        loader.ensure_loaded(("yolov7-tiny", "gpu"))
        assert loader.resident_pairs() == [("yolov7-tiny", "gpu")]

    def test_naive_disables_prefetch(self, soc):
        loader = DynamicModelLoader(soc, ExecutionEngine(soc), naive=True)
        assert loader.prefetch([("yolov7", "gpu")]) == []

    def test_naive_other_accelerators_untouched(self, soc):
        loader = DynamicModelLoader(soc, ExecutionEngine(soc), naive=True)
        loader.ensure_loaded(("yolov7", "dla0"))
        loader.ensure_loaded(("yolov7-tiny", "gpu"))
        assert loader.is_resident(("yolov7", "dla0"))


class TestReset:
    def test_reset_unloads_everything(self, soc, loader):
        loader.ensure_loaded(("yolov7", "gpu"))
        loader.ensure_loaded(("yolov7-tiny", "dla0"))
        loader.reset()
        assert loader.resident_pairs() == []
        assert soc.accelerator("gpu").memory.used_mb == 0.0
        assert loader.cold_load_count == 0

    def test_evict_unknown_raises(self, loader):
        with pytest.raises(KeyError):
            loader.evict(("yolov7", "gpu"))


class TestPropertyMemorySafety:
    @given(st.lists(st.sampled_from(
        ["yolov7", "yolov7-x", "yolov7-e6e", "yolov7-tiny",
         "ssd-resnet50", "ssd-mobilenet-v1", "ssd-mobilenet-v2"]
    ), min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_request_sequences_respect_memory(self, sequence):
        soc = xavier_nx_with_oakd()
        loader = DynamicModelLoader(soc, ExecutionEngine(soc))
        for model in sequence:
            loader.ensure_loaded((model, "dla0"))
            soc.clock.advance(0.25)
            pool = soc.accelerator("dla0").memory
            assert pool.used_mb <= pool.capacity_mb + 1e-6
            # Residency bookkeeping matches the pool exactly.
            resident = {p[0] for p in loader.resident_pairs() if p[1] == "dla0"}
            assert resident == set(pool.allocations())
