"""Tests for the SHIFT scheduling heuristic (Algorithm 1)."""

import pytest

from repro.characterization import characterize
from repro.core import ConfidenceGraph, ShiftConfig, ShiftScheduler, TraitTable
from repro.models import default_zoo
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def bundle():
    return characterize(default_zoo(), xavier_nx_with_oakd(), validation_size=150, perf_repeats=5)


@pytest.fixture(scope="module")
def graph(bundle):
    return ConfidenceGraph.build(bundle.observations)


@pytest.fixture(scope="module")
def traits(bundle):
    return TraitTable.build(bundle, xavier_nx_with_oakd())


def _scheduler(traits, graph, **config_overrides):
    return ShiftScheduler(traits, graph, ShiftConfig(**config_overrides))


CURRENT = ("yolov7", "gpu")


class TestEarlyExit:
    def test_stable_context_keeps_pair(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        decision = scheduler.select(CURRENT, confidence=0.8, similarity=0.95)
        assert not decision.rescheduled
        assert decision.pair == CURRENT
        assert decision.scores == {}

    def test_context_change_forces_reschedule(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        decision = scheduler.select(CURRENT, confidence=0.8, similarity=0.05)
        assert decision.rescheduled

    def test_low_confidence_forces_reschedule(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        decision = scheduler.select(CURRENT, confidence=0.1, similarity=0.95)
        assert decision.rescheduled

    def test_gate_threshold_is_product(self, traits, graph):
        scheduler = _scheduler(traits, graph, accuracy_goal=0.5)
        # 0.7 * 0.6 = 0.42 < 0.5 -> reschedule
        assert scheduler.select(CURRENT, 0.7, 0.6).rescheduled
        # 0.9 * 0.6 = 0.54 >= 0.5 -> keep
        assert not scheduler.select(CURRENT, 0.9, 0.6).rescheduled

    def test_context_gate_ablation_always_reschedules(self, traits, graph):
        scheduler = _scheduler(traits, graph, context_gate=False)
        assert scheduler.select(CURRENT, 0.9, 0.99).rescheduled


class TestScoring:
    def test_scores_cover_valid_pairs(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        decision = scheduler.select(CURRENT, 0.6, 0.0)
        assert decision.scores
        assert decision.pair in decision.scores

    def test_pure_energy_knob_picks_cheapest(self, traits, graph):
        scheduler = _scheduler(
            traits, graph,
            knob_accuracy=0.0, knob_energy=1.0, knob_latency=0.0,
            accuracy_goal=0.01, switch_margin=0.0,
        )
        # Goal 0 means every model is valid; pure energy knob must pick the
        # globally cheapest pair.
        decision = scheduler.select(CURRENT, 0.6, 0.0)
        cheapest = min(traits.pairs(), key=lambda p: traits.get(p).energy_j)
        assert decision.pair == cheapest

    def test_pure_latency_knob_picks_fastest(self, traits, graph):
        scheduler = _scheduler(
            traits, graph,
            knob_accuracy=0.0, knob_energy=0.0, knob_latency=1.0,
            accuracy_goal=0.01, switch_margin=0.0,
        )
        decision = scheduler.select(CURRENT, 0.6, 0.0)
        fastest = min(traits.pairs(), key=lambda p: traits.get(p).latency_s)
        assert decision.pair == fastest

    def test_accuracy_knob_prefers_accurate_model(self, traits, graph):
        scheduler = _scheduler(
            traits, graph,
            knob_accuracy=1.0, knob_energy=0.0, knob_latency=0.0,
            accuracy_goal=0.01, switch_margin=0.0,
        )
        decision = scheduler.select(CURRENT, 0.75, 0.0)
        best_model = max(decision.predictions, key=decision.predictions.get)
        assert decision.pair[0] == best_model

    def test_goal_filters_low_accuracy_models(self, traits, graph, bundle):
        scheduler = _scheduler(
            traits, graph,
            accuracy_goal=0.5, knob_energy=1.0, knob_latency=1.0, switch_margin=0.0,
        )
        decision = scheduler.select(CURRENT, 0.8, 0.0)
        # The chosen model must meet the goal when any model does.
        if any(a >= 0.5 for a in decision.predictions.values()):
            assert decision.predictions[decision.pair[0]] >= 0.5

    def test_unreachable_goal_falls_back_to_all(self, traits, graph):
        scheduler = _scheduler(traits, graph, accuracy_goal=0.99, switch_margin=0.0)
        decision = scheduler.select(CURRENT, 0.3, 0.0)
        assert decision.rescheduled
        assert decision.pair in traits.pairs()

    def test_deterministic(self, traits, graph):
        a = _scheduler(traits, graph).select(CURRENT, 0.5, 0.0)
        b = _scheduler(traits, graph).select(CURRENT, 0.5, 0.0)
        assert a.pair == b.pair
        assert a.scores == b.scores


class TestHysteresis:
    def test_margin_keeps_incumbent_on_near_tie(self, traits, graph):
        sticky = _scheduler(traits, graph, switch_margin=10.0)
        decision = sticky.select(CURRENT, 0.4, 0.0)
        assert decision.pair == CURRENT  # nothing can beat a margin of 10

    def test_zero_margin_switches_freely(self, traits, graph):
        free = _scheduler(traits, graph, switch_margin=0.0)
        decision = free.select(CURRENT, 0.4, 0.0)
        best = max(decision.scores, key=lambda p: (decision.scores[p], p[0], p[1]))
        assert decision.pair == best


class TestMomentum:
    def test_buffers_seeded_with_prior(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        for model in traits.models():
            assert scheduler.predicted_accuracy(model) == pytest.approx(
                traits.accuracy_prior(model)
            )

    def test_momentum_smooths_updates(self, traits, graph):
        fast = _scheduler(traits, graph, momentum=1)
        slow = _scheduler(traits, graph, momentum=50)
        for _ in range(3):
            fast.select(CURRENT, 0.05, 0.0)
            slow.select(CURRENT, 0.05, 0.0)
        # After a few terrible frames the momentum-1 scheduler's estimate
        # collapses further than the momentum-50 one.
        assert fast.predicted_accuracy("yolov7") < slow.predicted_accuracy("yolov7")

    def test_reset_restores_prior(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        scheduler.select(CURRENT, 0.05, 0.0)
        scheduler.reset()
        assert scheduler.predicted_accuracy("yolov7") == pytest.approx(
            traits.accuracy_prior("yolov7")
        )

    def test_unknown_model_estimate_raises(self, traits, graph):
        with pytest.raises(KeyError):
            _scheduler(traits, graph).predicted_accuracy("ghost")


class TestAblations:
    def test_no_cg_uses_raw_confidence(self, traits, graph):
        scheduler = _scheduler(traits, graph, use_confidence_graph=False, momentum=1)
        scheduler.select(CURRENT, 0.42, 0.0)
        # Only the running model's estimate moves; with momentum=1 it
        # becomes exactly the raw confidence.
        assert scheduler.predicted_accuracy("yolov7") == pytest.approx(0.42)
        assert scheduler.predicted_accuracy("yolov7-tiny") == pytest.approx(
            traits.accuracy_prior("yolov7-tiny")
        )


class TestRankedPairs:
    def test_ranked_pairs_complete_and_sorted(self, traits, graph):
        scheduler = _scheduler(traits, graph)
        ranked = scheduler.ranked_pairs()
        assert len(ranked) == len(traits.pairs())
        assert set(ranked) == set(traits.pairs())

    def test_graph_rethresholded_to_config(self, traits, graph):
        scheduler = _scheduler(traits, graph, distance_threshold=0.9)
        assert scheduler.graph.distance_threshold == 0.9
