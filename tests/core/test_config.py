"""Tests for SHIFT configuration validation."""

import pytest

from repro.core import PAPER_CONFIG, ShiftConfig


class TestShiftConfig:
    def test_paper_defaults(self):
        config = PAPER_CONFIG
        assert config.accuracy_goal == 0.25
        assert config.momentum == 30
        assert config.distance_threshold == 0.5
        assert config.weights == (1.0, 0.5, 0.5)

    def test_invalid_goal_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(accuracy_goal=1.5)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(momentum=0)

    def test_negative_knob_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(knob_energy=-0.5)

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(bin_width=0.0)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(switch_margin=-0.1)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(scheduler_overhead_s=-0.001)

    def test_invalid_overhead_power_rejected(self):
        with pytest.raises(ValueError):
            ShiftConfig(scheduler_overhead_power_w=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_CONFIG.momentum = 5  # type: ignore[misc]

    def test_ablation_flags_default_to_full_system(self):
        config = ShiftConfig()
        assert config.use_confidence_graph
        assert config.context_gate
        assert not config.naive_loading
        assert config.prefetch
