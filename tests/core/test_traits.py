"""Tests for the scheduler-facing trait table."""

import pytest

from repro.characterization import characterize
from repro.core import TraitTable
from repro.models import default_zoo
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def bundle():
    return characterize(default_zoo(), xavier_nx_with_oakd(), validation_size=60, perf_repeats=5)


@pytest.fixture(scope="module")
def table(bundle):
    return TraitTable.build(bundle, xavier_nx_with_oakd())


class TestBuild:
    def test_18_pairs_without_cpu(self, table):
        assert len(table) == 18

    def test_cpu_included_when_allowed(self, bundle):
        table = TraitTable.build(bundle, xavier_nx_with_oakd(), allow_cpu=True)
        assert ("yolov7", "cpu") in table
        assert len(table) == 20  # 18 + the two CPU-profiled YOLO models

    def test_scores_normalized_and_inverted(self, table):
        scores_e = [table.get(p).energy_score for p in table.pairs()]
        scores_l = [table.get(p).latency_score for p in table.pairs()]
        assert min(scores_e) == 0.0 and max(scores_e) == 1.0
        assert min(scores_l) == 0.0 and max(scores_l) == 1.0

    def test_cheapest_pair_scores_one(self, table):
        cheapest = min(table.pairs(), key=lambda p: table.get(p).energy_j)
        assert table.get(cheapest).energy_score == 1.0

    def test_most_expensive_pair_scores_zero(self, table):
        priciest = max(table.pairs(), key=lambda p: table.get(p).energy_j)
        assert table.get(priciest).energy_score == 0.0

    def test_pairs_for_model(self, table):
        pairs = table.pairs_for_model("yolov7")
        assert ("yolov7", "gpu") in pairs
        assert ("yolov7", "dla0") in pairs
        assert ("yolov7", "oakd") in pairs

    def test_models(self, table):
        assert len(table.models()) == 8

    def test_unknown_pair_raises(self, table):
        with pytest.raises(KeyError):
            table.get(("yolov7", "tpu"))

    def test_accuracy_prior_from_characterization(self, table, bundle):
        assert table.accuracy_prior("yolov7") == bundle.accuracy["yolov7"].mean_iou
        with pytest.raises(KeyError):
            table.accuracy_prior("ghost")

    def test_contains(self, table):
        assert ("yolov7", "gpu") in table
        assert ("yolov7", "cpu") not in table
