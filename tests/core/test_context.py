"""Tests for the context-change detector."""

from repro.core import ContextDetector
from repro.vision import BackgroundStyle, BoundingBox, render_frame

_CALM = BackgroundStyle(complexity=0.2, brightness=0.8, contrast=0.2, pattern_seed=21)
_BUSY = BackgroundStyle(complexity=0.9, brightness=0.2, contrast=0.8, pattern_seed=99)


def _frame(style=_CALM, cx=48.0):
    box = BoundingBox.from_center(cx, 48, 20, 13)
    return render_frame(style, box, frame_size=96), box


class TestContextDetector:
    def test_first_frame_scores_zero(self):
        detector = ContextDetector()
        image, box = _frame()
        assert detector.similarity(image, box) == 0.0
        assert not detector.primed

    def test_identical_frame_scores_high(self):
        detector = ContextDetector()
        image, box = _frame()
        detector.observe(image, box)
        assert detector.primed
        assert detector.similarity(image, box) > 0.95

    def test_small_motion_stays_similar(self):
        detector = ContextDetector()
        image_a, box_a = _frame(cx=46)
        image_b, box_b = _frame(cx=50)
        detector.observe(image_a, box_a)
        assert detector.similarity(image_b, box_b) > 0.7

    def test_background_change_detected(self):
        detector = ContextDetector()
        image_a, box_a = _frame(_CALM)
        image_b, box_b = _frame(_BUSY)
        detector.observe(image_a, box_a)
        assert detector.similarity(image_b, box_b) < 0.5

    def test_lost_detection_scores_zero(self):
        detector = ContextDetector()
        image, box = _frame()
        detector.observe(image, box)
        assert detector.similarity(image, None) == 0.0

    def test_reset(self):
        detector = ContextDetector()
        image, box = _frame()
        detector.observe(image, box)
        detector.reset()
        assert not detector.primed
        assert detector.similarity(image, box) == 0.0

    def test_observe_updates_reference(self):
        detector = ContextDetector()
        image_a, box_a = _frame(_CALM)
        image_b, box_b = _frame(_BUSY)
        detector.observe(image_a, box_a)
        detector.observe(image_b, box_b)
        # Now the busy frame is the reference: it matches itself.
        assert detector.similarity(image_b, box_b) > 0.95
