"""Fast-path scheduler and dense CG lookup: equality with the reference.

``select_fast`` and ``DenseConfidenceLookup`` exist purely for speed; the
only property worth testing is that they are indistinguishable from the
dict-based reference — same decisions, same momentum state, same floats —
across the input space (seeded random sweeps over confidence/similarity).
"""

import random

import pytest

from repro.characterization import characterize
from repro.core import ConfidenceGraph, ShiftConfig, ShiftScheduler, TraitTable
from repro.models import default_zoo
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def bundle():
    return characterize(default_zoo(), xavier_nx_with_oakd(), validation_size=160)


@pytest.fixture(scope="module")
def graph(bundle):
    return ConfidenceGraph.build(bundle.observations)


@pytest.fixture(scope="module")
def traits(bundle):
    return TraitTable.build(bundle, xavier_nx_with_oakd())


def _schedulers(traits, graph, config):
    return (
        ShiftScheduler(traits, graph, config),
        ShiftScheduler(traits, graph, config),
    )


class TestDenseLookup:
    def test_dense_matches_predict_everywhere(self, graph):
        dense = graph.dense()
        for model in graph.models():
            for confidence in [i / 40 for i in range(41)]:
                row = dense.row(model, confidence)
                assert row is not None
                accuracy, valid = row
                predictions = {p.model_name: p for p in graph.predict(model, confidence)}
                for target, idx in dense.model_index.items():
                    if target in predictions:
                        assert valid[idx]
                        assert accuracy[idx] == predictions[target].accuracy
                    else:
                        assert not valid[idx]

    def test_unknown_model_row_is_none(self, graph):
        assert graph.dense().row("no-such-model", 0.5) is None

    def test_dense_is_cached(self, graph):
        assert graph.dense() is graph.dense()

    def test_fingerprint_distinguishes_thresholds(self, graph):
        assert graph.fingerprint() != graph.with_distance_threshold(0.25).fingerprint()
        assert graph.fingerprint() == graph.fingerprint()


class TestSelectFastEquality:
    @pytest.mark.parametrize(
        "config",
        [
            ShiftConfig(),
            ShiftConfig(context_gate=False),
            ShiftConfig(use_confidence_graph=False),
            ShiftConfig(accuracy_goal=0.9),  # goal nobody meets -> fallback branch
            ShiftConfig(switch_margin=0.0),
            ShiftConfig(momentum=3),
        ],
        ids=["paper", "no-gate", "no-cg", "high-goal", "no-margin", "short-momentum"],
    )
    def test_random_sweep_agrees_with_reference(self, traits, graph, config):
        reference, fast = _schedulers(traits, graph, config)
        rng = random.Random(42)
        pairs = traits.pairs()
        current_ref = current_fast = pairs[0]
        for step in range(400):
            confidence = rng.random()
            similarity = rng.random()
            ref_decision = reference.select(current_ref, confidence, similarity)
            fast_decision = fast.select_fast(current_fast, confidence, similarity)
            assert ref_decision.pair == fast_decision.pair, f"diverged at step {step}"
            assert ref_decision.rescheduled == fast_decision.rescheduled
            assert ref_decision.similarity == fast_decision.similarity
            # Momentum state must track exactly, or later steps drift.
            for model in traits.models():
                assert reference.predicted_accuracy(model) == fast.predicted_accuracy(model)
            current_ref, current_fast = ref_decision.pair, fast_decision.pair

    def test_ranked_pairs_match_after_updates(self, traits, graph):
        reference, fast = _schedulers(traits, graph, ShiftConfig())
        rng = random.Random(7)
        current = traits.pairs()[0]
        for _ in range(50):
            reference.select(current, rng.random(), rng.random())
        rng = random.Random(7)
        for _ in range(50):
            fast.select_fast(current, rng.random(), rng.random())
        assert reference.ranked_pairs() == fast.ranked_pairs()

    def test_unschedulable_current_pair_forces_reschedule(self, traits, graph):
        reference, fast = _schedulers(traits, graph, ShiftConfig())
        ghost = ("yolov7", "no-such-accel")
        ref_decision = reference.select(ghost, 0.99, 0.99)
        fast_decision = fast.select_fast(ghost, 0.99, 0.99)
        assert ref_decision.pair == fast_decision.pair
        assert ref_decision.rescheduled and fast_decision.rescheduled
