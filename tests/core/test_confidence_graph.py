"""Tests for the confidence graph (§III-A, six-step construction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization import ConfidenceObservation
from repro.core import ConfidenceGraph


def _obs(index, readings, difficulty=0.5):
    return ConfidenceObservation(sample_index=index, difficulty=difficulty, readings=readings)


def _simple_observations():
    """Two models whose confidences track a shared latent difficulty."""
    observations = []
    for i in range(60):
        latent = (i % 10) / 10.0  # 0.0 .. 0.9
        observations.append(
            _obs(
                i,
                {
                    "big": (min(latent + 0.05, 1.0), min(latent + 0.1, 1.0)),
                    "small": (latent, max(latent - 0.1, 0.0)),
                },
            )
        )
    return observations


class TestConstruction:
    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceGraph.build([])

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceGraph.build(_simple_observations(), bin_width=0.0)
        with pytest.raises(ValueError):
            ConfidenceGraph.build(_simple_observations(), bin_width=1.5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceGraph.build(_simple_observations(), distance_threshold=-0.1)

    def test_nodes_are_model_bin_pairs(self):
        graph = ConfidenceGraph.build(_simple_observations())
        assert graph.models() == ["big", "small"]
        assert graph.node_count > 2
        for model, bin_idx in graph.node_keys():
            assert model in ("big", "small")
            assert 0 <= bin_idx <= 9

    def test_edges_created_between_co_occurring_bins(self):
        graph = ConfidenceGraph.build(_simple_observations())
        assert graph.edge_count > 0

    def test_node_accuracy_is_mean_iou_of_bin(self):
        observations = [
            _obs(0, {"a": (0.55, 0.6), "b": (0.1, 0.1)}),
            _obs(1, {"a": (0.52, 0.8), "b": (0.1, 0.1)}),
        ]
        graph = ConfidenceGraph.build(observations)
        assert graph.expected_accuracy(("a", 5)) == pytest.approx(0.7)
        assert graph.observation_count(("a", 5)) == 2

    def test_bin_index_top_bin_folds(self):
        graph = ConfidenceGraph.build(_simple_observations())
        assert graph.bin_index(1.0) == 9
        assert graph.bin_index(0.0) == 0
        assert graph.bin_index(0.55) == 5


class TestPrediction:
    def test_prediction_covers_correlated_model(self):
        graph = ConfidenceGraph.build(_simple_observations())
        predictions = {p.model_name: p for p in graph.predict("big", 0.85)}
        assert "small" in predictions
        assert "big" in predictions

    def test_high_confidence_predicts_high_accuracy(self):
        graph = ConfidenceGraph.build(_simple_observations())
        high = {p.model_name: p.accuracy for p in graph.predict("big", 0.85)}
        low = {p.model_name: p.accuracy for p in graph.predict("big", 0.05)}
        assert high["big"] > low["big"]
        assert high["small"] > low["small"]

    def test_predictions_in_unit_interval(self):
        graph = ConfidenceGraph.build(_simple_observations())
        for confidence in (0.0, 0.3, 0.6, 0.95):
            for prediction in graph.predict("big", confidence):
                assert 0.0 <= prediction.accuracy <= 1.0
                assert prediction.distance >= 0.0

    def test_unseen_bin_falls_back_to_nearest(self):
        observations = [
            _obs(0, {"a": (0.95, 0.9), "b": (0.9, 0.8)}),
            _obs(1, {"a": (0.92, 0.85), "b": (0.88, 0.8)}),
        ]
        graph = ConfidenceGraph.build(observations)
        # Bin 0 for model "a" was never observed; prediction still works.
        predictions = graph.predict("a", 0.02)
        assert predictions

    def test_unknown_model_returns_empty(self):
        graph = ConfidenceGraph.build(_simple_observations())
        assert graph.predict("ghost", 0.5) == []

    def test_self_prediction_at_distance_zero_dominates(self):
        graph = ConfidenceGraph.build(_simple_observations())
        predictions = {p.model_name: p for p in graph.predict("big", 0.85)}
        # The start node itself is at distance 0; consolidation keeps the
        # same-model prediction closest.
        assert predictions["big"].distance <= predictions["small"].distance + 1.0


class TestDistanceThreshold:
    def test_zero_threshold_predicts_only_self(self):
        graph = ConfidenceGraph.build(_simple_observations(), distance_threshold=0.0)
        predictions = graph.predict("big", 0.85)
        names = {p.model_name for p in predictions}
        # Distance-0 reachable set: the start node plus any perfectly
        # correlated nodes (cost 0 edges are that node's strongest edges).
        assert "big" in names

    def test_larger_threshold_reaches_no_fewer_models(self):
        narrow = ConfidenceGraph.build(_simple_observations(), distance_threshold=0.1)
        wide = narrow.with_distance_threshold(2.0)
        for confidence in (0.15, 0.55, 0.85):
            assert len(wide.predict("big", confidence)) >= len(narrow.predict("big", confidence))

    def test_rethreshold_shares_structure(self):
        graph = ConfidenceGraph.build(_simple_observations())
        other = graph.with_distance_threshold(1.0)
        assert other.node_count == graph.node_count
        assert other.edge_count == graph.edge_count
        assert other.distance_threshold == 1.0

    def test_rethreshold_negative_rejected(self):
        graph = ConfidenceGraph.build(_simple_observations())
        with pytest.raises(ValueError):
            graph.with_distance_threshold(-1.0)


@st.composite
def observation_sets(draw):
    n = draw(st.integers(5, 25))
    observations = []
    for i in range(n):
        base = draw(st.floats(0.0, 1.0))
        readings = {}
        for model in ("a", "b", "c"):
            conf = min(1.0, max(0.0, base + draw(st.floats(-0.2, 0.2))))
            iou = min(1.0, max(0.0, base + draw(st.floats(-0.3, 0.3))))
            readings[model] = (conf, iou)
        observations.append(_obs(i, readings))
    return observations


class TestProperties:
    @given(observation_sets())
    @settings(max_examples=40, deadline=None)
    def test_predictions_always_bounded(self, observations):
        graph = ConfidenceGraph.build(observations)
        for model in graph.models():
            for confidence in (0.0, 0.5, 1.0):
                for prediction in graph.predict(model, confidence):
                    assert 0.0 <= prediction.accuracy <= 1.0
                    assert 0.0 <= prediction.distance <= graph.distance_threshold + 1e-9

    @given(observation_sets())
    @settings(max_examples=40, deadline=None)
    def test_prediction_map_total_over_nodes(self, observations):
        graph = ConfidenceGraph.build(observations)
        for model, bin_idx in graph.node_keys():
            confidence = (bin_idx + 0.5) * graph.bin_width
            predictions = graph.predict(model, confidence)
            assert any(p.model_name == model for p in predictions)

    @given(observation_sets())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_construction(self, observations):
        a = ConfidenceGraph.build(observations)
        b = ConfidenceGraph.build(observations)
        for model in a.models():
            assert a.predict(model, 0.5) == b.predict(model, 0.5)
