"""Tests for the SHIFT pipeline as a runnable policy."""

import pytest

from repro.characterization import characterize
from repro.core import ShiftConfig, ShiftPipeline
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, aggregate, run_policy
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def bundle(zoo):
    return characterize(zoo, xavier_nx_with_oakd(), validation_size=150, perf_repeats=5)


@pytest.fixture(scope="module")
def trace(zoo):
    scenario = scenario_by_name("s1_multi_background_varying_distance").scaled(0.08)
    return ScenarioTrace.build(scenario, zoo)


class TestLifecycle:
    def test_step_before_begin_raises(self, bundle, trace):
        pipeline = ShiftPipeline(bundle)
        with pytest.raises(RuntimeError):
            pipeline.step(trace.frames[0])

    def test_accessors_before_begin_raise(self, bundle):
        pipeline = ShiftPipeline(bundle)
        with pytest.raises(RuntimeError):
            _ = pipeline.loader
        with pytest.raises(RuntimeError):
            _ = pipeline.scheduler


class TestRun:
    def test_produces_record_per_frame(self, bundle, trace):
        result = run_policy(ShiftPipeline(bundle), trace)
        assert result.frame_count == trace.frame_count
        assert result.policy_name == "shift"

    def test_records_well_formed(self, bundle, trace):
        result = run_policy(ShiftPipeline(bundle), trace)
        for record in result.records:
            assert 0.0 <= record.iou <= 1.0
            assert 0.0 <= record.confidence <= 1.0
            assert record.latency_s > 0
            assert record.energy_j > 0
            assert record.overhead_s == pytest.approx(0.0015)
            assert (record.model_name, record.accelerator_name) == record.pair

    def test_deterministic_across_runs(self, bundle, trace):
        a = run_policy(ShiftPipeline(bundle), trace, engine_seed=7)
        b = run_policy(ShiftPipeline(bundle), trace, engine_seed=7)
        assert [r.pair for r in a.records] == [r.pair for r in b.records]
        assert [r.energy_j for r in a.records] == [r.energy_j for r in b.records]

    def test_first_frame_cold_loads(self, bundle, trace):
        result = run_policy(ShiftPipeline(bundle), trace)
        assert result.records[0].cold_load
        assert result.records[0].stall_s > 0

    def test_reuse_requires_fresh_begin(self, bundle, trace):
        pipeline = ShiftPipeline(bundle)
        first = run_policy(pipeline, trace)
        second = run_policy(pipeline, trace)  # runner calls begin() again
        assert [r.pair for r in first.records] == [r.pair for r in second.records]

    def test_scheduler_overhead_configurable(self, bundle, trace):
        config = ShiftConfig(scheduler_overhead_s=0.0)
        result = run_policy(ShiftPipeline(bundle, config=config), trace)
        assert all(r.overhead_s == 0.0 for r in result.records)

    def test_initial_model_respected(self, bundle, trace):
        config = ShiftConfig(initial_model="yolov7-tiny")
        pipeline = ShiftPipeline(bundle, config=config)
        result = run_policy(pipeline, trace)
        assert result.records[0].model_name in {"yolov7-tiny"} | set(
            m for m in bundle.model_names()
        )

    def test_unknown_initial_model_falls_back(self, bundle, trace):
        config = ShiftConfig(initial_model="not-a-model")
        result = run_policy(ShiftPipeline(bundle, config=config), trace)
        assert result.frame_count == trace.frame_count


class TestBehaviour:
    def test_adapts_to_cheaper_pairs(self, bundle, trace):
        metrics = aggregate(run_policy(ShiftPipeline(bundle), trace))
        # SHIFT must leave the initial yolov7@gpu pair for cheaper ones.
        assert metrics.pairs_used >= 2 or metrics.non_gpu_share > 0

    def test_prefetch_reduces_stall_frames(self, bundle, trace):
        with_prefetch = run_policy(ShiftPipeline(bundle, config=ShiftConfig(prefetch=True)), trace)
        without = run_policy(ShiftPipeline(bundle, config=ShiftConfig(prefetch=False)), trace)
        stalls_with = sum(1 for r in with_prefetch.records if r.cold_load)
        stalls_without = sum(1 for r in without.records if r.cold_load)
        assert stalls_with <= stalls_without

    def test_similarity_recorded(self, bundle, trace):
        result = run_policy(ShiftPipeline(bundle), trace)
        assert result.records[0].similarity == 0.0  # no history on frame 0
        assert any(r.similarity > 0.5 for r in result.records[1:])
