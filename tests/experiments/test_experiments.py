"""Tests for the experiment harness (tables, figures, sensitivity).

These run at a very small scale: the goal is correctness of the harness
plumbing, not paper-scale numbers (the benchmarks cover those).
"""

import pytest

from repro.core import ShiftConfig
from repro.experiments import (
    ExperimentContext,
    figure1,
    figure2,
    figure3,
    figure4,
    headline_claims,
    sensitivity_analysis,
    table1,
    table2,
    table3,
    table4,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=0.05, validation_size=150)


class TestContext:
    def test_lazy_shared_artifacts(self, ctx):
        assert ctx.bundle is ctx.bundle
        assert ctx.graph is ctx.graph
        assert ctx.soc is ctx.soc

    def test_scaled_scenarios(self, ctx):
        scenarios = ctx.scenarios()
        assert len(scenarios) == 6
        assert all(s.total_frames < 200 for s in scenarios)

    def test_scenario_lookup(self, ctx):
        scenario = ctx.scenario("s2_fixed_distance_crossing")
        assert scenario.name == "s2_fixed_distance_crossing"
        with pytest.raises(KeyError):
            ctx.scenario("nope")

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentContext(validation_size=0)


class TestTables:
    def test_table1_rows(self, ctx):
        result = table1(ctx)
        assert len(result.rows) == 3

    def test_table2_static(self):
        result = table2()
        assert len(result.rows) == 6

    def test_table3_structure(self, ctx):
        result = table3(ctx)
        assert set(result.metrics) == {
            "Marlin", "Marlin Tiny", "SHIFT", "Oracle E", "Oracle A", "Oracle L",
        }
        assert len(result.table.rows) == 6
        for runs in result.per_scenario.values():
            assert len(runs) == 6  # one per scenario

    def test_table3_custom_config(self, ctx):
        result = table3(ctx, ShiftConfig(knob_energy=1.0))
        assert "SHIFT" in result.metrics

    def test_table4_all_models(self, ctx):
        result = table4(ctx)
        assert len(result.rows) == 8

    def test_headline_positive_ratios(self, ctx):
        claims = headline_claims(ctx)
        assert claims.energy_improvement > 1.0
        assert claims.iou_ratio > 0.5


class TestFigures:
    def test_figure1_sets(self, ctx):
        result = figure1(ctx)
        assert len(result.single_family) == 4
        assert len(result.multi_model) == 6

    def test_figure2_series(self, ctx):
        result = figure2(ctx, window=10)
        assert set(result.series) == set(ctx.zoo.names())

    def test_figure3_timeline(self, ctx):
        result = figure3(ctx, window=10)
        assert len(result.shift_models) == ctx.scenario(
            "s1_multi_background_varying_distance"
        ).total_frames
        assert 0.0 <= result.rescheduled_share <= 1.0

    def test_figure4_timeline(self, ctx):
        result = figure4(ctx, window=10)
        assert result.scenario_name == "s2_fixed_distance_crossing"
        assert len(result.segments) == len(result.shift_models)


class TestSensitivity:
    def test_small_sweep(self, ctx):
        result = sensitivity_analysis(ctx, scenario_scale=0.5)
        assert len(result.points) > 100
        for parameter, per_metric in result.correlations.items():
            for metric, r in per_metric.items():
                assert -1.0 <= r <= 1.0, (parameter, metric)

    def test_correlation_lookup(self, ctx):
        result = sensitivity_analysis(ctx, scenario_scale=0.5)
        assert result.correlation("knob_energy", "energy") == (
            result.correlations["knob_energy"]["energy"]
        )
