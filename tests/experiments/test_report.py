"""Tests for table rendering."""

import pytest

from repro.experiments import TableData, format_cell, render_markdown, render_table


def _table():
    table = TableData(title="T", headers=["A", "B"])
    table.add_row("x", 1.23456)
    table.add_row("y", None)
    return table


class TestTableData:
    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TableData(title="T", headers=[])

    def test_row_width_checked(self):
        table = TableData(title="T", headers=["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_mismatched_initial_rows_rejected(self):
        with pytest.raises(ValueError):
            TableData(title="T", headers=["A"], rows=[["x", "y"]])

    def test_column(self):
        assert _table().column("A") == ["x", "y"]
        with pytest.raises(KeyError):
            _table().column("Z")


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_precision(self):
        assert format_cell(1.23456, precision=2) == "1.23"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRender:
    def test_ascii_contains_all_cells(self):
        text = render_table(_table())
        assert "T" in text and "1.235" in text and "-" in text

    def test_notes_rendered(self):
        table = _table()
        table.notes.append("a note")
        assert "note: a note" in render_table(table)

    def test_markdown_structure(self):
        text = render_markdown(_table())
        assert text.startswith("### T")
        assert "| A | B |" in text
        assert "| x | 1.235 |" in text

    def test_alignment_consistent(self):
        lines = render_table(_table()).splitlines()
        header_row = lines[2]
        data_rows = lines[4:6]
        for row in data_rows:
            assert len(row) <= len(header_row) + 2
