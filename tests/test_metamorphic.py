"""Metamorphic tests for the grammar -> trace -> run pipeline.

Differential checks (:mod:`repro.verify`) prove two *engines* agree on
one input; metamorphic tests prove one engine is invariant under input
transformations that must not matter:

* **renaming** a recipe relabels its scenario but never reshuffles the
  content — every derived seed comes from the recipe's
  :meth:`~repro.data.grammar.ScenarioRecipe.content_key`, not its name;
* **permuting** the (policies, scenarios) axes of a sweep leaves every
  per-(policy, scenario) metrics row unchanged — scheduling order is not
  an input to any run;
* **subsetting** a fuzz sample (the ``REPRO_FUZZ_SCENARIOS`` knob) agrees
  with the full matrix on the intersection — a quick smoke and a nightly
  full sweep can never disagree about a shared scenario.
"""

import dataclasses
import random

import pytest

from repro.baselines import MarlinPolicy, SingleModelPolicy
from repro.data import ScenarioMatrix, ScenarioRecipe, scenario_by_name
from repro.data.generator import render_scenario
from repro.models import default_zoo
from repro.runtime import ExperimentRunner, TraceCache
from repro.verify import sample_matrix
from repro.verify.fuzz import SCENARIOS_ENV, default_sample_count

# A deliberately tiny matrix: metamorphic properties are about *relations*
# between runs, so the flights only need to be big enough to exercise the
# pipeline, not to be representative.
SMALL_MATRIX = ScenarioMatrix(
    name="meta",
    compositions=(("loiter",), ("pan_burst", "loiter")),
    regimes=("day", "fog"),
    seeds=(3,),
    frame_budgets=(24,),
)


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


def _policies():
    # Fresh instances per call: policies are stateful across a run.
    return [SingleModelPolicy("yolov7-tiny", "gpu"), MarlinPolicy("yolov7")]


class TestRenameInvariance:
    def _pair(self, **overrides):
        base = dict(families=("crossing", "loiter"), regime_name="night",
                    base_seed=77, frame_budget=48)
        base.update(overrides)
        return (
            ScenarioRecipe(name="alpha", **base).build(),
            ScenarioRecipe(name="omega_renamed", **base).build(),
        )

    def test_rename_changes_only_the_label(self):
        a, b = self._pair()
        assert a.name != b.name
        assert a.seed == b.seed, "scenario seed must derive from content, not name"
        assert a.segments == b.segments
        assert a.indoor == b.indoor and a.frame_size == b.frame_size

    def test_rename_preserves_fingerprint_up_to_the_name(self):
        # The fingerprint hashes the name (names label store entries), so
        # renaming changes the digest — but restoring the label must
        # restore the digest exactly: nothing else drifted.
        a, b = self._pair()
        assert a.fingerprint() != b.fingerprint()
        relabelled = dataclasses.replace(b, name=a.name, description=a.description)
        assert relabelled.fingerprint() == a.fingerprint()

    def test_rename_preserves_rendered_pixels(self):
        import numpy as np

        a, b = self._pair(families=("popup",), frame_budget=16, regime_name="indoor")
        for fa, fb in zip(render_scenario(a), render_scenario(b), strict=True):
            assert np.array_equal(fa.image, fb.image)
            assert fa.ground_truth == fb.ground_truth
            assert fa.difficulty == fb.difficulty

    def test_content_key_excludes_the_name(self):
        key = ScenarioRecipe(name="x", families=("loiter",)).content_key()
        assert ScenarioRecipe(name="y", families=("loiter",)).content_key() == key
        assert ScenarioRecipe(name="x", families=("popup",)).content_key() != key
        assert ScenarioRecipe(name="x", families=("loiter",), base_seed=1).content_key() != key


class TestSweepOrderInvariance:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return SMALL_MATRIX.scenarios()

    def _rows(self, policies, scenarios, zoo):
        runner = ExperimentRunner(cache=TraceCache(zoo))
        result = runner.sweep(policies, scenarios)
        return {
            (policy_name, m.scenario_name): m
            for policy_name, rows in result.items()
            for m in rows
        }

    def test_permuting_both_axes_changes_no_row(self, scenarios, zoo):
        rng = random.Random(5)
        forward = self._rows(_policies(), scenarios, zoo)
        shuffled_policies = _policies()
        rng.shuffle(shuffled_policies)
        shuffled_scenarios = list(scenarios)
        rng.shuffle(shuffled_scenarios)
        backward = self._rows(shuffled_policies, shuffled_scenarios, zoo)
        assert forward == backward, "sweep order leaked into per-pair metrics"

    def test_rows_keep_scenario_order_per_policy(self, scenarios, zoo):
        runner = ExperimentRunner(cache=TraceCache(zoo))
        result = runner.sweep(_policies(), scenarios)
        for rows in result.values():
            assert [m.scenario_name for m in rows] == [s.name for s in scenarios]


class TestSubsetAgreement:
    def test_sampled_subset_is_the_full_matrix_on_the_intersection(self):
        full = {s.name: s.fingerprint() for s in sample_matrix(SMALL_MATRIX, count=0)}
        for count in (1, 2, 3):
            subset = sample_matrix(SMALL_MATRIX, count=count, seed=11)
            assert len(subset) == count
            for scenario in subset:
                assert full[scenario.name] == scenario.fingerprint(), (
                    f"{scenario.name} differs between the subset and the full matrix"
                )

    def test_env_knob_subsets_agree_with_full_on_metrics(self, zoo, monkeypatch):
        # A smoke run (REPRO_FUZZ_SCENARIOS=2) and a full run (0 = all)
        # must report identical metrics for every scenario they share,
        # computed by *independent* runners (no shared traces or caches).
        monkeypatch.setenv(SCENARIOS_ENV, "2")
        subset = sample_matrix(SMALL_MATRIX, count=default_sample_count(), seed=3)
        monkeypatch.setenv(SCENARIOS_ENV, "0")
        full = sample_matrix(SMALL_MATRIX, count=default_sample_count(), seed=3)
        assert len(subset) == 2 and len(full) == len(SMALL_MATRIX)
        policy = _policies()[0]

        def metrics_by_name(scenarios):
            runner = ExperimentRunner(cache=TraceCache(zoo))
            rows = runner.run_policy_on_scenarios(policy, scenarios)
            return {m.scenario_name: m for m in rows}

        small = metrics_by_name(subset)
        big = metrics_by_name(full)
        shared = set(small) & set(big)
        assert shared == {s.name for s in subset}
        for name in shared:
            assert small[name] == big[name], f"{name}: subset and full sweeps disagree"

    def test_generated_names_resolve_identically_everywhere(self):
        # By-name resolution (what the CLI, stores, and workers use) and
        # direct matrix expansion must agree on content — names and
        # objects are interchangeable.
        from repro.data import default_matrix

        expanded = {s.name: s.fingerprint() for s in default_matrix().scenarios()}
        for name in list(expanded)[:5]:
            assert scenario_by_name(name).fingerprint() == expanded[name]
