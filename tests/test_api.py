"""Public API surface tests: the names a downstream user depends on."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_core_entry_points(self):
        assert callable(repro.characterize)
        assert callable(repro.default_zoo)
        assert callable(repro.xavier_nx_with_oakd)
        assert callable(repro.run_policy)

    def test_policies_are_policies(self):
        from repro.runtime import Policy

        assert issubclass(repro.ShiftPipeline, Policy)
        assert issubclass(repro.MarlinPolicy, Policy)
        assert issubclass(repro.SingleModelPolicy, Policy)
        assert issubclass(repro.OraclePolicy, Policy)

    def test_quickstart_docstring_names_exist(self):
        # The module docstring's quickstart must only use exported names.
        for name in (
            "default_zoo", "xavier_nx_with_oakd", "characterize",
            "ShiftPipeline", "ExperimentRunner", "TraceStore", "TraceCache",
            "run_policy", "aggregate", "average_metrics",
            "evaluation_scenarios", "scenario_by_name",
        ):
            assert hasattr(repro, name)

    def test_experiments_importable(self):
        from repro import experiments

        assert callable(experiments.table3)
        assert callable(experiments.figure5)
