"""exceptions/* and layering/* rules."""

from __future__ import annotations


class TestBareExcept:
    def test_fires_anywhere(self, tree):
        tree.write("experiments/fig.py", """
            def render():
                try:
                    return 1
                except:
                    return None
        """)
        assert "exceptions/bare" in tree.rules_fired()

    def test_quiet_on_named_exception(self, tree):
        tree.write("experiments/fig.py", """
            def render():
                try:
                    return 1
                except ValueError:
                    return None
        """)
        assert "exceptions/bare" not in tree.rules_fired()


class TestSwallow:
    def test_fires_on_pass_body_in_runtime(self, tree):
        tree.write("runtime/loop.py", """
            def drain(jobs):
                for job in jobs:
                    try:
                        job()
                    except OSError:
                        pass
        """)
        assert "exceptions/swallow" in tree.rules_fired()

    def test_fires_on_continue_body(self, tree):
        tree.write("service/loop.py", """
            def drain(jobs):
                for job in jobs:
                    try:
                        job()
                    except ValueError:
                        continue
        """)
        assert "exceptions/swallow" in tree.rules_fired()

    def test_quiet_when_handled(self, tree):
        tree.write("runtime/loop.py", """
            def drain(jobs, failures):
                for job in jobs:
                    try:
                        job()
                    except OSError as error:
                        failures.append(error)
        """)
        assert "exceptions/swallow" not in tree.rules_fired()

    def test_quiet_outside_execution_tiers(self, tree):
        tree.write("core/maths.py", """
            def safe(fn):
                try:
                    return fn()
                except ValueError:
                    pass
        """)
        assert "exceptions/swallow" not in tree.rules_fired()


class TestLayeringOrder:
    def test_fires_on_upward_import(self, tree):
        # core (layer 2) must not know the runtime tier (layer 3) exists.
        tree.write("core/engine.py", """
            from ..runtime.store import TraceStore
        """)
        assert "layering/order" in tree.rules_fired()

    def test_fires_on_absolute_upward_import(self, tree):
        tree.write("sim/soc.py", """
            from repro.service.service import SweepService
        """)
        assert "layering/order" in tree.rules_fired()

    def test_quiet_on_downward_import(self, tree):
        tree.write("runtime/runner.py", """
            from ..core.policy import Policy
        """)
        assert "layering/order" not in tree.rules_fired()

    def test_type_checking_imports_are_exempt(self, tree):
        tree.write("core/engine.py", """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from ..runtime.store import TraceStore
        """)
        assert "layering/order" not in tree.rules_fired()


class TestLayeringCycle:
    def test_fires_on_mutual_imports(self, tree):
        tree.write("core/alpha.py", "from .beta import b\n\ndef a():\n    return b\n")
        tree.write("core/beta.py", "from .alpha import a\n\ndef b():\n    return a\n")
        result = tree.lint()
        cycles = [f for f in result.findings if f.rule == "layering/cycle"]
        assert len(cycles) == 1  # one report per cycle, not one per edge
        assert "core.alpha" in cycles[0].message and "core.beta" in cycles[0].message

    def test_lazy_imports_break_the_cycle(self, tree):
        tree.write("core/alpha.py", "from .beta import b\n\ndef a():\n    return b\n")
        tree.write("core/beta.py", "def b():\n    from .alpha import a\n    return a\n")
        assert "layering/cycle" not in tree.rules_fired()

    def test_submodule_importing_own_package_is_not_a_cycle(self, tree):
        tree.write("runtime/__init__.py", "from .store import load\n")
        tree.write("runtime/store.py", "from . import helpers\n\ndef load():\n    return helpers\n")
        tree.write("runtime/helpers.py", "def nothing():\n    return None\n")
        assert "layering/cycle" not in tree.rules_fired()


class TestRankFor:
    """Longest-dotted-prefix layer lookup (sub-module pins)."""

    def test_submodule_pin_and_package_fallback(self):
        from repro.analysis.layering import LAYER_RANKS, rank_for

        assert rank_for("service.http") == LAYER_RANKS["service.http"]
        assert rank_for("service.queue") == LAYER_RANKS["service"]
        assert rank_for("runtime.runstore") == LAYER_RANKS["runtime"]
        # Root modules and unranked names both land on the top rank, so
        # importing an unmapped module from inside the tower fails loud.
        assert rank_for("cli") == LAYER_RANKS[""]
        assert rank_for("") == LAYER_RANKS[""]
        assert rank_for("brand_new_pkg.sub") == LAYER_RANKS[""]

    def test_http_front_end_ranks_with_the_service_it_fronts(self, tree):
        # service/http importing the runtime tier is a *downward* edge.
        tree.write("service/http.py", """
            from ..runtime.runstore import RunStore
        """)
        assert "layering/order" not in tree.rules_fired()
        # ...and nothing below the service tier may import the front-end.
        tree.write("runtime/runner.py", """
            from ..service.http import SweepFrontend
        """)
        assert "layering/order" in tree.rules_fired()
