"""schema/* rules: the committed manifest pins persisted formats."""

from __future__ import annotations

import json

SERIALIZER = """
    SCHEMA_VERSION = 2

    def thing_to_dict(thing):
        return {
            "schema_version": SCHEMA_VERSION,
            "name": thing.name,
            "value": thing.value,
        }
"""


def write_manifest(tree, **overrides):
    manifest = {
        "schema_versions": {"runtime/ser.py": {"SCHEMA_VERSION": 2}},
        "serializers": {
            "runtime/ser.py::thing_to_dict": ["schema_version", "name", "value"],
        },
        "fingerprint_required": {},
    }
    manifest.update(overrides)
    tree.write("analysis/__init__.py", "")
    path = tree.root / "analysis/schema_manifest.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest), encoding="utf-8")


class TestManifest:
    def test_quiet_when_everything_matches(self, tree):
        tree.write("runtime/ser.py", SERIALIZER)
        write_manifest(tree)
        assert "schema/manifest" not in tree.rules_fired()

    def test_fires_on_field_drift(self, tree):
        # A field added to the dict but not to the manifest: the exact
        # accident this rule exists to make reviewable.
        tree.write("runtime/ser.py", SERIALIZER.replace(
            '"value": thing.value,', '"value": thing.value,\n            "extra": 1,'))
        write_manifest(tree)
        fired = [f for f in tree.lint().findings if f.rule == "schema/manifest"]
        assert len(fired) == 1
        assert "extra" in fired[0].message

    def test_fires_on_version_drift(self, tree):
        tree.write("runtime/ser.py", SERIALIZER.replace(
            "SCHEMA_VERSION = 2", "SCHEMA_VERSION = 3"))
        write_manifest(tree)
        assert "schema/manifest" in tree.rules_fired()

    def test_fires_on_unlisted_serializer(self, tree):
        tree.write("runtime/ser.py", SERIALIZER + """
    def other_to_dict(thing):
        return {"name": thing.name}
""")
        write_manifest(tree)
        fired = [f for f in tree.lint().findings if f.rule == "schema/manifest"]
        assert any("other_to_dict" in f.message for f in fired)

    def test_row_serializer_field_order_is_the_schema(self, tree):
        tree.write("runtime/rows.py", """
            def item_row(item):
                return [item.first, item.second]
        """)
        write_manifest(tree, serializers={
            "runtime/rows.py::item_row": ["second", "first"],  # wrong order
        }, schema_versions={})
        assert "schema/manifest" in tree.rules_fired()

    def test_quiet_without_a_manifest(self, tree):
        tree.write("runtime/ser.py", SERIALIZER)
        assert "schema/manifest" not in tree.rules_fired()


class TestFingerprint:
    def test_fires_when_method_is_missing(self, tree):
        tree.write("data/scenario.py", """
            class Scenario:
                name = "s"
        """)
        write_manifest(
            tree,
            schema_versions={}, serializers={},
            fingerprint_required={"data/scenario.py": ["Scenario"]},
        )
        assert "schema/fingerprint" in tree.rules_fired()

    def test_quiet_when_defined(self, tree):
        tree.write("data/scenario.py", """
            class Scenario:
                def fingerprint(self):
                    return "abc"
        """)
        write_manifest(
            tree,
            schema_versions={}, serializers={},
            fingerprint_required={"data/scenario.py": ["Scenario"]},
        )
        assert "schema/fingerprint" not in tree.rules_fired()

    def test_fires_when_class_vanishes(self, tree):
        tree.write("data/scenario.py", "X = 1\n")
        write_manifest(
            tree,
            schema_versions={}, serializers={},
            fingerprint_required={"data/scenario.py": ["Scenario"]},
        )
        assert "schema/fingerprint" in tree.rules_fired()
