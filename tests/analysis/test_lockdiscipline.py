"""locks/* rules: raw writes and unguarded state in the persistence tiers."""

from __future__ import annotations


class TestRawWrite:
    def test_fires_on_raw_open_for_write(self, tree):
        tree.write("runtime/dump.py", """
            def save(path, text):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
        """)
        assert "locks/raw-write" in tree.rules_fired()

    def test_fires_on_write_text(self, tree):
        tree.write("service/dump.py", """
            def save(path, text):
                path.write_text(text)
        """)
        assert "locks/raw-write" in tree.rules_fired()

    def test_fires_on_bare_os_replace(self, tree):
        tree.write("runtime/dump.py", """
            import os

            def promote(src, dst):
                os.replace(src, dst)
        """)
        assert "locks/raw-write" in tree.rules_fired()

    def test_fires_on_json_dump(self, tree):
        tree.write("characterization/dump.py", """
            import json

            def save(payload, handle):
                json.dump(payload, handle)
        """)
        assert "locks/raw-write" in tree.rules_fired()

    def test_quiet_on_reads_and_atomic_helper(self, tree):
        tree.write("runtime/dump.py", """
            import json

            def load(path):
                with open(path, encoding="utf-8") as handle:
                    return json.load(handle)

            def save(path, payload):
                from ..util.atomicio import atomic_write_json
                atomic_write_json(path, payload)
        """)
        assert "locks/raw-write" not in tree.rules_fired()

    def test_quiet_outside_persistence_tiers(self, tree):
        # experiments/ writes tables and figures; that output is not a store.
        tree.write("experiments/tables.py", """
            def save(path, text):
                path.write_text(text)
        """)
        assert "locks/raw-write" not in tree.rules_fired()

    def test_suppression_pragma_silences_it(self, tree):
        tree.write("runtime/locks.py", """
            def grab(lock_path):
                return open(lock_path, "a+")  # repro: allow[locks/raw-write]
        """)
        assert "locks/raw-write" not in tree.rules_fired()


GUARDED_CLASS = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()  # repro: guards[_jobs, _closed]
            self._jobs = {{}}
            self._closed = False

        def submit(self, key, value):
            {body}

        def _evict_locked(self):
            self._jobs.clear()
"""


class TestGuardedAttr:
    def test_fires_on_unlocked_access(self, tree):
        tree.write("service/svc.py", GUARDED_CLASS.format(
            body="self._jobs[key] = value"))
        assert "locks/guarded-attr" in tree.rules_fired()

    def test_quiet_under_the_lock(self, tree):
        tree.write("service/svc.py", GUARDED_CLASS.format(
            body="with self._lock:\n                self._jobs[key] = value"))
        assert "locks/guarded-attr" not in tree.rules_fired()

    def test_init_and_locked_suffix_are_exempt(self, tree):
        # __init__ constructs the state; _evict_locked documents its contract.
        tree.write("service/svc.py", GUARDED_CLASS.format(body="pass"))
        assert "locks/guarded-attr" not in tree.rules_fired()

    def test_undeclared_attrs_are_not_guarded(self, tree):
        tree.write("service/svc.py", GUARDED_CLASS.format(
            body="self.stats = 1"))
        assert "locks/guarded-attr" not in tree.rules_fired()

    def test_module_level_lock(self, tree):
        tree.write("runtime/reg.py", """
            import threading

            _CACHE = {}
            _GUARD = threading.Lock()  # repro: guards[_CACHE]

            def get(key):
                return _CACHE.get(key)

            def get_safe(key):
                with _GUARD:
                    return _CACHE.get(key)
        """)
        findings = [f for f in tree.lint().findings if f.rule == "locks/guarded-attr"]
        assert len(findings) == 1
        assert "get" in findings[0].message


class TestLockedCall:
    def test_fires_on_unheld_locked_call(self, tree):
        tree.write("service/queue.py", """
            def read_record(shard, path):
                return _read_record_locked(shard, path)

            def _read_record_locked(shard, path):
                return None
        """)
        assert "locks/locked-call" in tree.rules_fired()

    def test_fires_on_unheld_locked_method_call(self, tree):
        tree.write("runtime/store.py", """
            class Store:
                def load(self, shard, name):
                    return self._load_locked(shard, name)

                def _load_locked(self, shard, name):
                    return None
        """)
        assert "locks/locked-call" in tree.rules_fired()

    def test_quiet_under_a_lock_call_context(self, tree):
        tree.write("service/queue.py", """
            from ..runtime.shards import shard_lock, write_entry_locked

            def write(shard, name, text, meta):
                with shard_lock(shard):
                    return write_entry_locked(shard, name, text, meta)
        """)
        assert "locks/locked-call" not in tree.rules_fired()

    def test_quiet_under_a_guards_declared_lock(self, tree):
        tree.write("service/service.py", """
            import threading

            class Service:
                def __init__(self):
                    self._state = threading.Lock()  # repro: guards[_jobs]
                    self._jobs = {}

                def evict(self):
                    with self._state:
                        self._evict_locked()

                def _evict_locked(self):
                    self._jobs.clear()
        """)
        assert "locks/locked-call" not in tree.rules_fired()

    def test_quiet_inside_another_locked_function(self, tree):
        tree.write("service/queue.py", """
            def _sweep_locked(shard):
                for path in shard.glob("*.json"):
                    _read_record_locked(shard, path)

            def _read_record_locked(shard, path):
                return None
        """)
        assert "locks/locked-call" not in tree.rules_fired()

    def test_nested_function_does_not_inherit_the_lock(self, tree):
        # The closure runs later, at its call site — the enclosing
        # `with` proves nothing about lock state at that moment.
        tree.write("service/queue.py", """
            def update(lock, shard, path):
                def mutate():
                    return _read_record_locked(shard, path)
                with lock:
                    pass
                return mutate

            def _read_record_locked(shard, path):
                return None
        """)
        assert "locks/locked-call" in tree.rules_fired()

    def test_quiet_outside_persistence_tiers(self, tree):
        tree.write("experiments/report.py", """
            def render(table):
                return _render_locked(table)

            def _render_locked(table):
                return str(table)
        """)
        assert "locks/locked-call" not in tree.rules_fired()

    def test_suppression_pragma_silences_it(self, tree):
        tree.write("service/queue.py", """
            def probe(shard, path):
                return _read_record_locked(shard, path)  # repro: allow[locks/locked-call]

            def _read_record_locked(shard, path):
                return None
        """)
        assert "locks/locked-call" not in tree.rules_fired()


class TestIoSeam:
    """Store-tier writes must route through the repro.runtime.iolayer seam."""

    def test_atomic_helper_in_a_seam_module_fires_io_seam(self, tree):
        # Atomic is necessary but not sufficient in the store tier: a
        # direct atomicio call is invisible to fault plans and degraded
        # mode, so the finding upgrades from raw-write to io-seam.
        tree.write("runtime/shards.py", """
            def save(path, text):
                from ..util.atomicio import atomic_write_text
                atomic_write_text(path, text)
        """)
        fired = tree.rules_fired()
        assert "locks/io-seam" in fired
        assert "locks/raw-write" not in fired

    def test_raw_write_in_a_seam_module_reports_as_io_seam(self, tree):
        tree.write("service/queue.py", """
            def save(path, text):
                path.write_text(text)
        """)
        fired = tree.rules_fired()
        assert "locks/io-seam" in fired
        assert "locks/raw-write" not in fired

    def test_one_finding_per_bad_call(self, tree):
        tree.write("runtime/store.py", """
            def save(path, text):
                from ..util.atomicio import atomic_write_text
                atomic_write_text(path, text)
        """)
        findings = [f for f in tree.lint().findings if f.rule.startswith("locks/")]
        assert len(findings) == 1

    def test_calls_into_the_seam_are_the_discipline(self, tree):
        tree.write("runtime/export.py", """
            from . import iolayer

            def save(path, text, root):
                iolayer.write_text(path, text, root=root)
                iolayer.replace(path, path.with_suffix(".new"), root=root)
        """)
        fired = tree.rules_fired()
        assert "locks/io-seam" not in fired
        assert "locks/raw-write" not in fired

    def test_non_seam_modules_keep_the_raw_write_rule(self, tree):
        # Outside the store tier the old contract stands: atomicity is
        # the requirement, the seam is not.
        tree.write("runtime/metrics.py", """
            def save(path, text):
                path.write_text(text)
        """)
        fired = tree.rules_fired()
        assert "locks/raw-write" in fired
        assert "locks/io-seam" not in fired

    def test_suppression_pragma_silences_it(self, tree):
        tree.write("runtime/shards.py", """
            def save(path, text):
                path.write_text(text)  # repro: allow[locks/io-seam]
        """)
        assert "locks/io-seam" not in tree.rules_fired()

    def test_iolayer_itself_ranks_with_the_runtime_layer(self):
        from repro.analysis.layering import LAYER_RANKS, rank_for

        assert rank_for("runtime.iolayer") == LAYER_RANKS["runtime.iolayer"]
        assert LAYER_RANKS["runtime.iolayer"] == LAYER_RANKS["runtime"]
