"""Engine plumbing (suppressions, baseline, selection) and the lint CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import default_registry
from repro.analysis.engine import load_baseline, write_baseline
from repro.cli import main

BAD_RUNTIME = """
    def save(path, text):
        path.write_text(text)
"""


class TestSuppressions:
    def test_same_line_pragma(self, tree):
        tree.write("runtime/bad.py", """
            def save(path, text):
                path.write_text(text)  # repro: allow[locks/raw-write]
        """)
        result = tree.lint()
        assert result.clean
        assert result.suppressed == 1

    def test_comment_line_pragma_covers_next_code_line(self, tree):
        tree.write("runtime/bad.py", """
            def save(path, text):
                # The gate file is advisory; torn content is re-derived.
                # repro: allow[locks/raw-write]
                path.write_text(text)
        """)
        assert tree.lint().clean

    def test_family_pragma(self, tree):
        tree.write("runtime/bad.py", """
            def save(path, text):
                path.write_text(text)  # repro: allow[locks]
        """)
        assert tree.lint().clean

    def test_star_pragma(self, tree):
        tree.write("runtime/bad.py", """
            def save(path, text):
                path.write_text(text)  # repro: allow[*]
        """)
        assert tree.lint().clean

    def test_wrong_rule_does_not_suppress(self, tree):
        tree.write("runtime/bad.py", """
            def save(path, text):
                path.write_text(text)  # repro: allow[determinism/wall-clock]
        """)
        assert not tree.lint().clean


class TestSelection:
    def test_rule_selection_filters(self, tree):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        fired = tree.rules_fired(rules=frozenset({"determinism/wall-clock"}))
        assert fired == set()

    def test_registry_expands_families_and_rejects_unknowns(self):
        registry = default_registry()
        locks = registry.resolve_selection(["locks"])
        assert "locks/raw-write" in locks and "locks/guarded-attr" in locks
        with pytest.raises(KeyError):
            registry.resolve_selection(["nonsense"])


class TestBaseline:
    def test_baseline_round_trip_filters_known_findings(self, tree, tmp_path):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, tree.lint().findings)
        assert load_baseline(baseline_path)
        result = tree.lint(baseline_path=baseline_path)
        assert result.clean
        assert result.baseline_filtered == 1

    def test_new_findings_escape_the_baseline(self, tree, tmp_path):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, tree.lint().findings)
        tree.write("runtime/worse.py", """
            import os

            def promote(a, b):
                os.replace(a, b)
        """)
        result = tree.lint(baseline_path=baseline_path)
        assert [f.path for f in result.findings] == ["runtime/worse.py"]


class TestParseErrors:
    def test_syntax_error_is_a_finding_not_a_crash(self, tree):
        tree.write("runtime/broken.py", "def oops(:\n")
        result = tree.lint()
        assert result.parse_failures == 1
        assert [f.rule for f in result.findings] == ["parse/error"]


class TestCli:
    def test_shipped_tree_is_clean(self, capsys):
        # The acceptance gate: `python -m repro lint` exits 0 on this repo.
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_fails_the_gate(self, tree, capsys):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        assert main(["lint", "--root", str(tree.root)]) == 1
        out = capsys.readouterr().out
        assert "locks/raw-write" in out
        assert "runtime/bad.py" in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "nosuch"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_missing_root_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--root", str(tmp_path / "nope")]) == 2

    def test_json_format_schema(self, tree, capsys):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        assert main(["lint", "--root", str(tree.root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "clean", "files_checked", "finding_count", "suppressed",
            "baseline_filtered", "findings",
        }
        assert payload["clean"] is False
        assert payload["finding_count"] == len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "severity", "path", "line", "column", "message"}
        assert finding["rule"] == "locks/raw-write"
        assert finding["path"] == "runtime/bad.py"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism/", "locks/", "schema/", "layering/", "exceptions/"):
            assert family in out

    def test_write_baseline_then_clean(self, tree, tmp_path, capsys):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        baseline = tmp_path / "grandfathered.json"
        assert main(["lint", "--root", str(tree.root),
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", "--root", str(tree.root),
                     "--baseline", str(baseline)]) == 0

    def test_rules_filter_via_cli(self, tree):
        tree.write("runtime/bad.py", BAD_RUNTIME)
        assert main(["lint", "--root", str(tree.root),
                     "--rules", "determinism"]) == 0
        assert main(["lint", "--root", str(tree.root), "--rules", "locks"]) == 1


def test_self_lint_stays_quiet_under_every_rule_family():
    """Belt and braces for the CI gate: run each family alone on the repo."""
    from repro.analysis import LintConfig, run_lint

    package_root = Path(__file__).resolve().parents[2] / "src" / "repro"
    registry = default_registry()
    for family in sorted({rule.split("/")[0] for rule in registry.rules}):
        selection = registry.resolve_selection([family])
        result = run_lint(LintConfig(root=package_root, rules=selection), registry)
        assert result.clean, (
            f"family {family} fired on the shipped tree: "
            + "; ".join(f.render() for f in result.findings)
        )
