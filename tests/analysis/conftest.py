"""Fixture helpers for the static-analysis tests.

Checker tests run the real engine over tiny synthetic trees written into
``tmp_path`` — each test states the bad snippet that must fire and the
good twin that must stay quiet, so every rule is pinned from both sides.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint


class LintTree:
    """A throwaway source tree the engine can lint."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def write(self, rel: str, source: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def lint(self, **config_kwargs):
        return run_lint(LintConfig(root=self.root, **config_kwargs))

    def rules_fired(self, **config_kwargs) -> set[str]:
        return {finding.rule for finding in self.lint(**config_kwargs).findings}


@pytest.fixture
def tree(tmp_path: Path) -> LintTree:
    return LintTree(tmp_path)
