"""determinism/* rules: each fires on its bad snippet, stays quiet on the twin."""

from __future__ import annotations


class TestWallClock:
    def test_fires_on_time_time_in_deterministic_tier(self, tree):
        tree.write("sim/engine.py", """
            import time

            def step():
                return time.time()
        """)
        assert "determinism/wall-clock" in tree.rules_fired()

    def test_fires_on_aliased_datetime_now(self, tree):
        tree.write("core/thing.py", """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)
        assert "determinism/wall-clock" in tree.rules_fired()

    def test_quiet_outside_deterministic_tiers(self, tree):
        # experiments/ is presentation-layer: timing a table render is fine.
        tree.write("experiments/tables.py", """
            import time

            def elapsed():
                return time.time()
        """)
        assert "determinism/wall-clock" not in tree.rules_fired()


class TestUnseededRng:
    def test_fires_on_default_rng_without_seed(self, tree):
        tree.write("data/gen.py", """
            import numpy as np

            def make():
                return np.random.default_rng()
        """)
        assert "determinism/unseeded-rng" in tree.rules_fired()

    def test_fires_on_explicit_none_seed(self, tree):
        tree.write("data/gen.py", """
            import numpy as np

            def make():
                return np.random.default_rng(None)
        """)
        assert "determinism/unseeded-rng" in tree.rules_fired()

    def test_quiet_when_seeded(self, tree):
        tree.write("data/gen.py", """
            import numpy as np
            import random

            def make(seed: int):
                return np.random.default_rng(seed), random.Random(seed)
        """)
        fired = tree.rules_fired()
        assert "determinism/unseeded-rng" not in fired
        assert "determinism/global-rng" not in fired


class TestGlobalRng:
    def test_fires_on_module_level_random(self, tree):
        tree.write("sim/noise.py", """
            import random

            def jitter():
                return random.random()
        """)
        assert "determinism/global-rng" in tree.rules_fired()

    def test_fires_on_numpy_global_state(self, tree):
        tree.write("sim/noise.py", """
            import numpy as np

            def jitter():
                return np.random.uniform()
        """)
        assert "determinism/global-rng" in tree.rules_fired()

    def test_quiet_on_instance_methods(self, tree):
        tree.write("sim/noise.py", """
            import random

            def jitter(rng: random.Random):
                return rng.uniform(0.0, 1.0)
        """)
        assert "determinism/global-rng" not in tree.rules_fired()


class TestUnorderedIter:
    def test_fires_on_set_iteration_in_fingerprint(self, tree):
        tree.write("models/zoo.py", """
            def fingerprint(names):
                return "".join(name for name in set(names))
        """)
        assert "determinism/unordered-iter" in tree.rules_fired()

    def test_fires_on_set_literal_in_serializer(self, tree):
        tree.write("runtime/out.py", """
            def thing_to_dict():
                return [x for x in {1, 2, 3}]
        """)
        assert "determinism/unordered-iter" in tree.rules_fired()

    def test_quiet_when_sorted(self, tree):
        tree.write("models/zoo.py", """
            def fingerprint(names):
                return "".join(name for name in sorted(set(names)))
        """)
        assert "determinism/unordered-iter" not in tree.rules_fired()

    def test_quiet_in_non_identity_functions(self, tree):
        tree.write("models/zoo.py", """
            def collect(names):
                return [name for name in set(names)]
        """)
        assert "determinism/unordered-iter" not in tree.rules_fired()
