"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--scale", "0.03", "--validation", "60"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table", "2"])
        assert args.scale == 1.0
        assert args.validation == 800

    def test_run_objective_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "shift", "s", "--objective", "nope"])


class TestCommands:
    def test_table2_static(self, capsys):
        assert main(FAST + ["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "SHIFT" in out and "MARLIN" in out

    def test_table1(self, capsys):
        assert main(FAST + ["table", "1"]) == 0
        assert "yolov7" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(FAST + ["table", "4"]) == 0
        assert "ssd-mobilenet-v2-320" in capsys.readouterr().out

    def test_unknown_table_number(self, capsys):
        assert main(FAST + ["table", "9"]) == 2
        assert "tables 1-4" in capsys.readouterr().err

    def test_figure1(self, capsys):
        assert main(FAST + ["figure", "1"]) == 0
        assert "single-family" in capsys.readouterr().out

    def test_unknown_figure_number(self, capsys):
        assert main(FAST + ["figure", "7"]) == 2
        assert "figures 1-5" in capsys.readouterr().err

    def test_run_single_model(self, capsys):
        code = main(FAST + ["run", "single:yolov7-tiny@dla0", "s3_indoor_close_wall"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean IoU" in out and "single:yolov7-tiny@dla0" in out

    def test_run_shift_with_objective(self, capsys):
        code = main(FAST + ["run", "shift", "s3_indoor_close_wall", "--objective", "energy"])
        assert code == 0
        assert "energy/frame" in capsys.readouterr().out

    def test_run_unknown_policy(self, capsys):
        assert main(FAST + ["run", "quantum", "s3_indoor_close_wall"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_run_unknown_scenario(self, capsys):
        assert main(FAST + ["run", "marlin", "s99"]) == 2
        assert "known" in capsys.readouterr().err

    def test_characterize_writes_bundle(self, tmp_path, capsys):
        out_path = tmp_path / "bundle.json"
        assert main(FAST + ["characterize", "--out", str(out_path)]) == 0
        assert out_path.exists()
        from repro.characterization import load_bundle

        bundle = load_bundle(out_path)
        assert len(bundle.accuracy) == 8

    def test_scenarios_lists_library(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "s1_multi_background_varying_distance" in out
        assert "x_night_watch_400f" in out

    def test_sweep_over_named_scenarios(self, capsys):
        code = main(FAST + ["sweep", "single:yolov7-tiny@gpu,marlin-tiny",
                            "--scenarios", "s3_indoor_close_wall"])
        assert code == 0
        out = capsys.readouterr().out
        assert "single:yolov7-tiny@gpu" in out and "average" in out

    def test_sweep_unknown_policy(self, capsys):
        assert main(FAST + ["sweep", "quantum"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_sweep_unknown_scenario(self, capsys):
        assert main(FAST + ["sweep", "marlin-tiny", "--scenarios", "s99_missing"]) == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_sweep_without_policies_or_jobs(self, capsys):
        assert main(FAST + ["sweep"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_rejects_policies_and_jobs_together(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text("[]", encoding="utf-8")
        assert main(FAST + ["sweep", "marlin-tiny", "--jobs", str(jobs)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_parallel_runs_requires_store(self, capsys):
        code = main(FAST + ["--workers", "2", "sweep", "marlin-tiny",
                            "--scenarios", "s3_indoor_close_wall", "--parallel-runs"])
        assert code == 2
        assert "TraceStore" in capsys.readouterr().err

    def test_trace_store_persists_across_invocations(self, tmp_path, capsys):
        store = tmp_path / "traces"
        args = FAST + ["--trace-store", str(store), "run", "marlin-tiny", "s3_indoor_close_wall"]
        assert main(args) == 0
        files = [
            p
            for p in store.rglob("trace-*")
            if p.suffix in (".json", ".col") and ".tmp" not in p.name
        ]
        assert len(files) == 1
        first_mtime = files[0].stat().st_mtime_ns
        assert main(args) == 0
        assert files[0].stat().st_mtime_ns == first_mtime, "second run must reuse, not rewrite"
        capsys.readouterr()

    def test_scenarios_generated_lists_grammar_flights(self, capsys):
        assert main(["scenarios", "--generated"]) == 0
        out = capsys.readouterr().out
        assert "s1_multi_background_varying_distance" in out
        assert "g_dm_s001_crx_day_96f" in out

    def test_run_resolves_generated_scenario(self, capsys):
        code = main(FAST + ["run", "single:yolov7-tiny@gpu", "g_dm_s001_crx_day_96f"])
        assert code == 0
        assert "g_dm_s001_crx_day_96f" in capsys.readouterr().out

    def test_sweep_generated_scenario_with_workers_and_store(self, tmp_path, capsys):
        # Grammar-generated flights must flow through the full runner
        # stack: worker trace builds, the on-disk store, parallel runs.
        store = tmp_path / "traces"
        code = main(FAST + ["--workers", "2", "--trace-store", str(store),
                            "sweep", "single:yolov7-tiny@gpu,marlin-tiny",
                            "--scenarios", "g_dm_s001_crx_day_96f,g_dm_s002_loi-pop_fog_96f",
                            "--parallel-runs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "g_dm_s001_crx_day_96f" in out and "g_dm_s002_loi-pop_fog_96f" in out
        assert "average" in out
        persisted = [p for p in store.rglob("trace-*") if p.suffix in (".json", ".col")]
        assert len(persisted) == 2, "generated traces must persist"


class TestServeCommand:
    def _jobs_file(self, tmp_path, payload):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_serve_happy_path(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, {"requests": [
            {"id": "r1", "policies": ["marlin-tiny"],
             "scenarios": ["s3_indoor_close_wall"]},
            {"id": "r2", "policies": ["marlin-tiny", "single:yolov7-tiny@gpu"],
             "scenarios": ["s3_indoor_close_wall"]},
        ]})
        assert main(FAST + ["serve", jobs, "--service-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Request r1" in out and "Request r2" in out
        assert "0 corrupt entries" in out
        # r2's (marlin-tiny, s3) cell duplicates r1's: exactly one pair
        # coalesces in this deterministic mix.
        assert "1 coalesced" in out

    def test_serve_missing_jobs_file(self, tmp_path, capsys):
        assert main(FAST + ["serve", str(tmp_path / "nope.json")]) == 2
        assert "cannot read jobs file" in capsys.readouterr().err

    def test_serve_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(FAST + ["serve", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_serve_malformed_request_shape(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [{"policies": [], "scenarios": ["s5_far_patrol"]}])
        assert main(FAST + ["serve", jobs]) == 2
        assert "'policies'" in capsys.readouterr().err

    def test_serve_unknown_policy_in_request(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"policies": ["quantum"], "scenarios": ["s3_indoor_close_wall"]}
        ])
        assert main(FAST + ["serve", jobs]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_serve_unknown_scenario_in_request(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"policies": ["marlin-tiny"], "scenarios": ["s99_missing"]}
        ])
        assert main(FAST + ["serve", jobs]) == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_sweep_jobs_batch_front_end(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"policies": ["marlin-tiny"], "scenarios": ["s3_indoor_close_wall"]}
        ])
        assert main(FAST + ["sweep", "--jobs", jobs]) == 0
        out = capsys.readouterr().out
        assert "Request request-0" in out and "service:" in out

    def test_serve_with_stores_warm_reserve(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"policies": ["marlin-tiny"], "scenarios": ["s3_indoor_close_wall"]}
        ])
        args = FAST + ["--trace-store", str(tmp_path / "t"),
                       "--run-store", str(tmp_path / "r"), "serve", jobs]
        assert main(args) == 0
        assert "1 runs executed" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 runs executed" in out and "1 run-store hits" in out
        assert "0 trace builds" in out


class TestVerifyCommand:
    def test_verify_named_scenario_passes(self, capsys):
        code = main(["verify", "--scenarios", "g_dm_s001_crx_day_96f",
                     "--checks", "render,trace,store"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all engines agree" in out
        assert "g_dm_s001_crx_day_96f" in out

    def test_verify_unknown_check_rejected(self, capsys):
        assert main(["verify", "--checks", "psychic"]) == 2
        assert "unknown checks" in capsys.readouterr().err

    def test_verify_empty_checks_rejected(self, capsys):
        # An empty checks list must not masquerade as a passing gate.
        assert main(["verify", "--checks", ","]) == 2
        assert "no checks selected" in capsys.readouterr().err

    def test_verify_negative_count_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--count", "-5"])

    def test_verify_malformed_env_knob_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SCENARIOS", "banana")
        assert main(["verify"]) == 2
        assert "REPRO_FUZZ_SCENARIOS" in capsys.readouterr().err

    def test_verify_unknown_scenario_rejected(self, capsys):
        assert main(["verify", "--scenarios", "g_nope"]) == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_verify_store_dir(self, tmp_path, capsys):
        store = tmp_path / "verify-traces"
        code = main(["verify", "--scenarios", "g_dm_s001_crx_day_96f",
                     "--checks", "store", "--store", str(store)])
        assert code == 0
        persisted = [p for p in store.rglob("trace-*") if p.suffix in (".json", ".col")]
        assert len(persisted) == 1
        capsys.readouterr()


class TestQueueCommands:
    def _jobs_file(self, tmp_path, payload):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_work_and_queue_parsers_register(self):
        args = build_parser().parse_args(["work", "qdir", "--run-store", "rs"])
        assert args.queue_dir == "qdir" and args.run_store == "rs"
        args = build_parser().parse_args(["queue", "qdir", "--requeue-dead", "--list"])
        assert args.queue_dir == "qdir" and args.requeue_dead and args.list

    def test_serve_procs_requires_run_store(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"policies": ["marlin-tiny"], "scenarios": ["s3_indoor_close_wall"]}
        ])
        assert main(FAST + ["serve", jobs, "--procs", "1"]) == 2
        assert "--run-store" in capsys.readouterr().err

    def test_serve_procs_drains_and_reports(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, {"requests": [
            {"id": "r1", "policies": ["marlin-tiny"],
             "scenarios": ["s3_indoor_close_wall"]},
            {"id": "r2", "policies": ["marlin-tiny", "single:yolov7-tiny@gpu"],
             "scenarios": ["s3_indoor_close_wall"]},
        ]})
        code = main(FAST + ["--run-store", str(tmp_path / "runs"),
                            "--trace-store", str(tmp_path / "traces"),
                            "serve", jobs, "--procs", "1",
                            "--worker-timeout", "240"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "Request r1" in out and "Request r2" in out
        assert "2 enqueued (1 deduplicated)" in out
        # And the queue command reads the same directory back:
        assert main(["queue", str(tmp_path / "runs" / "_queue"), "--list"]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out and "0 problems" in out

    def test_queue_requeue_dead(self, tmp_path, capsys):
        from repro.data import scenario_by_name
        from repro.service import JobQueue, SweepRequest, decompose

        queue = JobQueue(tmp_path / "q", max_attempts=1)
        [job] = decompose(SweepRequest(
            policies=("marlin-tiny",),
            scenarios=(scenario_by_name("s3_indoor_close_wall"),),
        ))
        queue.enqueue(job)
        queue.fail(queue.claim("w0"), "induced")
        assert main(["queue", str(tmp_path / "q")]) == 0
        assert "1 dead" in capsys.readouterr().out
        assert main(["queue", str(tmp_path / "q"), "--requeue-dead"]) == 0
        out = capsys.readouterr().out
        assert "requeued 1 dead-lettered jobs" in out and "1 pending" in out


class TestStoreMaintenance:
    """``repro store scrub|gc|repair``: exit codes and dry-run discipline."""

    def _torn_store(self, tmp_path):
        from repro.runtime import shards

        runs = tmp_path / "runs"
        shard = runs / "ab"
        shard.mkdir(parents=True)
        with shards.shard_lock(shard):
            shards.write_entry_locked(
                shard, "run-v1-" + "ab" * 16 + ".json", '{"torn', {}
            )
        return runs

    def test_store_requires_a_target(self, capsys):
        assert main(["store", "scrub"]) == 2
        assert "needs at least one root" in capsys.readouterr().err

    def test_scrub_exit_code_is_the_integrity_alarm(self, tmp_path, capsys):
        runs = self._torn_store(tmp_path)
        assert main(["--run-store", str(runs), "store", "scrub"]) == 1
        out = capsys.readouterr().out
        assert "runs:" in out
        assert (runs / "_quarantine").exists()
        # The alarm is edge-triggered: a second scrub of the healed tree
        # is clean, so a cron'd scrub only pages when something tore.
        assert main(["--run-store", str(runs), "store", "scrub"]) == 0

    def test_gc_is_dry_run_unless_applied(self, tmp_path, capsys):
        import time

        runs = self._torn_store(tmp_path)
        main(["--run-store", str(runs), "store", "scrub"])
        quarantined = list((runs / "_quarantine").iterdir())
        assert quarantined
        capsys.readouterr()
        time.sleep(0.05)
        base = ["--run-store", str(runs), "store", "gc", "--ttl", "0.01"]
        assert main(base) == 0
        assert "dry run" in capsys.readouterr().out
        assert all(path.exists() for path in quarantined)  # reported, not touched
        assert main(base + ["--apply"]) == 0
        assert not any(path.exists() for path in quarantined)

    def test_repair_covers_every_named_root(self, tmp_path, capsys):
        from repro.service import JobQueue

        JobQueue(tmp_path / "q")  # lay out a real queue directory
        code = main([
            "--run-store", str(tmp_path / "runs"),
            "--trace-store", str(tmp_path / "traces"),
            "store", "repair", "--queue", str(tmp_path / "q"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "runs:" in out and "traces:" in out and "queue:" in out
