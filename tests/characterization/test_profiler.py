"""Tests for the offline characterization profiler."""

import pytest

from repro.characterization import (
    characterize,
    profile_accuracy,
    profile_load_costs,
    profile_performance,
)
from repro.data import build_validation_set
from repro.models import default_zoo
from repro.sim import AcceleratorClass, perf_point, xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def samples():
    return build_validation_set(150, seed=7151)


@pytest.fixture(scope="module")
def soc():
    return xavier_nx_with_oakd()


class TestProfileAccuracy:
    def test_traits_for_every_model(self, zoo, samples):
        traits, observations = profile_accuracy(zoo, samples)
        assert set(traits) == set(zoo.names())
        assert len(observations) == len(samples)

    def test_trait_ranges(self, zoo, samples):
        traits, _ = profile_accuracy(zoo, samples)
        for trait in traits.values():
            assert 0.0 <= trait.mean_iou <= 1.0
            assert 0.0 <= trait.success_rate <= 1.0
            assert 0.0 <= trait.mean_confidence <= 1.0
            assert trait.sample_count > 0

    def test_observations_cover_all_models(self, zoo, samples):
        _, observations = profile_accuracy(zoo, samples)
        for obs in observations[:10]:
            assert set(obs.readings) == set(zoo.names())
            for confidence, iou in obs.readings.values():
                assert 0.0 <= confidence <= 1.0
                assert 0.0 <= iou <= 1.0

    def test_yolov7_most_accurate(self, zoo, samples):
        traits, _ = profile_accuracy(zoo, samples)
        best = max(traits.values(), key=lambda t: t.mean_iou)
        assert best.model_name == "yolov7"

    def test_empty_samples_rejected(self, zoo):
        with pytest.raises(ValueError):
            profile_accuracy(zoo, [])


class TestProfilePerformance:
    def test_measured_means_near_profiles(self, zoo, soc):
        perf = profile_performance(zoo, soc, repeats=60, seed=5)
        point = perf[("yolov7", AcceleratorClass.GPU)]
        expected = perf_point("yolov7", AcceleratorClass.GPU)
        assert point.mean_latency_s == pytest.approx(expected.latency_s, rel=0.05)
        assert point.mean_power_w == pytest.approx(expected.power_w, rel=0.05)

    def test_only_supported_pairs_profiled(self, zoo, soc):
        perf = profile_performance(zoo, soc, repeats=3)
        assert ("ssd-resnet50", AcceleratorClass.OAKD) not in perf
        assert ("yolov7", AcceleratorClass.OAKD) in perf

    def test_cpu_profiled_for_table1(self, zoo, soc):
        perf = profile_performance(zoo, soc, repeats=3)
        assert ("yolov7", AcceleratorClass.CPU) in perf

    def test_invalid_repeats_rejected(self, zoo, soc):
        with pytest.raises(ValueError):
            profile_performance(zoo, soc, repeats=0)


class TestProfileLoadCosts:
    def test_costs_for_supported_pairs(self, zoo, soc):
        costs = profile_load_costs(zoo, soc)
        assert ("yolov7", AcceleratorClass.GPU) in costs
        assert ("ssd-resnet50", AcceleratorClass.OAKD) not in costs


class TestCharacterize:
    def test_bundle_complete(self, zoo, soc):
        bundle = characterize(zoo, soc, validation_size=60, perf_repeats=3)
        assert set(bundle.accuracy) == set(zoo.names())
        assert len(bundle.observations) == 60
        assert bundle.performance
        assert bundle.load_costs
        assert bundle.model_names() == zoo.names()

    def test_custom_samples(self, zoo, soc, samples):
        bundle = characterize(zoo, soc, samples=samples, perf_repeats=3)
        assert len(bundle.observations) == len(samples)
