"""Tests for characterization bundle persistence."""

import json

import pytest

from repro.characterization import (
    BundleSchemaError,
    bundle_from_dict,
    bundle_to_dict,
    characterize,
    load_bundle,
    save_bundle,
)
from repro.core import ConfidenceGraph, ShiftPipeline
from repro.models import default_zoo
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def bundle():
    return characterize(
        default_zoo(), xavier_nx_with_oakd(), validation_size=80, perf_repeats=3
    )


class TestRoundTrip:
    def test_dict_round_trip_exact(self, bundle):
        rebuilt = bundle_from_dict(bundle_to_dict(bundle))
        assert rebuilt.accuracy == bundle.accuracy
        assert rebuilt.performance == bundle.performance
        assert rebuilt.load_costs == bundle.load_costs
        assert rebuilt.observations == bundle.observations

    def test_file_round_trip(self, bundle, tmp_path):
        path = tmp_path / "bundle.json"
        save_bundle(bundle, path)
        rebuilt = load_bundle(path)
        assert rebuilt.accuracy == bundle.accuracy
        assert len(rebuilt.observations) == len(bundle.observations)

    def test_serialized_form_is_plain_json(self, bundle, tmp_path):
        path = tmp_path / "bundle.json"
        save_bundle(bundle, path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert "yolov7" in payload["accuracy"]

    def test_loaded_bundle_drives_pipeline(self, bundle, tmp_path):
        """A bundle restored from disk must be usable end to end."""
        from repro.data import scenario_by_name
        from repro.runtime import ScenarioTrace, run_policy

        path = tmp_path / "bundle.json"
        save_bundle(bundle, path)
        rebuilt = load_bundle(path)
        trace = ScenarioTrace.build(
            scenario_by_name("s3_indoor_close_wall").scaled(0.02), default_zoo()
        )
        result = run_policy(ShiftPipeline(rebuilt), trace)
        assert result.frame_count == trace.frame_count

    def test_graph_identical_from_restored_observations(self, bundle):
        rebuilt = bundle_from_dict(bundle_to_dict(bundle))
        original = ConfidenceGraph.build(bundle.observations)
        restored = ConfidenceGraph.build(rebuilt.observations)
        assert original.node_keys() == restored.node_keys()
        assert original.predict("yolov7", 0.6) == restored.predict("yolov7", 0.6)


class TestSchemaErrors:
    def test_wrong_version_rejected(self, bundle):
        payload = bundle_to_dict(bundle)
        payload["schema_version"] = 99
        with pytest.raises(BundleSchemaError, match="schema"):
            bundle_from_dict(payload)

    def test_missing_section_rejected(self, bundle):
        payload = bundle_to_dict(bundle)
        del payload["performance"]
        with pytest.raises(BundleSchemaError):
            bundle_from_dict(payload)

    def test_malformed_accel_class_rejected(self, bundle):
        payload = bundle_to_dict(bundle)
        payload["performance"][0]["accel_class"] = "quantum"
        with pytest.raises(BundleSchemaError):
            bundle_from_dict(payload)

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BundleSchemaError):
            load_bundle(path)
