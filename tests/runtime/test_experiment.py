"""Tests for the persistent parallel experiment runner."""

import pytest

from repro.baselines import MarlinPolicy, SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ExperimentRunner, TraceCache, TraceStore
from repro.sim import gpu_only_soc


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenarios():
    return [
        scenario_by_name("s3_indoor_close_wall").scaled(0.05),
        scenario_by_name("s4_indoor_clutter").scaled(0.05),
    ]


class TestTraceTier:
    def test_build_traces_warms_cache(self, zoo, scenarios):
        runner = ExperimentRunner(zoo)
        traces = runner.build_traces(scenarios)
        assert len(traces) == len(scenarios)
        assert runner.cache.builds == len(scenarios)
        runner.build_traces(scenarios)
        assert runner.cache.builds == len(scenarios), "warm scenarios must not rebuild"

    def test_parallel_build_traces_matches_serial(self, zoo, scenarios):
        serial = ExperimentRunner(zoo).build_traces(scenarios)
        parallel = ExperimentRunner(zoo, max_workers=3).build_traces(scenarios)
        for a, b in zip(serial, parallel, strict=True):
            assert a.outcomes == b.outcomes

    def test_store_backed_runner_skips_rebuilds_across_instances(self, zoo, scenarios, tmp_path):
        store = TraceStore(tmp_path)
        first = ExperimentRunner(zoo, store=store)
        first.build_traces(scenarios)
        assert first.cache.builds == len(scenarios)

        files = sorted(
            p for p in tmp_path.rglob("trace-*") if p.suffix in (".json", ".col")
        )
        assert len(files) == len(scenarios), "every built trace must persist"
        mtimes = [f.stat().st_mtime_ns for f in files]

        second = ExperimentRunner(zoo, store=TraceStore(tmp_path))
        second.build_traces(scenarios)
        assert second.cache.builds == 0, "second invocation must reuse persisted traces"
        assert [f.stat().st_mtime_ns for f in files] == mtimes, "reuse must not rewrite files"

    def test_zoo_and_foreign_cache_conflict(self, zoo):
        with pytest.raises(ValueError, match="zoo or a cache"):
            ExperimentRunner(zoo, cache=TraceCache(default_zoo()))


class TestSweep:
    def test_sweep_shape(self, zoo, scenarios):
        runner = ExperimentRunner(zoo)
        results = runner.sweep(
            [SingleModelPolicy("yolov7", "gpu"), MarlinPolicy("yolov7-tiny")], scenarios
        )
        assert set(results) == {"single:yolov7@gpu", "marlin:yolov7-tiny"}
        for rows in results.values():
            assert [m.scenario_name for m in rows] == [s.name for s in scenarios]

    def test_parallel_sweep_equals_serial(self, zoo, scenarios, tmp_path):
        policies = [SingleModelPolicy("yolov7", "gpu"), MarlinPolicy("yolov7-tiny")]
        serial = ExperimentRunner(zoo).sweep(policies, scenarios)
        parallel = ExperimentRunner(zoo, store=TraceStore(tmp_path), max_workers=2).sweep(
            policies, scenarios, parallel_runs=True
        )
        assert serial == parallel

    def test_parallel_runs_require_store(self, zoo, scenarios):
        runner = ExperimentRunner(zoo, max_workers=2)
        with pytest.raises(ValueError, match="TraceStore"):
            runner.sweep([SingleModelPolicy("yolov7", "gpu")], scenarios, parallel_runs=True)

    def test_soc_factory_is_honoured(self, zoo, scenarios):
        # gpu-only platform: no DLA/OAK-D accelerators, so a policy pinned
        # to the GPU still runs but the platform differs from the default.
        runner = ExperimentRunner(zoo, soc=gpu_only_soc)
        metrics = runner.run_policy_on_scenarios(SingleModelPolicy("yolov7", "gpu"), scenarios)
        assert len(metrics) == len(scenarios)
        default_metrics = ExperimentRunner(zoo).run_policy_on_scenarios(
            SingleModelPolicy("yolov7", "gpu"), scenarios
        )
        # Same model on the same GPU: identical accuracy either way.
        assert [m.mean_iou for m in metrics] == [m.mean_iou for m in default_metrics]
