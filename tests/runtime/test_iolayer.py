"""Tests for the injectable I/O seam (fault plans, retry, degraded mode).

The seam's contract has three faces: deterministic fault plans (the same
schedule fires the same way run after run), bounded retry with typed
degradation (transient capacity errors never surface as bare OSErrors
from a store write), and probe-based recovery (the first success after
space returns clears the flag).  Each face is pinned here from both
sides — the failure that must fire and the healthy twin that must not.
"""

import json

import pytest

from repro.runtime import iolayer
from repro.runtime.iolayer import (
    FS_FAULT_PLAN_SCHEMA_VERSION,
    RETRY_ATTEMPTS,
    FsFaultEvent,
    FsFaultPlan,
    StoreDegraded,
    StoreError,
)


@pytest.fixture(autouse=True)
def _clean_seam():
    """Every test starts and ends with no armed plan and no degraded roots."""
    iolayer.disarm_fault_plan()
    iolayer.reset_state()
    yield
    iolayer.disarm_fault_plan()
    iolayer.reset_state()


def enospc_plan(count: int, op: str = "write", match: str | None = None) -> FsFaultPlan:
    return FsFaultPlan(
        events=(FsFaultEvent(op=op, index=0, kind="enospc", count=count, match=match),)
    )


class TestFaultPlanShape:
    def test_event_validation_rejects_impossible_combinations(self):
        with pytest.raises(ValueError):
            FsFaultEvent(op="write", index=0, kind="lost_rename")
        with pytest.raises(ValueError):
            FsFaultEvent(op="replace", index=0, kind="partial_write")
        with pytest.raises(ValueError):
            FsFaultEvent(op="chmod", index=0, kind="eio")
        with pytest.raises(ValueError):
            FsFaultEvent(op="write", index=-1, kind="eio")

    def test_plan_round_trips_through_disk(self, tmp_path):
        plan = FsFaultPlan(
            label="rt",
            events=(
                FsFaultEvent(op="write", index=2, kind="enospc", count=3),
                FsFaultEvent(op="replace", index=0, kind="lost_rename", match="run-*"),
            ),
        )
        path = plan.save(tmp_path / "plan.json")
        assert FsFaultPlan.load(path) == plan

    def test_unknown_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"schema_version": 99, "events": []}))
        with pytest.raises(ValueError, match="schema"):
            FsFaultPlan.load(path)


class TestWriteSeam:
    def test_plain_write_lands_atomically(self, tmp_path):
        target = tmp_path / "entry.json"
        iolayer.write_text(target, "payload", root=tmp_path)
        assert target.read_text(encoding="utf-8") == "payload"
        assert not list(tmp_path.glob("*.tmp*"))

    def test_single_transient_error_is_retried_invisibly(self, tmp_path):
        target = tmp_path / "entry.json"
        with iolayer.fault_plan(enospc_plan(1)):
            iolayer.write_text(target, "payload", root=tmp_path)
        assert target.read_text(encoding="utf-8") == "payload"
        assert not iolayer.is_degraded(tmp_path)
        assert iolayer.io_error_count(tmp_path) == 1

    def test_exhausted_retries_degrade_the_root(self, tmp_path):
        target = tmp_path / "entry.json"
        with iolayer.fault_plan(enospc_plan(RETRY_ATTEMPTS + 5)):
            with pytest.raises(StoreDegraded) as excinfo:
                iolayer.write_text(target, "payload", root=tmp_path)
        assert iolayer.is_degraded(tmp_path)
        assert "degraded" in str(excinfo.value)
        assert excinfo.value.root == str(tmp_path)
        assert excinfo.value.op == "write"
        assert isinstance(excinfo.value, StoreError)
        assert not target.exists()

    def test_degraded_root_makes_single_probing_attempts(self, tmp_path):
        iolayer.mark_degraded(tmp_path, "test")
        target = tmp_path / "entry.json"
        # Still failing: one attempt, one new io_error, still degraded.
        with iolayer.fault_plan(enospc_plan(1)):
            with pytest.raises(StoreDegraded):
                iolayer.write_text(target, "payload", root=tmp_path)
        assert iolayer.io_error_count(tmp_path) == 1
        assert iolayer.is_degraded(tmp_path)
        # Space returned: the first successful write clears the flag.
        iolayer.write_text(target, "payload", root=tmp_path)
        assert not iolayer.is_degraded(tmp_path)
        assert target.read_text(encoding="utf-8") == "payload"

    def test_non_transient_errors_pass_through_untouched(self, tmp_path):
        missing_dir = tmp_path / "nope" / "entry.json"
        with pytest.raises(OSError) as excinfo:
            iolayer.write_text(missing_dir, "payload", root=tmp_path)
        assert not isinstance(excinfo.value, StoreDegraded)
        assert not iolayer.is_degraded(tmp_path)

    def test_partial_write_appears_to_succeed_but_tears_the_file(self, tmp_path):
        target = tmp_path / "entry.json"
        plan = FsFaultPlan(events=(
            FsFaultEvent(op="write", index=0, kind="partial_write", param=0.5),
        ))
        with iolayer.fault_plan(plan):
            iolayer.write_text(target, "0123456789", root=tmp_path)
        assert target.read_text(encoding="utf-8") == "01234"
        assert not iolayer.is_degraded(tmp_path)

    def test_lost_rename_appears_to_succeed_but_drops_the_file(self, tmp_path):
        target = tmp_path / "entry.json"
        plan = FsFaultPlan(events=(
            FsFaultEvent(op="replace", index=0, kind="lost_rename"),
        ))
        with iolayer.fault_plan(plan):
            iolayer.write_text(target, "payload", root=tmp_path)
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp*"))  # the temp is gone too

    def test_write_json_round_trips(self, tmp_path):
        target = tmp_path / "entry.json"
        iolayer.write_json(target, {"a": 1}, root=tmp_path, sort_keys=True)
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 1}


class TestTargetedEvents:
    def test_match_counts_only_matching_names(self, tmp_path):
        # Index 1 with match="run-*": the SECOND run-* write tears, no
        # matter how many other writes interleave.
        plan = FsFaultPlan(events=(
            FsFaultEvent(op="write", index=1, kind="partial_write",
                         param=0.0, match="run-*"),
        ))
        with iolayer.fault_plan(plan):
            iolayer.write_text(tmp_path / "index.json", "index", root=tmp_path)
            iolayer.write_text(tmp_path / "run-a.json", "aaaa", root=tmp_path)
            iolayer.write_text(tmp_path / "index2.json", "index", root=tmp_path)
            iolayer.write_text(tmp_path / "run-b.json", "bbbb", root=tmp_path)
        assert (tmp_path / "run-a.json").read_text() == "aaaa"
        assert (tmp_path / "run-b.json").read_text() == ""  # torn
        assert (tmp_path / "index.json").read_text() == "index"

    def test_disarm_reports_fired_count(self, tmp_path):
        iolayer.arm_fault_plan(enospc_plan(1))
        # The single ENOSPC fires on attempt 0 and the retry lands clean:
        # invisible to the caller, but counted by the armed plan.
        iolayer.write_text(tmp_path / "x", "x", root=tmp_path)
        assert iolayer.disarm_fault_plan() == 1
        assert iolayer.disarm_fault_plan() == 0  # idempotent when unarmed


class TestScan:
    def test_scan_lists_sorted_matches(self, tmp_path):
        (tmp_path / "b.json").write_text("{}")
        (tmp_path / "a.json").write_text("{}")
        names = [p.name for p in iolayer.scan(tmp_path, "*.json", root=tmp_path)]
        assert names == ["a.json", "b.json"]

    def test_persistent_scan_faults_raise_oserror_not_degraded(self, tmp_path):
        with iolayer.fault_plan(enospc_plan(RETRY_ATTEMPTS + 2, op="scan")):
            with pytest.raises(OSError) as excinfo:
                iolayer.scan(tmp_path, "*", root=tmp_path)
        assert not isinstance(excinfo.value, StoreDegraded)
        assert not iolayer.is_degraded(tmp_path)  # reads never degrade
        assert iolayer.io_error_count(tmp_path) == RETRY_ATTEMPTS


class TestProbe:
    def test_probe_on_healthy_root_is_free(self, tmp_path):
        assert iolayer.probe(tmp_path) is True

    def test_probe_fails_while_capacity_is_exhausted(self, tmp_path):
        iolayer.mark_degraded(tmp_path, "test")
        with iolayer.fault_plan(enospc_plan(10)):
            assert iolayer.probe(tmp_path) is False
        assert iolayer.is_degraded(tmp_path)

    def test_probe_recovers_the_root_and_cleans_up(self, tmp_path):
        iolayer.mark_degraded(tmp_path, "test")
        assert iolayer.probe(tmp_path) is True
        assert not iolayer.is_degraded(tmp_path)
        assert not list(tmp_path.iterdir())  # probe file removed

    def test_schema_version_is_pinned(self):
        assert FS_FAULT_PLAN_SCHEMA_VERSION == 1
