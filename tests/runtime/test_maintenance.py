"""Tests for self-healing store maintenance (scrub / GC / repair).

The load-bearing property is metamorphic: a full scrub+gc+repair pass
over a healthy store is a byte-level no-op for every servable entry —
maintenance only ever touches corrupt, expired, or drifted artifacts.
The remaining tests pin each pass's one job from both sides: the broken
artifact it must remove and the healthy twin it must leave alone.
"""

import os

import pytest

from repro.baselines import SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import RunKey, RunStore, ScenarioTrace, TraceStore, run_policy
from repro.runtime import shards
from repro.runtime.maintenance import DEFAULT_TTL_SECONDS
from repro.sim import xavier_nx_with_oakd

WEEK = DEFAULT_TTL_SECONDS


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenarios():
    return [
        scenario_by_name("s3_indoor_close_wall").scaled(0.05),
        scenario_by_name("s4_indoor_clutter").scaled(0.05),
    ]


@pytest.fixture(scope="module")
def policies():
    return [SingleModelPolicy("yolov7-tiny", "gpu"), SingleModelPolicy("yolov7", "gpu")]


def populate(run_root, trace_root, zoo, scenarios, policies):
    """Real traces + runs on disk; returns the run keys saved."""
    trace_store = TraceStore(trace_root)
    run_store = RunStore(run_root)
    soc_fp = xavier_nx_with_oakd().fingerprint()
    keys = []
    for scenario in scenarios:
        trace = ScenarioTrace.build(scenario, zoo)
        trace_store.save(trace, zoo)
        for policy in policies:
            result = run_policy(policy, trace, engine_seed=1234, fast=True)
            key = RunKey(policy.name, policy.fingerprint(), scenario.fingerprint(),
                         zoo.fingerprint(), soc_fp, 1234)
            run_store.save(result, key)
            keys.append(key)
    return run_store, trace_store, keys


def tree_bytes(root):
    """Every data file under ``root`` -> its bytes (locks/indexes excluded)."""
    snapshot = {}
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".json", ".col") or ".tmp" in path.name:
            continue
        snapshot[path.relative_to(root)] = path.read_bytes()
    return snapshot


def entry_paths(root, pattern):
    return sorted(p for p in root.rglob(pattern) if ".tmp" not in p.name)


class TestMetamorphicNoOp:
    def test_scrub_gc_repair_leave_servable_entries_bit_identical(
        self, tmp_path, zoo, scenarios, policies
    ):
        run_store, trace_store, keys = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        before_runs = tree_bytes(tmp_path / "runs")
        before_traces = tree_bytes(tmp_path / "traces")
        loaded_before = [run_store.load_metrics(key) for key in keys]

        for store in (run_store, trace_store):
            scrub = store.scrub()
            assert scrub.quarantined == 0 and not scrub.problems
            gc = store.gc(dry_run=False)
            assert gc.bytes_reclaimed == 0
            repair = store.repair()
            assert repair.ghosts_dropped == 0 and repair.orphans_indexed == 0

        assert tree_bytes(tmp_path / "runs") == before_runs
        assert tree_bytes(tmp_path / "traces") == before_traces
        assert [run_store.load_metrics(key) for key in keys] == loaded_before
        assert all(m is not None for m in loaded_before)


class TestScrub:
    def test_scrub_quarantines_torn_entries_and_keeps_the_rest(
        self, tmp_path, zoo, scenarios, policies
    ):
        run_store, _, keys = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        victim = entry_paths(tmp_path / "runs", "run-*.col")[0]
        victim.write_text('{"torn', encoding="utf-8")

        report = run_store.scrub()
        assert report.quarantined == 1
        assert len(report.problems) == 1
        assert "unparseable" in report.problems[0]
        assert not victim.exists()
        quarantined = list((tmp_path / "runs" / "_quarantine").iterdir())
        assert len(quarantined) == 1
        # Exactly one key now misses; every other entry still serves.
        assert sum(run_store.load_metrics(k) is None for k in keys) == 1

    def test_scrub_catches_misfiled_entries(self, tmp_path, zoo, scenarios, policies):
        run_store, _, _ = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        source = entry_paths(tmp_path / "runs", "run-*.col")[0]
        # Refile the entry (and an index record) under a shard its digest
        # does not name: scrub must spot the drift by recomputation.
        wrong = tmp_path / "runs" / ("00" if source.parent.name != "00" else "ff")
        wrong.mkdir(exist_ok=True)
        with shards.shard_lock(wrong):
            shards.write_entry_locked(wrong, source.name, source.read_bytes(), {})
        report = run_store.scrub()
        assert report.quarantined == 1
        assert any("filed in shard" in problem for problem in report.problems)


class TestGc:
    def test_gc_is_dry_run_by_default_with_byte_accounting(
        self, tmp_path, zoo, scenarios, policies
    ):
        run_store, _, _ = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        victim = entry_paths(tmp_path / "runs", "run-*.col")[0]
        size = victim.stat().st_size
        victim.write_text('{"torn', encoding="utf-8")
        run_store.scrub()  # -> _quarantine
        quarantined = list((tmp_path / "runs" / "_quarantine").iterdir())
        assert quarantined
        later = quarantined[0].stat().st_mtime + WEEK + 1

        dry = run_store.gc(now=later)
        assert dry.dry_run and dry.quarantine_removed == 1
        assert dry.bytes_reclaimed > 0 and dry.bytes_reclaimed < size
        assert all(path.exists() for path in quarantined)  # nothing deleted

        wet = run_store.gc(dry_run=False, now=later)
        assert wet.bytes_reclaimed == dry.bytes_reclaimed
        assert not any(path.exists() for path in quarantined)

    def test_gc_respects_the_ttl(self, tmp_path, zoo, scenarios, policies):
        run_store, _, _ = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        stale = tmp_path / "runs" / "junk.tmp123"
        stale.write_text("abandoned")
        fresh_now = stale.stat().st_mtime + 60.0  # a minute later, not a week
        report = run_store.gc(dry_run=False, now=fresh_now)
        assert report.temps_removed == 0
        assert report.skipped_young >= 1
        assert stale.exists()
        aged = run_store.gc(dry_run=False, now=fresh_now + WEEK)
        assert aged.temps_removed == 1
        assert not stale.exists()


class TestRepair:
    def test_repair_drops_ghosts_and_reindexes_orphans(
        self, tmp_path, zoo, scenarios, policies
    ):
        run_store, _, keys = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        paths = entry_paths(tmp_path / "runs", "run-*.col")
        ghost, orphan = paths[0], paths[1]
        # Ghost: entry vanished (lost rename) but the index still lists it.
        payload = ghost.read_bytes()
        os.unlink(ghost)
        # Orphan: entry on disk but its index record is gone (index write
        # hit a full disk).
        with shards.shard_lock(orphan.parent):
            index = shards.read_index(orphan.parent)
            del index[orphan.name]
            shards.write_index_locked(orphan.parent, index)

        report = run_store.repair()
        assert report.ghosts_dropped == 1
        assert report.orphans_indexed == 1
        assert report.quarantined == 0

        # The orphan serves again; the ghost is a clean miss; audits pass.
        fresh = RunStore(tmp_path / "runs")
        assert sum(fresh.load_metrics(k) is not None for k in keys) == len(keys) - 1
        _, problems = fresh.audit()
        assert not problems
        assert payload  # (kept only to make the ghost scenario explicit)

    def test_repair_quarantines_unparseable_orphans(
        self, tmp_path, zoo, scenarios, policies
    ):
        run_store, _, _ = populate(
            tmp_path / "runs", tmp_path / "traces", zoo, scenarios, policies
        )
        shard = entry_paths(tmp_path / "runs", "run-*.col")[0].parent
        junk = shard / "run-v1-deadbeefdeadbeefdeadbeefdeadbeef.json"
        junk.write_text('{"torn', encoding="utf-8")
        report = run_store.repair()
        assert report.quarantined == 1
        assert report.orphans_indexed == 0
        assert not junk.exists()


class TestQueueMaintenance:
    def test_dead_letters_are_collected_done_records_never(self, tmp_path):
        from repro.service import JobQueue
        from repro.service.jobs import UnitJob

        queue = JobQueue(tmp_path / "q", lease_duration=0.1, max_attempts=1)
        scenario = scenario_by_name("s3_indoor_close_wall").scaled(0.05)
        queue.enqueue_all(
            [UnitJob(policy_spec="single:yolov7-tiny@gpu", scenario=scenario)],
            engine_seed=1234,
        )
        lease = queue.claim("w1")
        assert lease is not None
        queue.fail(lease, "boom")  # max_attempts=1 -> dead letter
        assert queue.counts()["dead"] == 1

        record_path = next((tmp_path / "q").rglob("job-*.json"))
        later = record_path.stat().st_mtime + WEEK + 1
        report = queue.gc(dry_run=False, now=later)
        assert report.entries_removed == 1
        assert queue.counts()["total"] == 0

        # Done records are never collected: they are what makes a warm
        # re-submit free.
        queue.enqueue_all(
            [UnitJob(policy_spec="single:yolov7-tiny@gpu", scenario=scenario)],
            engine_seed=1234,
        )
        lease = queue.claim("w1")
        queue.complete(lease)
        record_path = next((tmp_path / "q").rglob("job-*.json"))
        report = queue.gc(dry_run=False, now=record_path.stat().st_mtime + 2 * WEEK)
        assert report.entries_removed == 0
        assert queue.counts()["done"] == 1
