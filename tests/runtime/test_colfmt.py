"""Tests for the binary columnar entry format and the read-path bugfixes.

Three contracts share this file because they share one failure surface:

* the ``colfmt`` container and codecs must round-trip payloads
  *bit-identically* — the binary format is an encoding of the JSON
  payload, never a reinterpretation of it;
* the stores must treat the two formats as one store — either format
  written, either reader, same bytes out, same index records, corrupt
  entries of either format quarantined the same way;
* transient read errors must never destroy data — an EIO on a valid
  entry is a miss, not a quarantine (the bug this PR fixes), while
  non-finite floats must never produce invalid JSON on disk.
"""

import json
import math

import pytest

from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import (
    RunKey,
    RunStore,
    ScenarioTrace,
    TraceStore,
    run_policy,
    run_to_dict,
    trace_to_dict,
)
from repro.runtime import colfmt, iolayer, shards
from repro.runtime.export import load_metrics_dicts, save_metrics
from repro.runtime.iolayer import RETRY_ATTEMPTS, FsFaultEvent, FsFaultPlan
from repro.runtime.metrics import aggregate
from repro.baselines import SingleModelPolicy
from repro.sim import xavier_nx_with_oakd
from repro.util import jsonsafe


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


@pytest.fixture(scope="module")
def policy():
    return SingleModelPolicy("yolov7-tiny", "gpu")


@pytest.fixture(scope="module")
def result(policy, trace):
    return run_policy(policy, trace)


@pytest.fixture(scope="module")
def key(policy, scenario, zoo):
    return RunKey(
        policy_name=policy.name,
        policy_fingerprint=policy.fingerprint(),
        scenario_fingerprint=scenario.fingerprint(),
        zoo_fingerprint=zoo.fingerprint(),
        soc_fingerprint=xavier_nx_with_oakd().fingerprint(),
        engine_seed=1234,
    )


@pytest.fixture(autouse=True)
def clean_seam():
    iolayer.disarm_fault_plan()
    yield
    iolayer.disarm_fault_plan()


class TestContainer:
    def test_trace_payload_round_trips_bit_identically(self, trace, zoo):
        payload = trace_to_dict(trace, zoo)
        assert colfmt.decode_trace(colfmt.encode_trace(payload)) == payload

    def test_run_payload_round_trips_bit_identically(self, result, key):
        payload = run_to_dict(result, key)
        assert colfmt.decode_run(colfmt.encode_run(payload)) == payload

    def test_model_order_is_preserved(self, trace, zoo):
        payload = trace_to_dict(trace, zoo)
        decoded = colfmt.decode_trace(colfmt.encode_trace(payload))
        assert list(decoded["outcomes"]) == list(payload["outcomes"])

    def test_corrupt_magic_raises(self, trace, zoo):
        data = bytearray(colfmt.encode_trace(trace_to_dict(trace, zoo)))
        data[:4] = b"JUNK"
        with pytest.raises(colfmt.ColumnFormatError, match="magic"):
            colfmt.decode_trace(bytes(data))

    def test_truncation_raises(self, result, key):
        data = colfmt.encode_run(run_to_dict(result, key))
        with pytest.raises(colfmt.ColumnFormatError):
            colfmt.decode_run(data[: len(data) // 2])

    def test_header_carries_no_bulk_data(self, result, key, tmp_path):
        payload = run_to_dict(result, key)
        path = tmp_path / ("run-x" + colfmt.COL_SUFFIX)
        path.write_bytes(colfmt.encode_run(payload))
        header = colfmt.read_run_header(path)
        assert "records" not in header
        assert header["metrics"] == payload["metrics"]


class TestCrossFormat:
    def test_trace_equal_through_both_formats(self, trace, scenario, zoo, tmp_path):
        json_store = TraceStore(tmp_path, write_format="json")
        json_path = json_store.save(trace, zoo)
        json_meta = shards.read_index(json_path.parent)[json_path.name]

        binary_store = TraceStore(tmp_path, write_format="binary")
        assert binary_store.format_migrated == 1, "open must re-encode the JSON entry"
        assert not json_path.exists()
        col_path = binary_store.path_for(scenario, zoo)
        assert col_path.suffix == colfmt.COL_SUFFIX and col_path.exists()
        # Index records are format-independent: bit-identical either way.
        assert shards.read_index(col_path.parent)[col_path.name] == json_meta

        via_binary = binary_store.load(scenario, zoo)
        via_json_reader = TraceStore(tmp_path, write_format="json").load(scenario, zoo)
        assert via_binary.outcomes == trace.outcomes
        assert via_json_reader.outcomes == trace.outcomes

    def test_run_equal_through_both_formats(self, result, key, tmp_path):
        json_store = RunStore(tmp_path, write_format="json")
        json_store.save(result, key)
        via_json = json_store.load(key)

        binary_store = RunStore(tmp_path, write_format="binary")
        assert binary_store.format_migrated == 1
        via_binary = binary_store.load(key)
        assert via_binary.records == result.records == via_json.records
        assert binary_store.load_metrics(key) == json_store.load_metrics(key)

    def test_binary_save_supersedes_json_twin(self, result, key, tmp_path):
        json_path = RunStore(tmp_path, write_format="json").save(result, key)
        # Fresh binary-writer store: saving replaces the twin atomically
        # under the same shard lock (no double-indexed entry).
        store = RunStore(tmp_path)
        col_path = store.save(result, key)
        assert col_path.suffix == colfmt.COL_SUFFIX
        assert not json_path.exists()
        assert len(store) == 1

    def test_lazy_outcomes_until_first_access(self, trace, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        store.save(trace, zoo)
        loaded = store.load(scenario, zoo)
        assert not loaded.outcomes_materialized, "binary load must defer column decode"
        assert loaded.outcomes == trace.outcomes
        assert loaded.outcomes_materialized

    def test_corrupt_binary_quarantines_like_corrupt_json(self, result, key, tmp_path):
        store = RunStore(tmp_path)
        path = store.save(result, key)
        path.write_bytes(b"RPROCOL1" + b"\xff" * 32)  # right magic, garbage header
        assert store.load(key) is None
        assert store.corrupt_entries == 1
        assert not path.exists(), "corrupt entry must be quarantined"
        quarantined = list((tmp_path / "_quarantine").iterdir())
        assert len(quarantined) == 1


class TestTransientReadErrors:
    """The PR's headline bugfix: an EIO must never destroy a valid entry."""

    def _read_eio_plan(self, match):
        return FsFaultPlan(events=(
            FsFaultEvent(op="read", index=0, kind="eio",
                         count=RETRY_ATTEMPTS * 4, match=match),
        ))

    def test_eio_on_run_read_is_a_miss_not_a_quarantine(self, result, key, tmp_path):
        store = RunStore(tmp_path)
        path = store.save(result, key)
        with iolayer.fault_plan(self._read_eio_plan("run-*")):
            assert store.load(key) is None, "unreadable entry must be a miss"
        assert store.corrupt_entries == 0, "an I/O error is not corruption"
        assert path.exists(), "the entry must survive the flaky disk"
        assert iolayer.io_error_count(tmp_path) > 0, "retries must be accounted"
        assert not iolayer.is_degraded(tmp_path), "reads never degrade a root"
        # Disk recovered: the same entry serves again, bit-identical.
        assert store.load(key).records == result.records

    def test_eio_on_trace_read_is_a_miss_not_a_quarantine(
        self, trace, scenario, zoo, tmp_path
    ):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        with iolayer.fault_plan(self._read_eio_plan("trace-*")):
            assert store.load(scenario, zoo) is None
        assert store.corrupt_entries == 0
        assert path.exists()
        assert store.load(scenario, zoo).outcomes == trace.outcomes

    def test_scrub_reports_unreadable_entries_without_quarantining(
        self, result, key, tmp_path
    ):
        store = RunStore(tmp_path)
        path = store.save(result, key)
        with iolayer.fault_plan(self._read_eio_plan("run-*")):
            report = store.scrub()
        assert report.quarantined == 0
        assert any("left in place" in problem for problem in report.problems)
        assert path.exists()


class TestNonFiniteJson:
    def test_jsonsafe_round_trips_non_finite(self):
        payload = {"a": float("nan"), "b": float("inf"), "c": -float("inf"), "d": 1.5}
        text = jsonsafe.dumps(payload)
        json.loads(text, parse_constant=pytest.fail)  # spec-valid: no NaN/Infinity
        restored = jsonsafe.loads(text)
        assert math.isnan(restored["a"])
        assert restored["b"] == float("inf") and restored["c"] == -float("inf")
        assert restored["d"] == 1.5

    def test_metrics_with_nan_export_as_valid_json(self, result, tmp_path):
        metrics = aggregate(result)
        import dataclasses

        broken = dataclasses.replace(metrics, mean_iou=float("nan"))
        path = tmp_path / "metrics.jsonl"
        save_metrics([broken, metrics], path)
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=pytest.fail)
        rows = load_metrics_dicts(path)
        assert math.isnan(rows[0]["mean_iou"])
        assert rows[1]["mean_iou"] == metrics.mean_iou

    def test_nan_metric_survives_binary_round_trip(self, result, key, tmp_path):
        payload = run_to_dict(result, key)
        payload["metrics"]["mean_iou"] = float("nan")
        decoded = colfmt.decode_run(colfmt.encode_run(payload))
        assert math.isnan(decoded["metrics"]["mean_iou"])


class TestTornMetricsTail:
    def _rows(self, result):
        return [aggregate(result)]

    def test_torn_final_line_is_partial_not_fatal(self, result, tmp_path):
        path = tmp_path / "metrics.jsonl"
        save_metrics(self._rows(result) * 3, path)
        text = path.read_text()
        path.write_text(text.rstrip("\n")[:-20])  # kill the writer mid-line
        rows = load_metrics_dicts(path)
        assert rows.partial, "a torn tail must be reported"
        assert len(rows) == 2, "complete rows before the tear still serve"

    def test_torn_middle_line_still_raises(self, result, tmp_path):
        path = tmp_path / "metrics.jsonl"
        lines = [jsonsafe.dumps({"ok": i}) for i in range(3)]
        lines[1] = '{"torn'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_metrics_dicts(path)

    def test_clean_file_is_not_partial(self, result, tmp_path):
        path = tmp_path / "metrics.jsonl"
        save_metrics(self._rows(result), path)
        rows = load_metrics_dicts(path)
        assert not rows.partial and len(rows) == 1
