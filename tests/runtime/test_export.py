"""Tests for metrics/record export."""

import pytest

from repro.baselines import SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import (
    ScenarioTrace,
    aggregate,
    load_metrics_dicts,
    metrics_to_dict,
    record_to_dict,
    result_to_dict,
    run_policy,
    save_metrics,
)


@pytest.fixture(scope="module")
def run_result():
    trace = ScenarioTrace.build(
        scenario_by_name("s3_indoor_close_wall").scaled(0.02), default_zoo()
    )
    return run_policy(SingleModelPolicy("yolov7", "gpu"), trace)


class TestDictForms:
    def test_metrics_to_dict_keys(self, run_result):
        row = metrics_to_dict(aggregate(run_result))
        assert row["policy"] == "single:yolov7@gpu"
        assert row["frames"] == run_result.frame_count
        assert 0.0 <= row["mean_iou"] <= 1.0
        assert row["efficiency_iou_per_joule"] > 0

    def test_record_to_dict_box(self, run_result):
        record = run_result.records[0]
        row = record_to_dict(record)
        if record.box is None:
            assert row["box"] is None
        else:
            assert len(row["box"]) == 4

    def test_result_to_dict_complete(self, run_result):
        payload = result_to_dict(run_result)
        assert payload["scenario"] == run_result.scenario_name
        assert len(payload["records"]) == run_result.frame_count

    def test_json_serializable(self, run_result):
        import json

        json.dumps(result_to_dict(run_result))
        json.dumps(metrics_to_dict(aggregate(run_result)))


class TestFileRoundTrip:
    def test_save_and_load(self, run_result, tmp_path):
        metrics = aggregate(run_result)
        path = tmp_path / "runs.jsonl"
        save_metrics([metrics, metrics], path)
        rows = load_metrics_dicts(path)
        assert len(rows) == 2
        assert rows[0] == metrics_to_dict(metrics)
