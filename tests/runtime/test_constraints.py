"""Tests for constraint-satisfaction reporting."""

import pytest

from repro.runtime import RunResult, evaluate_constraints
from repro.runtime.records import FrameRecord


def _record(index, latency, energy):
    return FrameRecord(
        frame_index=index,
        model_name="m",
        accelerator_name="gpu",
        box=None,
        confidence=0.5,
        iou=0.5,
        ground_truth_present=True,
        detected=True,
        latency_s=latency,
        inference_s=latency,
        stall_s=0.0,
        overhead_s=0.0,
        energy_j=energy,
        swap=False,
        cold_load=False,
    )


def _run(latencies, energies=None):
    energies = energies or [1.0] * len(latencies)
    records = [_record(i, lat, e) for i, (lat, e) in enumerate(zip(latencies, energies, strict=True))]
    return RunResult("p", "s", records)


class TestDeadline:
    def test_all_frames_meet_deadline(self):
        report = evaluate_constraints(_run([0.01, 0.02, 0.03]), deadline_s=0.05)
        assert report.deadline_hit_rate == 1.0
        assert report.deadline_met

    def test_partial_misses(self):
        report = evaluate_constraints(_run([0.01, 0.08, 0.02, 0.09]), deadline_s=0.05)
        assert report.deadline_hit_rate == 0.5
        assert not report.deadline_met

    def test_no_deadline_always_met(self):
        report = evaluate_constraints(_run([10.0]))
        assert report.deadline_met

    def test_worst_and_p99(self):
        latencies = [0.01] * 99 + [0.5]
        report = evaluate_constraints(_run(latencies), deadline_s=0.05)
        assert report.worst_latency_s == 0.5
        assert report.p99_latency_s >= 0.01

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            evaluate_constraints(_run([0.1]), deadline_s=0.0)


class TestBudget:
    def test_within_budget(self):
        report = evaluate_constraints(_run([0.1] * 3, [1.0, 1.0, 1.0]), energy_budget_j=5.0)
        assert report.within_budget
        assert report.budget_exhausted_at_frame is None
        assert report.total_energy_j == pytest.approx(3.0)

    def test_budget_exhaustion_frame(self):
        report = evaluate_constraints(_run([0.1] * 4, [2.0, 2.0, 2.0, 2.0]), energy_budget_j=5.0)
        assert not report.within_budget
        assert report.budget_exhausted_at_frame == 2  # cumulative 6.0 > 5.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            evaluate_constraints(_run([0.1]), energy_budget_j=-1.0)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            evaluate_constraints(RunResult("p", "s"))


class TestIntegration:
    def test_shift_meets_camera_deadline_more_than_single_model(self):
        from repro.baselines import SingleModelPolicy
        from repro.characterization import characterize
        from repro.data import CAMERA_FPS, scenario_by_name
        from repro.models import default_zoo
        from repro.runtime import ScenarioTrace, run_policy
        from repro.core import ShiftPipeline
        from repro.sim import xavier_nx_with_oakd

        zoo = default_zoo()
        bundle = characterize(zoo, xavier_nx_with_oakd(), validation_size=100, perf_repeats=3)
        trace = ScenarioTrace.build(
            scenario_by_name("s3_indoor_close_wall").scaled(0.1), zoo
        )
        deadline = 1.0 / CAMERA_FPS  # real-time: one camera period
        shift = evaluate_constraints(
            run_policy(ShiftPipeline(bundle), trace), deadline_s=deadline
        )
        single = evaluate_constraints(
            run_policy(SingleModelPolicy("yolov7", "gpu"), trace), deadline_s=deadline
        )
        # YoloV7@GPU (130 ms) can never make a 33 ms camera deadline;
        # SHIFT's cheap models mostly can.
        assert single.deadline_hit_rate == 0.0
        assert shift.deadline_hit_rate > 0.5
