"""Tests for scenario traces and the trace cache."""

import dataclasses

import pytest

from repro.data import scenario_by_name
from repro.models import default_zoo, detect
from repro.runtime import ScenarioTrace, TraceCache


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


class TestScenarioTrace:
    def test_covers_every_model_and_frame(self, trace, zoo, scenario):
        assert set(trace.model_names()) == set(zoo.names())
        assert trace.frame_count == scenario.total_frames
        for name in zoo.names():
            assert len(trace.outcomes[name]) == trace.frame_count

    def test_outcome_matches_direct_detection(self, trace, zoo, scenario):
        spec = zoo.get("yolov7")
        frame = trace.frames[3]
        direct = detect(spec, frame.scene, (scenario.seed, frame.index))
        assert trace.outcome("yolov7", 3) == direct

    def test_unknown_model_raises(self, trace):
        with pytest.raises(KeyError, match="traced"):
            trace.outcome("ghost", 0)

    def test_out_of_range_frame_raises(self, trace):
        with pytest.raises(IndexError):
            trace.outcome("yolov7", 10_000)


class TestTraceCache:
    def test_caches_by_scenario_identity(self, zoo, scenario):
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(scenario)
        assert a is b
        assert len(cache) == 1
        assert cache.builds == 1

    def test_scaled_variant_is_distinct(self, zoo, scenario):
        cache = TraceCache(zoo)
        cache.get(scenario)
        cache.get(scenario.scaled(0.5))
        assert len(cache) == 2

    def test_same_name_and_length_different_seed_is_distinct(self, zoo, scenario):
        # Regression: keying by (name, total_frames) silently reused the
        # wrong trace for scenarios differing only in seed.
        reseeded = dataclasses.replace(scenario, seed=scenario.seed + 1)
        assert reseeded.name == scenario.name
        assert reseeded.total_frames == scenario.total_frames
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(reseeded)
        assert len(cache) == 2
        assert a.outcomes != b.outcomes

    def test_same_name_and_length_different_segments_is_distinct(self, zoo, scenario):
        # Same name, same frame count, different segment content.
        segments = tuple(
            dataclasses.replace(seg, background_name="indoor_lab") for seg in scenario.segments
        )
        restyled = dataclasses.replace(scenario, segments=segments)
        assert restyled.name == scenario.name
        assert restyled.total_frames == scenario.total_frames
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(restyled)
        assert len(cache) == 2
        assert a.outcomes != b.outcomes


class TestParallelBuild:
    def test_parallel_build_matches_serial(self, zoo, scenario):
        serial = ScenarioTrace.build(scenario, zoo)
        parallel = ScenarioTrace.build(scenario, zoo, max_workers=2)
        assert serial.outcomes == parallel.outcomes
        assert parallel.model_names() == serial.model_names()
        assert parallel.frame_count == serial.frame_count

    def test_worker_count_larger_than_zoo_is_fine(self, zoo, scenario):
        trace = ScenarioTrace.build(scenario, zoo, max_workers=len(zoo) + 5)
        assert set(trace.model_names()) == set(zoo.names())


class TestWorkerThreshold:
    """build(workers=N) must never regress below the serial path."""

    def test_effective_workers_caps_by_volume(self):
        from repro.runtime.trace import MIN_MODEL_FRAMES_PER_WORKER, _effective_workers

        models, cpus = 8, 64
        plenty = 10 * models * MIN_MODEL_FRAMES_PER_WORKER
        assert _effective_workers(None, models, plenty) == 1
        assert _effective_workers(1, models, plenty) == 1
        # Tiny builds fall back to serial no matter how many workers asked.
        assert _effective_workers(cpus, models, 10) == 1
        # Just enough volume for exactly two workers.
        assert _effective_workers(cpus, models, 2 * MIN_MODEL_FRAMES_PER_WORKER) <= 2

    def test_effective_workers_caps_by_models_and_cpus(self, monkeypatch):
        import repro.runtime.trace as trace_module

        monkeypatch.setattr(trace_module, "_available_cpus", lambda: 4)
        huge = 100 * trace_module.MIN_MODEL_FRAMES_PER_WORKER
        assert trace_module._effective_workers(64, 3, huge) == 3  # model cap
        assert trace_module._effective_workers(64, 16, huge) == 4  # cpu cap

    def test_small_build_never_spins_a_pool(self, monkeypatch, zoo, scenario):
        import repro.runtime.trace as trace_module

        def _boom(*args, **kwargs):
            raise AssertionError("a worker pool was spawned for a tiny build")

        monkeypatch.setattr(trace_module, "ProcessPoolExecutor", _boom)
        trace = ScenarioTrace.build(scenario, zoo, max_workers=8)
        assert set(trace.model_names()) == set(zoo.names())

    def test_forced_pool_path_is_bit_identical(self, monkeypatch, zoo, scenario):
        # Exercise the real worker-pool path even on small boxes/scenarios
        # by dropping both guards; outcomes must match serial exactly.
        import repro.runtime.trace as trace_module

        monkeypatch.setattr(trace_module, "MIN_MODEL_FRAMES_PER_WORKER", 1)
        monkeypatch.setattr(trace_module, "_available_cpus", lambda: 8)
        serial = ScenarioTrace.build(scenario, zoo)
        pooled = ScenarioTrace.build(scenario, zoo, max_workers=2)
        assert pooled.outcomes == serial.outcomes


class TestLazyFrames:
    def test_built_traces_carry_frames(self, trace):
        assert trace.frames_materialized
        assert len(trace.frames) == trace.frame_count

    def test_outcome_only_traces_defer_rendering(self, scenario, zoo, trace):
        lazy = ScenarioTrace(scenario=scenario, frames=None, outcomes=trace.outcomes)
        assert not lazy.frames_materialized
        assert lazy.frame_count == scenario.total_frames  # no render needed
        assert lazy.model_names() == trace.model_names()
        # First access renders (bit-identical to the eager frames)…
        import numpy as np

        assert np.array_equal(lazy.frames[3].image, trace.frames[3].image)
        assert lazy.frames_materialized
        # …and caches.
        assert lazy.frames is lazy.frames

    def test_outcomes_are_required(self, scenario):
        with pytest.raises(ValueError):
            ScenarioTrace(scenario=scenario, frames=None, outcomes=None)

    def test_consecutive_frame_ncc_matches_scalar_loop(self, trace):
        import numpy as np

        from repro.vision import ncc

        values = trace.consecutive_frame_ncc()
        images = [frame.image for frame in trace.frames]
        expected = np.array([ncc(images[i], images[i + 1]) for i in range(len(images) - 1)])
        assert np.array_equal(values, expected)
        assert trace.consecutive_frame_ncc() is values  # cached
