"""Tests for scenario traces and the trace cache."""

import dataclasses

import pytest

from repro.data import scenario_by_name
from repro.models import default_zoo, detect
from repro.runtime import ScenarioTrace, TraceCache


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


class TestScenarioTrace:
    def test_covers_every_model_and_frame(self, trace, zoo, scenario):
        assert set(trace.model_names()) == set(zoo.names())
        assert trace.frame_count == scenario.total_frames
        for name in zoo.names():
            assert len(trace.outcomes[name]) == trace.frame_count

    def test_outcome_matches_direct_detection(self, trace, zoo, scenario):
        spec = zoo.get("yolov7")
        frame = trace.frames[3]
        direct = detect(spec, frame.scene, (scenario.seed, frame.index))
        assert trace.outcome("yolov7", 3) == direct

    def test_unknown_model_raises(self, trace):
        with pytest.raises(KeyError, match="traced"):
            trace.outcome("ghost", 0)

    def test_out_of_range_frame_raises(self, trace):
        with pytest.raises(IndexError):
            trace.outcome("yolov7", 10_000)


class TestTraceCache:
    def test_caches_by_scenario_identity(self, zoo, scenario):
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(scenario)
        assert a is b
        assert len(cache) == 1
        assert cache.builds == 1

    def test_scaled_variant_is_distinct(self, zoo, scenario):
        cache = TraceCache(zoo)
        cache.get(scenario)
        cache.get(scenario.scaled(0.5))
        assert len(cache) == 2

    def test_same_name_and_length_different_seed_is_distinct(self, zoo, scenario):
        # Regression: keying by (name, total_frames) silently reused the
        # wrong trace for scenarios differing only in seed.
        reseeded = dataclasses.replace(scenario, seed=scenario.seed + 1)
        assert reseeded.name == scenario.name
        assert reseeded.total_frames == scenario.total_frames
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(reseeded)
        assert len(cache) == 2
        assert a.outcomes != b.outcomes

    def test_same_name_and_length_different_segments_is_distinct(self, zoo, scenario):
        # Same name, same frame count, different segment content.
        segments = tuple(
            dataclasses.replace(seg, background_name="indoor_lab") for seg in scenario.segments
        )
        restyled = dataclasses.replace(scenario, segments=segments)
        assert restyled.name == scenario.name
        assert restyled.total_frames == scenario.total_frames
        cache = TraceCache(zoo)
        a = cache.get(scenario)
        b = cache.get(restyled)
        assert len(cache) == 2
        assert a.outcomes != b.outcomes


class TestParallelBuild:
    def test_parallel_build_matches_serial(self, zoo, scenario):
        serial = ScenarioTrace.build(scenario, zoo)
        parallel = ScenarioTrace.build(scenario, zoo, max_workers=2)
        assert serial.outcomes == parallel.outcomes
        assert parallel.model_names() == serial.model_names()
        assert parallel.frame_count == serial.frame_count

    def test_worker_count_larger_than_zoo_is_fine(self, zoo, scenario):
        trace = ScenarioTrace.build(scenario, zoo, max_workers=len(zoo) + 5)
        assert set(trace.model_names()) == set(zoo.names())
