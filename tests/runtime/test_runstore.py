"""Tests for the on-disk run store.

The run store's one job is to never lie: a hit must be bit-identical to
re-running the policy, and *anything* else — schema drift, corruption,
a changed policy config, trace, platform, or seed — must be a miss or a
loud :class:`RunSchemaError`, never a silently wrong run.
"""

import json
import multiprocessing
import os

import pytest

from repro.baselines import MarlinPolicy, SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import (
    RunKey,
    RunSchemaError,
    RunStore,
    ScenarioTrace,
    aggregate,
    run_from_dict,
    run_policy,
    run_to_dict,
)
from repro.runtime.runstore import RUN_ALGORITHM_VERSION
from repro.sim import gpu_only_soc, xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


@pytest.fixture(scope="module")
def policy():
    return SingleModelPolicy("yolov7-tiny", "gpu")


@pytest.fixture(scope="module")
def result(policy, trace):
    return run_policy(policy, trace)


def make_key(policy, scenario, zoo, soc=None, seed=1234):
    return RunKey(
        policy_name=policy.name,
        policy_fingerprint=policy.fingerprint(),
        scenario_fingerprint=scenario.fingerprint(),
        zoo_fingerprint=zoo.fingerprint(),
        soc_fingerprint=(soc or xavier_nx_with_oakd()).fingerprint(),
        engine_seed=seed,
    )


@pytest.fixture
def key(policy, scenario, zoo):
    return make_key(policy, scenario, zoo)


class TestRoundTrip:
    def test_save_load_round_trip_is_identical(self, tmp_path, result, key):
        store = RunStore(tmp_path)
        path = store.save(result, key)
        assert path.exists()
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.policy_name == result.policy_name
        assert loaded.scenario_name == result.scenario_name
        assert loaded.records == result.records  # full FrameRecord equality

    def test_metrics_load_matches_aggregation_exactly(self, tmp_path, result, key):
        store = RunStore(tmp_path)
        store.save(result, key)
        assert store.load_metrics(key) == aggregate(result)

    def test_dict_round_trip_survives_json(self, result, key):
        payload = json.loads(json.dumps(run_to_dict(result, key)))
        restored = run_from_dict(payload, key)
        assert restored.records == result.records

    def test_missing_key_is_a_miss(self, tmp_path, key):
        store = RunStore(tmp_path)
        assert store.load(key) is None
        assert store.load_metrics(key) is None
        assert key not in store

    def test_contains_len_clear(self, tmp_path, result, key):
        store = RunStore(tmp_path)
        store.save(result, key)
        assert key in store
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0


class TestSchemaRejection:
    def _saved(self, tmp_path, result, key):
        # Pinned to the JSON writer: these tests corrupt the payload by
        # editing the file's text, which only the JSON format supports.
        store = RunStore(tmp_path, write_format="json")
        path = store.save(result, key)
        return store, path

    def test_unreadable_entry_is_a_counted_miss(self, tmp_path, result, key):
        # Unified miss accounting: an entry that cannot even be parsed
        # (torn write, disk corruption) behaves exactly like a missing
        # one — a miss — but is surfaced via corrupt_entries and removed
        # so it can never shadow a future rebuild.
        store, path = self._saved(tmp_path, result, key)
        path.write_text("not json at all", encoding="utf-8")
        assert store.load(key) is None
        assert store.corrupt_entries == 1
        assert not path.exists(), "corrupt entry must be quarantined"
        store.save(result, key)  # the slot is reusable after cleanup
        assert store.load(key).records == result.records

    def test_non_object_entry_is_a_counted_miss(self, tmp_path, result, key):
        store, path = self._saved(tmp_path, result, key)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert store.load_metrics(key) is None
        assert store.corrupt_entries == 1
        assert not path.exists()

    def test_rejects_wrong_schema_version(self, tmp_path, result, key):
        store, path = self._saved(tmp_path, result, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(RunSchemaError, match="unsupported run schema"):
            store.load(key)

    def test_rejects_truncated_records(self, tmp_path, result, key):
        store, path = self._saved(tmp_path, result, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["records"] = payload["records"][:-1]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(RunSchemaError, match="frames"):
            store.load(key)

    def test_rejects_malformed_record_row(self, tmp_path, result, key):
        store, path = self._saved(tmp_path, result, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["records"][0] = ["garbage"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(RunSchemaError, match="malformed run payload"):
            store.load(key)

    def test_algorithm_version_bump_orphans_files(self, tmp_path, result, key):
        # A bumped algorithm version changes the file name, so stale runs
        # are misses — never errors, never silent reuse.
        store = RunStore(tmp_path)
        old = store.save(result, key)
        assert f"run-v{RUN_ALGORITHM_VERSION}-" in old.name
        renamed = old.with_name(old.name.replace(f"-v{RUN_ALGORITHM_VERSION}-", "-v999-"))
        os.replace(old, renamed)
        assert store.load(key) is None


class TestInvalidation:
    """Every dimension of the run key must invalidate independently."""

    def test_policy_config_change_misses(self, tmp_path, result, key, scenario, zoo):
        store = RunStore(tmp_path)
        store.save(result, key)
        other = make_key(SingleModelPolicy("yolov7", "gpu"), scenario, zoo)
        assert store.load(other) is None

    def test_policy_fingerprint_covers_thresholds(self):
        a = MarlinPolicy("yolov7", redetect_interval=12)
        b = MarlinPolicy("yolov7", redetect_interval=13)
        assert a.fingerprint() != b.fingerprint()

    def test_trace_fingerprint_change_misses(self, tmp_path, result, key, policy, zoo):
        store = RunStore(tmp_path)
        store.save(result, key)
        other_scenario = scenario_by_name("s4_indoor_clutter").scaled(0.05)
        assert store.load(make_key(policy, other_scenario, zoo)) is None

    def test_soc_change_misses(self, tmp_path, result, key, policy, scenario, zoo):
        store = RunStore(tmp_path)
        store.save(result, key)
        assert store.load(make_key(policy, scenario, zoo, soc=gpu_only_soc())) is None

    def test_policy_rename_misses(self, tmp_path, result, key, scenario, zoo):
        # Same config, different display name: the persisted rows carry
        # the old name, so a renamed policy must miss, never return rows
        # labelled with a stale name.
        store = RunStore(tmp_path)
        store.save(result, key)
        renamed = SingleModelPolicy("yolov7-tiny", "gpu")
        renamed.name = "renamed-tiny"
        assert renamed.fingerprint() == key.policy_fingerprint
        assert store.load(make_key(renamed, scenario, zoo)) is None

    def test_seed_change_misses(self, tmp_path, result, key, policy, scenario, zoo):
        store = RunStore(tmp_path)
        store.save(result, key)
        assert store.load(make_key(policy, scenario, zoo, seed=999)) is None

    def test_tampered_identity_block_is_rejected(self, tmp_path, result, key):
        # A file whose *name* matches but whose identity block does not
        # (hand-edited, or a digest collision) fails loudly.
        store = RunStore(tmp_path, write_format="json")
        path = store.save(result, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["engine_seed"] = 4321
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(RunSchemaError, match="engine seed"):
            store.load(key)


def _concurrent_writer(args):
    root, payload_result, key_parts = args
    store = RunStore(root)
    key = RunKey(*key_parts)
    for _ in range(10):
        store.save(payload_result, key)
    return True


class TestConcurrency:
    def test_atomic_rename_leaves_no_torn_files(self, tmp_path, result, key):
        """Racing writers on the same key always leave one complete file."""
        parts = (
            key.policy_name,
            key.policy_fingerprint,
            key.scenario_fingerprint,
            key.zoo_fingerprint,
            key.soc_fingerprint,
            key.engine_seed,
        )
        with multiprocessing.Pool(2) as pool:
            outcomes = pool.map(
                _concurrent_writer, [(str(tmp_path), result, parts)] * 2
            )
        assert all(outcomes)
        store = RunStore(tmp_path)
        assert len(store) == 1
        loaded = store.load(key)  # parses cleanly — no torn write
        assert loaded is not None and loaded.records == result.records
        assert not list(tmp_path.rglob("*.tmp*")), "temp files must not linger"

    def test_store_rejects_file_path_root(self, tmp_path):
        target = tmp_path / "afile"
        target.write_text("x", encoding="utf-8")
        with pytest.raises(NotADirectoryError):
            RunStore(target)
