"""Tests for metric aggregation."""

import pytest

from repro.runtime import RunResult, aggregate, average_metrics, efficiency_series
from repro.runtime.records import FrameRecord
from repro.vision import BoundingBox


def _record(
    index=0,
    iou=0.6,
    energy=1.0,
    latency=0.1,
    truth=True,
    accel="gpu",
    swap=False,
    cold=False,
    detected=True,
    overhead=0.0,
):
    return FrameRecord(
        frame_index=index,
        model_name="yolov7",
        accelerator_name=accel,
        box=BoundingBox(0, 0, 10, 10) if detected else None,
        confidence=0.7,
        iou=iou,
        ground_truth_present=truth,
        detected=detected,
        latency_s=latency,
        inference_s=latency,
        stall_s=0.0,
        overhead_s=overhead,
        energy_j=energy,
        swap=swap,
        cold_load=cold,
    )


class TestFrameRecord:
    def test_success_threshold(self):
        assert _record(iou=0.5).success
        assert not _record(iou=0.49).success

    def test_non_gpu(self):
        assert _record(accel="dla0").non_gpu
        assert not _record(accel="gpu").non_gpu

    def test_pair(self):
        assert _record().pair == ("yolov7", "gpu")


class TestAggregate:
    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            aggregate(RunResult(policy_name="p", scenario_name="s"))

    def test_iou_only_over_truth_frames(self):
        records = [_record(iou=0.8), _record(iou=0.0, truth=False), _record(iou=0.4)]
        metrics = aggregate(RunResult("p", "s", records))
        assert metrics.mean_iou == pytest.approx(0.6)
        assert metrics.success_rate == pytest.approx(0.5)

    def test_energy_and_latency_over_all_frames(self):
        records = [_record(energy=1.0, latency=0.1), _record(energy=3.0, latency=0.3, truth=False)]
        metrics = aggregate(RunResult("p", "s", records))
        assert metrics.mean_energy_j == pytest.approx(2.0)
        assert metrics.mean_latency_s == pytest.approx(0.2)
        assert metrics.total_energy_j == pytest.approx(4.0)

    def test_counts(self):
        records = [
            _record(swap=False, cold=False),
            _record(swap=True, cold=True, accel="dla0"),
            _record(swap=True, accel="oakd"),
        ]
        metrics = aggregate(RunResult("p", "s", records))
        assert metrics.swaps == 2
        assert metrics.cold_loads == 1
        assert metrics.non_gpu_share == pytest.approx(2 / 3)
        assert metrics.pairs_used == 3

    def test_no_truth_frames_gives_zero_accuracy(self):
        metrics = aggregate(RunResult("p", "s", [_record(truth=False)]))
        assert metrics.mean_iou == 0.0
        assert metrics.success_rate == 0.0

    def test_efficiency_property(self):
        metrics = aggregate(RunResult("p", "s", [_record(iou=0.5, energy=2.0)]))
        assert metrics.efficiency_iou_per_joule == pytest.approx(0.25)

    def test_detected_share(self):
        records = [_record(detected=True), _record(detected=False)]
        metrics = aggregate(RunResult("p", "s", records))
        assert metrics.detected_share == 0.5


class TestAverageMetrics:
    def test_averages_rates_and_sums_counts(self):
        a = aggregate(RunResult("p", "s1", [_record(iou=0.8, energy=1.0, swap=True)]))
        b = aggregate(RunResult("p", "s2", [_record(iou=0.4, energy=3.0)]))
        avg = average_metrics([a, b], "p")
        assert avg.mean_iou == pytest.approx(0.6)
        assert avg.mean_energy_j == pytest.approx(2.0)
        assert avg.swaps == 1
        assert avg.frames == 2
        assert avg.scenario_name == "average"

    def test_pairs_used_fractional(self):
        a = aggregate(RunResult("p", "s1", [_record(), _record(accel="dla0")]))
        b = aggregate(RunResult("p", "s2", [_record()]))
        avg = average_metrics([a, b], "p")
        assert avg.pairs_used == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metrics([], "p")


class TestEfficiencySeries:
    def test_windowing(self):
        records = [_record(iou=0.5, energy=1.0) for _ in range(10)]
        series = efficiency_series(records, window=5)
        assert len(series) == 2
        assert series[0] == pytest.approx(0.5)

    def test_zero_energy_window(self):
        records = [_record(iou=0.5, energy=0.0)]
        assert efficiency_series(records, window=5) == [0.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            efficiency_series([], window=0)

    def test_partial_final_window(self):
        records = [_record(iou=0.5, energy=1.0) for _ in range(7)]
        assert len(efficiency_series(records, window=5)) == 2
