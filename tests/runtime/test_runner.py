"""Tests for the policy runner."""

import pytest

from repro.baselines import SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, TraceCache, run_policy, run_policy_on_scenarios
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def trace(zoo):
    return ScenarioTrace.build(scenario_by_name("s3_indoor_close_wall").scaled(0.05), zoo)


class TestRunPolicy:
    def test_builds_fresh_soc_by_default(self, trace):
        result = run_policy(SingleModelPolicy("yolov7", "gpu"), trace)
        assert result.frame_count == trace.frame_count

    def test_reuses_and_resets_provided_soc(self, trace):
        soc = xavier_nx_with_oakd()
        soc.clock.advance(99.0)
        soc.meter.record_draw("VDD_GPU", 10, 10)
        run_policy(SingleModelPolicy("yolov7", "gpu"), trace, soc=soc)
        # The run reset the platform before starting; its clock reflects
        # only this run's activity.
        assert soc.clock.now < 99.0

    def test_engine_seed_controls_jitter(self, trace):
        a = run_policy(SingleModelPolicy("yolov7", "gpu"), trace, engine_seed=1)
        b = run_policy(SingleModelPolicy("yolov7", "gpu"), trace, engine_seed=2)
        assert a.records[1].latency_s != b.records[1].latency_s

    def test_run_result_names(self, trace):
        result = run_policy(SingleModelPolicy("yolov7", "gpu"), trace)
        assert result.scenario_name == trace.scenario.name
        assert result.policy_name == "single:yolov7@gpu"


class TestRunOnScenarios:
    def test_one_metrics_row_per_scenario(self, zoo):
        scenarios = [
            scenario_by_name("s3_indoor_close_wall").scaled(0.05),
            scenario_by_name("s4_indoor_clutter").scaled(0.05),
        ]
        metrics = run_policy_on_scenarios(
            SingleModelPolicy("yolov7", "gpu"), scenarios, zoo
        )
        assert len(metrics) == 2
        assert metrics[0].scenario_name != metrics[1].scenario_name

    def test_shared_cache_reused(self, zoo):
        scenarios = [scenario_by_name("s3_indoor_close_wall").scaled(0.05)]
        cache = TraceCache(zoo)
        run_policy_on_scenarios(SingleModelPolicy("yolov7", "gpu"), scenarios, zoo, cache=cache)
        assert len(cache) == 1
        run_policy_on_scenarios(SingleModelPolicy("yolov7-tiny", "gpu"), scenarios, zoo, cache=cache)
        assert len(cache) == 1

    def test_forwards_custom_soc_instance(self, zoo):
        # Regression: sweeps used to ignore a caller's SoC and always run
        # on a fresh default platform.
        scenarios = [scenario_by_name("s3_indoor_close_wall").scaled(0.05)]
        soc = xavier_nx_with_oakd()
        assert soc.clock.now == 0.0
        run_policy_on_scenarios(SingleModelPolicy("yolov7", "gpu"), scenarios, zoo, soc=soc)
        assert soc.clock.now > 0.0, "provided platform was never used"

    def test_forwards_soc_factory(self, zoo):
        scenarios = [scenario_by_name("s3_indoor_close_wall").scaled(0.05)]
        built = []

        def factory():
            soc = xavier_nx_with_oakd()
            built.append(soc)
            return soc

        run_policy_on_scenarios(SingleModelPolicy("yolov7", "gpu"), scenarios, zoo, soc=factory)
        assert len(built) == len(scenarios)
        assert all(soc.clock.now > 0.0 for soc in built)
