"""Tests for per-segment metric breakdown."""

import pytest

from repro.baselines import SingleModelPolicy
from repro.core import ShiftPipeline
from repro.characterization import characterize
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, run_policy, segment_metrics
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def trace():
    return ScenarioTrace.build(
        scenario_by_name("s1_multi_background_varying_distance").scaled(0.1),
        default_zoo(),
    )


@pytest.fixture(scope="module")
def result(trace):
    return run_policy(SingleModelPolicy("yolov7", "gpu"), trace)


class TestSegmentMetrics:
    def test_one_entry_per_segment_in_order(self, trace, result):
        breakdown = segment_metrics(result, trace.frames)
        assert [s.segment for s in breakdown] == [
            "launch_close", "climb_easy", "treeline_far", "forest_deep", "return_close",
        ]

    def test_frame_counts_sum(self, trace, result):
        breakdown = segment_metrics(result, trace.frames)
        assert sum(s.frames for s in breakdown) == trace.frame_count

    def test_single_model_shares(self, trace, result):
        for segment in segment_metrics(result, trace.frames):
            assert segment.model_shares == {"yolov7": 1.0}
            assert segment.dominant_model() == "yolov7"

    def test_hard_segments_lower_iou(self, trace, result):
        breakdown = {s.segment: s for s in segment_metrics(result, trace.frames)}
        assert breakdown["climb_easy"].mean_iou > breakdown["forest_deep"].mean_iou

    def test_mismatched_lengths_rejected(self, trace, result):
        with pytest.raises(ValueError):
            segment_metrics(result, trace.frames[:-1])

    def test_shift_mixes_models_across_segments(self, trace):
        bundle = characterize(
            default_zoo(), xavier_nx_with_oakd(), validation_size=150, perf_repeats=3
        )
        shift_result = run_policy(ShiftPipeline(bundle), trace)
        breakdown = segment_metrics(shift_result, trace.frames)
        dominant = {s.segment: s.dominant_model() for s in breakdown}
        # The easy climb runs a cheaper model than at least one segment.
        assert len(set(dominant.values())) >= 2 or any(
            len(s.model_shares) > 1 for s in breakdown
        )

    def test_shares_sum_to_one(self, trace, result):
        for segment in segment_metrics(result, trace.frames):
            assert sum(segment.model_shares.values()) == pytest.approx(1.0)
