"""Fast-run tier: engine equivalence, run-store reuse, counters.

The contract under test is the PR's headline: ``fast=True`` changes
nothing but wall-clock, and a run-store-backed runner never recomputes
what it can reload — across policies, scenarios, process pools, and
repeat invocations.
"""

import pytest

from repro.baselines import MarlinPolicy, SingleModelPolicy, oracle_energy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import (
    ExperimentRunner,
    RunStore,
    ScenarioTrace,
    TraceStore,
    run_policy,
)
from repro.runtime.policy import Policy
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenarios():
    return [
        scenario_by_name("s3_indoor_close_wall").scaled(0.05),
        scenario_by_name("s4_indoor_clutter").scaled(0.05),
    ]


@pytest.fixture(scope="module")
def trace(scenarios, zoo):
    return ScenarioTrace.build(scenarios[0], zoo)


class TestFastRunEquality:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SingleModelPolicy("yolov7-tiny", "gpu"),
            lambda: MarlinPolicy("yolov7"),
            lambda: oracle_energy(),
        ],
        ids=["single", "marlin", "oracle"],
    )
    def test_fast_records_equal_reference(self, trace, factory):
        reference = run_policy(factory(), trace, fast=False)
        fast = run_policy(factory(), trace, fast=True)
        assert fast.records == reference.records

    def test_fast_flag_honours_engine_seed(self, trace):
        a = run_policy(SingleModelPolicy("yolov7"), trace, engine_seed=1, fast=True)
        b = run_policy(SingleModelPolicy("yolov7"), trace, engine_seed=2, fast=True)
        assert a.records != b.records


class TestRunStoreBackedRunner:
    def test_warm_sweep_runs_nothing_and_matches(self, zoo, scenarios, tmp_path):
        policies = [MarlinPolicy("yolov7"), SingleModelPolicy("yolov7-tiny")]
        cold_runner = ExperimentRunner(
            zoo, store=TraceStore(tmp_path / "traces"), run_store=RunStore(tmp_path / "runs")
        )
        cold = cold_runner.sweep(policies, scenarios)
        assert cold_runner.runs_executed == len(policies) * len(scenarios)
        assert cold_runner.run_store_hits == 0

        warm_runner = ExperimentRunner(
            zoo, store=TraceStore(tmp_path / "traces"), run_store=RunStore(tmp_path / "runs")
        )
        warm = warm_runner.sweep(policies, scenarios)
        assert warm == cold
        assert warm_runner.runs_executed == 0
        assert warm_runner.run_store_hits == len(policies) * len(scenarios)
        # A fully warm sweep never touches the trace tier at all.
        assert warm_runner.cache.builds == 0
        assert len(warm_runner.cache) == 0

    def test_warm_sweep_matches_scalar_reference(self, zoo, scenarios, tmp_path):
        policies = [SingleModelPolicy("yolov7-tiny")]
        store_runner = ExperimentRunner(zoo, run_store=RunStore(tmp_path / "runs"))
        stored = store_runner.sweep(policies, scenarios)
        reference = ExperimentRunner(zoo, fast=False).sweep(policies, scenarios)
        assert stored == reference
        rewarmed = ExperimentRunner(zoo, run_store=RunStore(tmp_path / "runs"))
        assert rewarmed.sweep(policies, scenarios) == reference

    def test_run_returns_full_records_from_store(self, zoo, scenarios, tmp_path):
        runner = ExperimentRunner(zoo, run_store=RunStore(tmp_path))
        policy = SingleModelPolicy("yolov7-tiny")
        first = runner.run(policy, scenarios[0])
        again = runner.run(policy, scenarios[0])
        assert runner.run_store_hits == 1
        assert again.records == first.records

    def test_seed_change_invalidates(self, zoo, scenarios, tmp_path):
        policy = SingleModelPolicy("yolov7-tiny")
        a = ExperimentRunner(zoo, run_store=RunStore(tmp_path), engine_seed=1)
        a.run(policy, scenarios[0])
        b = ExperimentRunner(zoo, run_store=RunStore(tmp_path), engine_seed=2)
        b.run(policy, scenarios[0])
        assert b.run_store_hits == 0 and b.runs_executed == 1

    def test_unfingerprinted_policy_bypasses_store(self, zoo, scenarios, tmp_path):
        class Anonymous(Policy):
            name = "anonymous"

            def begin(self, services):
                self._services = services

            def step(self, frame):
                outcome = self._services.trace.outcome("yolov7-tiny", frame.index)
                inference = self._services.engine.run_inference(
                    "yolov7-tiny", self._services.soc.accelerator("gpu")
                )
                from repro.runtime.records import FrameRecord

                return FrameRecord(
                    frame_index=frame.index,
                    model_name="yolov7-tiny",
                    accelerator_name="gpu",
                    box=outcome.box,
                    confidence=outcome.confidence,
                    iou=outcome.iou,
                    ground_truth_present=frame.ground_truth is not None,
                    detected=outcome.detected,
                    latency_s=inference.latency_s,
                    inference_s=inference.latency_s,
                    stall_s=0.0,
                    overhead_s=0.0,
                    energy_j=inference.energy_j,
                    swap=False,
                    cold_load=False,
                )

        store = RunStore(tmp_path)
        runner = ExperimentRunner(zoo, run_store=store)
        runner.run(Anonymous(), scenarios[0])
        runner.run(Anonymous(), scenarios[0])
        assert runner.runs_executed == 2  # executed twice — never cached
        assert len(store) == 0

    def test_duplicate_policy_names_keep_every_row(self, zoo, scenarios):
        # Two same-named policies: all executed rows come back,
        # concatenated in policy order (never silently dropped).
        policies = [SingleModelPolicy("yolov7-tiny"), SingleModelPolicy("yolov7-tiny")]
        runner = ExperimentRunner(zoo)
        result = runner.sweep(policies, scenarios)
        assert list(result) == ["single:yolov7-tiny@gpu"]
        rows = result["single:yolov7-tiny@gpu"]
        assert len(rows) == 2 * len(scenarios)
        assert rows[: len(scenarios)] == rows[len(scenarios):]

    def test_parallel_runs_persist_and_rehit(self, zoo, scenarios, tmp_path):
        policies = [SingleModelPolicy("yolov7-tiny"), SingleModelPolicy("yolov7")]
        parallel = ExperimentRunner(
            zoo,
            store=TraceStore(tmp_path / "traces"),
            run_store=RunStore(tmp_path / "runs"),
            max_workers=2,
        )
        fanned = parallel.sweep(policies, scenarios, parallel_runs=True)
        serial = ExperimentRunner(zoo, fast=False).sweep(policies, scenarios)
        assert fanned == serial
        # Workers persisted their runs; a fresh serial runner rehits them.
        warm = ExperimentRunner(
            zoo, store=TraceStore(tmp_path / "traces"), run_store=RunStore(tmp_path / "runs")
        )
        assert warm.sweep(policies, scenarios) == serial
        assert warm.runs_executed == 0
