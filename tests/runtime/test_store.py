"""Tests for the on-disk trace store."""

import dataclasses
import json

import pytest

from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import (
    ScenarioTrace,
    TraceCache,
    TraceSchemaError,
    TraceStore,
    trace_from_dict,
    trace_to_dict,
)


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


class TestRoundTrip:
    def test_dict_round_trip_is_identical(self, trace, scenario, zoo):
        payload = json.loads(json.dumps(trace_to_dict(trace, zoo)))
        restored = trace_from_dict(payload, scenario, zoo)
        assert restored.outcomes == trace.outcomes
        assert restored.frame_count == trace.frame_count
        assert restored.scenario == scenario

    def test_save_load_round_trip(self, trace, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        assert path.exists()
        assert len(store) == 1
        assert (scenario, zoo) in store
        loaded = store.load(scenario, zoo)
        assert loaded is not None
        assert loaded.outcomes == trace.outcomes

    def test_loaded_frames_match_fresh_render(self, trace, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        store.save(trace, zoo)
        loaded = store.load(scenario, zoo)
        assert [f.scene for f in loaded.frames] == [f.scene for f in trace.frames]

    def test_load_is_lazy_until_frames_are_read(self, trace, scenario, zoo, tmp_path):
        # Outcome-only consumers must never pay for rendering on reload.
        store = TraceStore(tmp_path)
        store.save(trace, zoo)
        loaded = store.load(scenario, zoo)
        assert not loaded.frames_materialized
        assert loaded.frame_count == scenario.total_frames
        assert loaded.outcome(trace.model_names()[0], 0) == trace.outcomes[trace.model_names()[0]][0]
        assert not loaded.frames_materialized  # outcomes never touched pixels
        loaded.frames  # noqa: B018 - materialize on demand
        assert loaded.frames_materialized

    def test_missing_returns_none(self, scenario, zoo, tmp_path):
        assert TraceStore(tmp_path).load(scenario, zoo) is None


class TestValidation:
    def test_wrong_schema_version_fails_loudly(self, trace, scenario, zoo, tmp_path):
        # JSON writer: the test tampers with the payload via a text edit.
        store = TraceStore(tmp_path, write_format="json")
        path = store.save(trace, zoo)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceSchemaError, match="schema"):
            store.load(scenario, zoo)

    def test_scenario_fingerprint_mismatch_fails(self, trace, scenario, zoo):
        payload = trace_to_dict(trace, zoo)
        other = dataclasses.replace(scenario, seed=scenario.seed + 1)
        with pytest.raises(TraceSchemaError, match="different scenario"):
            trace_from_dict(payload, other, zoo)

    def test_zoo_fingerprint_mismatch_fails(self, trace, scenario, zoo):
        payload = trace_to_dict(trace, zoo)
        smaller = default_zoo()
        smaller.remove("yolov7")
        with pytest.raises(TraceSchemaError, match="zoo"):
            trace_from_dict(payload, scenario, smaller)

    def test_malformed_rows_fail(self, trace, scenario, zoo):
        payload = trace_to_dict(trace, zoo)
        payload["outcomes"]["yolov7"][0] = ["not", "a", "row"]
        with pytest.raises(TraceSchemaError, match="malformed"):
            trace_from_dict(payload, scenario, zoo)


class TestStoreBackedCache:
    def test_second_cache_reuses_persisted_trace(self, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        first = TraceCache(zoo, store=store)
        built = first.get(scenario)
        assert first.builds == 1

        # A fresh process would see exactly this: new cache, same store.
        second = TraceCache(zoo, store=store)
        loaded = second.get(scenario)
        assert second.builds == 0, "persisted trace should make rebuilds unnecessary"
        assert loaded.outcomes == built.outcomes

    def test_store_get_builds_once(self, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        a = store.get(scenario, zoo)
        assert len(store) == 1
        b = store.get(scenario, zoo)
        assert a.outcomes == b.outcomes

    def test_different_zoo_gets_its_own_entry(self, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        store.get(scenario, zoo)
        smaller = default_zoo()
        smaller.remove("yolov7")
        trace = store.get(scenario, smaller)
        assert len(store) == 2
        assert "yolov7" not in trace.model_names()

    def test_clear(self, scenario, zoo, tmp_path):
        store = TraceStore(tmp_path)
        store.get(scenario, zoo)
        assert store.clear() == 1
        assert len(store) == 0
