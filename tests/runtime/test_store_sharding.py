"""Sharded-store subsystem tests: layout, locks, crashes, corruption.

The service tier points many worker threads — and CI many processes — at
one TraceStore/RunStore pair, so the stores' concurrency story has to be
*proven*, not assumed:

* entries land in fingerprint-prefix shards with a per-shard index;
* pre-sharding flat stores migrate in place on open;
* parallel writers of the same key leave exactly one valid entry;
* a writer killed mid-write (stale temp file) is cleaned on next open and
  its leftovers are never served as hits;
* an unreadable entry behaves exactly like a missing one (a miss), is
  counted in ``corrupt_entries``, and is quarantined.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.baselines import SingleModelPolicy
from repro.data import scenario_by_name
from repro.models import default_zoo
from repro.runtime import RunKey, RunStore, ScenarioTrace, TraceStore, run_policy
from repro.runtime import shards
from repro.runtime.runstore import RUN_ALGORITHM_VERSION
from repro.runtime.store import ALGORITHM_VERSION
from repro.sim import xavier_nx_with_oakd


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("s3_indoor_close_wall").scaled(0.05)


@pytest.fixture(scope="module")
def trace(scenario, zoo):
    return ScenarioTrace.build(scenario, zoo)


@pytest.fixture(scope="module")
def policy():
    return SingleModelPolicy("yolov7-tiny", "gpu")


@pytest.fixture(scope="module")
def result(policy, trace):
    return run_policy(policy, trace)


@pytest.fixture(scope="module")
def key(policy, scenario, zoo):
    return RunKey(
        policy_name=policy.name,
        policy_fingerprint=policy.fingerprint(),
        scenario_fingerprint=scenario.fingerprint(),
        zoo_fingerprint=zoo.fingerprint(),
        soc_fingerprint=xavier_nx_with_oakd().fingerprint(),
        engine_seed=1234,
    )


class TestShardLayout:
    def test_trace_entry_lands_in_fingerprint_shard(self, tmp_path, trace, scenario, zoo):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        assert path.parent == tmp_path / scenario.fingerprint()[:2]
        assert path == store.path_for(scenario, zoo)
        assert store.load(scenario, zoo).outcomes == trace.outcomes

    def test_run_entry_lands_in_digest_shard(self, tmp_path, result, key):
        store = RunStore(tmp_path)
        path = store.save(result, key)
        assert path.parent == tmp_path / key.digest()[:2]
        assert store.load(key).records == result.records

    def test_shard_index_records_identity(self, tmp_path, trace, scenario, zoo):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        entries = shards.read_index(path.parent)
        assert path.name in entries
        meta = entries[path.name]
        assert meta["scenario_fingerprint"] == scenario.fingerprint()
        assert meta["zoo_fingerprint"] == zoo.fingerprint()
        assert meta["algorithm_version"] == ALGORITHM_VERSION

    def test_audit_clean_store(self, tmp_path, trace, zoo, result, key):
        tstore = TraceStore(tmp_path / "t")
        tstore.save(trace, zoo)
        rstore = RunStore(tmp_path / "r")
        rstore.save(result, key)
        for store in (tstore, rstore):
            checked, problems = store.audit()
            assert checked == 1
            assert problems == []

    def test_audit_flags_unindexed_and_missing(self, tmp_path, trace, scenario, zoo):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        stray = path.with_name("trace-v1-" + "0" * 16 + "-" + "0" * 12 + ".json")
        stray.write_text("{}", encoding="utf-8")
        checked, problems = store.audit()
        assert any("not indexed" in p for p in problems)
        stray.unlink()
        path.unlink()  # indexed but gone
        checked, problems = store.audit()
        assert any("missing on disk" in p for p in problems)

    def test_len_contains_clear_over_shards(self, tmp_path, trace, scenario, zoo):
        store = TraceStore(tmp_path)
        store.save(trace, zoo)
        smaller = default_zoo()
        smaller.remove("yolov7")
        store.save(ScenarioTrace.build(scenario, smaller), smaller)
        assert len(store) == 2
        assert (scenario, zoo) in store
        assert store.clear() == 2
        assert len(store) == 0
        # clear() also scrubbed the shard indexes, not just the files.
        checked, problems = store.audit()
        assert checked == 0 and problems == []


class TestLegacyMigration:
    def _flat_trace_file(self, root, trace, zoo, scenario):
        from repro.runtime.store import trace_to_dict

        name = (
            f"trace-v{ALGORITHM_VERSION}-{scenario.fingerprint()[:16]}"
            f"-{zoo.fingerprint()[:12]}.json"
        )
        path = root / name
        path.write_text(json.dumps(trace_to_dict(trace, zoo)), encoding="utf-8")
        return path

    def test_flat_trace_store_migrates_on_open(self, tmp_path, trace, scenario, zoo):
        flat = self._flat_trace_file(tmp_path, trace, zoo, scenario)
        store = TraceStore(tmp_path)
        assert not flat.exists(), "legacy flat entry must move into its shard"
        assert store.load(scenario, zoo).outcomes == trace.outcomes
        assert store.audit()[1] == []

    def test_flat_run_store_migrates_on_open(self, tmp_path, result, key):
        from repro.runtime.runstore import run_to_dict

        name = f"run-v{RUN_ALGORITHM_VERSION}-{key.digest()[:32]}.json"
        (tmp_path / name).write_text(json.dumps(run_to_dict(result, key)), encoding="utf-8")
        store = RunStore(tmp_path)
        assert not (tmp_path / name).exists()
        assert store.load(key).records == result.records

    def test_corrupt_flat_entry_is_removed_and_counted(self, tmp_path, scenario, zoo):
        name = (
            f"trace-v{ALGORITHM_VERSION}-{scenario.fingerprint()[:16]}"
            f"-{zoo.fingerprint()[:12]}.json"
        )
        (tmp_path / name).write_text("{truncated", encoding="utf-8")
        store = TraceStore(tmp_path)
        assert store.corrupt_entries == 1
        assert not (tmp_path / name).exists()
        assert store.load(scenario, zoo) is None  # a miss, not an error


class TestCrashConsistency:
    def test_stale_temps_cleaned_on_open(self, tmp_path, trace, scenario, zoo):
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        # Simulate a writer killed mid-write: temp files at both layers.
        (path.parent / (path.name + ".tmp99999.1")).write_text("{half a wri", encoding="utf-8")
        (tmp_path / "trace-v1-dead.json.tmp4242").write_text("{", encoding="utf-8")
        reopened = TraceStore(tmp_path)
        assert reopened.stale_temps_cleaned == 2
        assert not list(tmp_path.rglob("*.tmp*"))
        # The complete entry survived and still serves hits.
        assert reopened.load(scenario, zoo).outcomes == trace.outcomes

    def test_temp_files_are_never_served_as_hits(self, tmp_path, scenario, zoo):
        # Even *before* cleanup runs, a leftover temp can't satisfy a
        # lookup: loads only probe the final entry name.
        store = TraceStore(tmp_path)
        target = store.path_for(scenario, zoo)
        target.parent.mkdir(parents=True, exist_ok=True)
        (target.parent / (target.name + ".tmp1.1")).write_text("{torn", encoding="utf-8")
        assert store.load(scenario, zoo) is None

    def test_unreadable_trace_entry_is_counted_miss_and_rebuildable(
        self, tmp_path, trace, scenario, zoo
    ):
        # Regression for the miss-accounting unification: TraceStore used
        # to raise on unreadable entries where RunStore missed; both now
        # miss, count, and quarantine identically.
        store = TraceStore(tmp_path)
        path = store.save(trace, zoo)
        path.write_text("{torn mid-wri", encoding="utf-8")
        assert store.load(scenario, zoo) is None
        assert store.corrupt_entries == 1
        assert not path.exists()
        rebuilt = store.get(scenario, zoo)  # miss -> rebuild -> persist
        assert rebuilt.outcomes == trace.outcomes
        assert store.load(scenario, zoo) is not None


class TestParallelWriters:
    def test_racing_thread_writers_leave_one_valid_entry(self, tmp_path, trace, zoo):
        store = TraceStore(tmp_path)

        def hammer(_):
            for _ in range(5):
                store.save(trace, zoo)
            return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(hammer, range(8)))
        assert len(store) == 1
        loaded = store.load(trace.scenario, zoo)
        assert loaded is not None and loaded.outcomes == trace.outcomes
        assert not list(tmp_path.rglob("*.tmp*"))
        checked, problems = store.audit()
        assert checked == 1 and problems == []

    def test_racing_run_writers_keep_index_consistent(self, tmp_path, result, key):
        store = RunStore(tmp_path)

        def hammer(_):
            for _ in range(5):
                store.save(result, key)
            return store.load(key) is not None

        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(hammer, range(6)))
        assert len(store) == 1
        assert store.corrupt_entries == 0
        checked, problems = store.audit()
        assert checked == 1 and problems == []
