"""Fault-injection harness tests: plans, hooks, and the full sweep.

The harness itself is load-bearing (CI trusts its verdicts), so its
bookkeeping is pinned here: plan serialization, deterministic event
lookup, outcome failure taxonomy, and one real seeded sweep whose
coverage contract (kill + torn + stall all fired) must hold.
"""

import pytest

from repro.data import ScenarioMatrix
from repro.verify import (
    FAULT_KINDS,
    FaultEvent,
    FaultOutcome,
    FaultPlan,
    fault_plan_for_check,
    run_fault_sweep,
)

TINY = ScenarioMatrix(
    name="ft",
    compositions=(("loiter",),),
    regimes=("day",),
    seeds=(2,),
    frame_budgets=(16,),
)


class TestPlans:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("w0", 0, "meteor-strike")
        with pytest.raises(ValueError):
            FaultEvent("w0", -1, "kill")

    def test_plan_roundtrips_through_json(self, tmp_path):
        plan = FaultPlan(
            events=(FaultEvent("w0", 0, "kill"), FaultEvent("w1", 2, "slow", 0.25)),
            required=("kill",),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan

    def test_events_for_matches_worker_and_claim(self):
        plan = FaultPlan(events=(FaultEvent("w0", 0, "kill"),
                                 FaultEvent("w0", 1, "stall"),
                                 FaultEvent("w1", 0, "torn")))
        assert [e.kind for e in plan.events_for("w0", 0)] == ["kill"]
        assert [e.kind for e in plan.events_for("w0", 1)] == ["stall"]
        assert [e.kind for e in plan.events_for("w1", 0)] == ["torn"]
        assert plan.events_for("w2", 0) == ()

    def test_check_plan_covers_the_contracted_kinds(self):
        plan = fault_plan_for_check()
        scheduled = {event.kind for event in plan.events}
        assert set(plan.required) <= scheduled
        assert {"kill", "torn", "stall"} <= set(plan.required)
        assert scheduled <= set(FAULT_KINDS)


class TestOutcomeTaxonomy:
    def base(self, **overrides) -> FaultOutcome:
        fields = dict(job_count=3, run_entries=3, expected_entries=3,
                      fired={"kill": 1, "torn": 1, "stall": 1},
                      required_kinds=("kill", "torn", "stall"),
                      corrupt_quarantined=1)
        fields.update(overrides)
        return FaultOutcome(**fields)

    def test_clean_outcome_passes(self):
        outcome = self.base()
        assert outcome.failures() == []
        assert outcome.passed

    def test_each_defect_is_named(self):
        assert "lost" in self.base(lost_jobs=["abc=pending"]).failures()[0]
        assert "dead" in self.base(dead_jobs=["abc"]).failures()[0]
        assert "entries" in self.base(run_entries=5).failures()[0]
        assert "diverge" in self.base(serial_mismatches=["x"]).failures()[0]
        assert "timed out" in self.base(timed_out=True).failures()[0].lower()
        missing = self.base(fired={"kill": 1})
        assert any("torn" in f for f in missing.failures())
        torn_no_quarantine = self.base(corrupt_quarantined=0)
        assert any("quarantine" in f for f in torn_no_quarantine.failures())
        assert "audit" in self.base(audit_problems=["drift"]).failures()[0]


class TestSweep:
    def test_seeded_sweep_survives_its_plan(self, tmp_path):
        [scenario] = TINY.scenarios()
        outcome = run_fault_sweep(
            [scenario], ["marlin-tiny", "single:yolov7-tiny@gpu"], tmp_path
        )
        assert outcome.passed, outcome.failures()
        assert outcome.workers_killed >= 2
        assert outcome.workers_spawned > outcome.workers_killed
        assert outcome.corrupt_quarantined >= 1
        assert {"kill", "torn", "stall"} <= {
            kind for kind, count in outcome.fired.items() if count
        }
        assert outcome.run_entries == outcome.expected_entries == 2
