"""Differential fuzz suite: every engine must agree on generated scenarios.

The core guarantee of the vectorized trace tier is bit-equality with the
scalar reference path; these tests extend that guarantee from the ten
hand-written flights to a 25-scenario grammar-generated matrix, and prove
the harness itself can *fail* (a harness that passes everything proves
nothing).  Seeded and stdlib-random only, sized for tier-1 time.
"""

import dataclasses
import json
import random

import pytest

from repro.data import ScenarioMatrix
from repro.models import default_zoo
from repro.runtime import ScenarioTrace, TraceStore
from repro.verify import (
    CHECKS,
    FuzzReport,
    check_fast_run_equivalence,
    check_run_invariants,
    check_store_roundtrip,
    check_trace_invariants,
    fuzz_scenarios,
    sample_matrix,
    verify_scenario,
)

# A compact grid over every family and regime; budgets stay small so the
# full differential suite over 25 scenarios fits in tier-1 time.
TEST_MATRIX = ScenarioMatrix(
    name="t25",
    compositions=(
        ("crossing",),
        ("loiter", "popup"),
        ("altitude_ramp", "crossing"),
        ("occlusion_dip", "loiter"),
        ("pan_burst", "altitude_ramp"),
        ("popup", "occlusion_dip", "pan_burst"),
    ),
    regimes=("day", "night", "fog", "indoor"),
    seeds=(11,),
    frame_budgets=(36, 54),
)


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def fuzz_report(zoo) -> FuzzReport:
    scenarios = sample_matrix(TEST_MATRIX, count=25, seed=4)
    assert len(scenarios) == 25
    return fuzz_scenarios(scenarios, zoo=zoo)


class TestGeneratedMatrixSuite:
    def test_every_scenario_passes_every_check(self, fuzz_report):
        failed = {
            r.scenario_name: [str(f) for f in r.failures()] for r in fuzz_report.failures()
        }
        assert fuzz_report.passed, f"differential disagreements: {failed}"

    def test_full_suite_ran(self, fuzz_report):
        assert fuzz_report.scenario_count == 25
        assert fuzz_report.check_count == 25 * len(CHECKS)
        for report in fuzz_report.reports:
            assert [r.check for r in report.results] == list(CHECKS)

    def test_sample_is_seed_stable(self):
        a = [s.name for s in sample_matrix(TEST_MATRIX, count=10, seed=9)]
        b = [s.name for s in sample_matrix(TEST_MATRIX, count=10, seed=9)]
        c = [s.name for s in sample_matrix(TEST_MATRIX, count=10, seed=10)]
        assert a == b
        assert a != c

    def test_sample_count_zero_selects_all(self):
        assert len(sample_matrix(TEST_MATRIX, count=0, seed=1)) == len(TEST_MATRIX)

    def test_random_scenario_passes_offline(self, zoo):
        # Property-style spot check: a freshly drawn recipe outside the
        # grid must satisfy the suite too (seeded stdlib randomness).
        from repro.data import ScenarioRecipe

        rng = random.Random(77)
        recipe = ScenarioRecipe(
            name="offgrid",
            families=tuple(rng.sample(["crossing", "popup", "pan_burst"], 2)),
            regime_name=rng.choice(["day", "night"]),
            base_seed=rng.randint(0, 2**31),
            frame_budget=40,
        )
        report = verify_scenario(recipe.build(), zoo=zoo)
        assert report.passed, [str(f) for f in report.failures()]


class TestHarnessDetectsViolations:
    """The suite must fail loudly when an engine actually disagrees."""

    @pytest.fixture(scope="class")
    def trace(self, zoo):
        scenario = TEST_MATRIX.scenarios()[0]
        return ScenarioTrace.build(scenario, zoo)

    def _tampered(self, trace, **changes):
        outcomes = {m: list(rows) for m, rows in trace.outcomes.items()}
        model = next(iter(outcomes))
        outcomes[model][0] = dataclasses.replace(outcomes[model][0], **changes)
        return ScenarioTrace(scenario=trace.scenario, frames=None, outcomes=outcomes)

    def test_confidence_bound_violation_detected(self, trace):
        result = check_trace_invariants(self._tampered(trace, confidence=1.5))
        assert not result.passed and "confidence" in result.detail

    def test_phantom_detection_detected(self, trace):
        result = check_trace_invariants(self._tampered(trace, detected=True, box=None))
        assert not result.passed

    def test_misaligned_outcomes_detected(self, trace):
        outcomes = {m: rows[:-1] for m, rows in trace.outcomes.items()}
        broken = ScenarioTrace(scenario=trace.scenario, frames=None, outcomes=outcomes)
        result = check_trace_invariants(broken)
        assert not result.passed and "outcomes" in result.detail

    def test_lossy_store_reload_detected(self, trace, zoo, tmp_path, monkeypatch):
        # A store whose reload drifts from what was saved must fail the
        # round-trip check; simulate the drift at the load boundary.
        tampered = self._tampered(trace, confidence=0.123456)
        monkeypatch.setattr(TraceStore, "load", lambda self, scenario, zoo: tampered)
        result = check_store_roundtrip(trace, zoo, store_root=tmp_path)
        assert not result.passed and "outcomes changed" in result.detail

    def test_store_corruption_fails_loudly(self, trace, zoo, tmp_path):
        # Real on-disk corruption surfaces as a TraceSchemaError from the
        # store's own validation, not as a silently wrong trace.
        from repro.runtime import TraceSchemaError

        # JSON writer: the test tampers with the payload via a text edit.
        store = TraceStore(tmp_path, write_format="json")
        path = store.save(trace, zoo)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["scenario_fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(TraceSchemaError):
            store.load(trace.scenario, zoo)

    def test_negative_energy_detected(self, trace):
        class NegativeEnergyPolicy:
            name = "negative-energy"

            def begin(self, services):
                self._trace = services.trace

            def step(self, frame):
                from repro.runtime import FrameRecord

                outcome = self._trace.outcome(self._trace.model_names()[0], frame.index)
                return FrameRecord(
                    frame_index=frame.index,
                    model_name=outcome.model_name,
                    accelerator_name="gpu",
                    box=outcome.box,
                    confidence=outcome.confidence,
                    iou=outcome.iou,
                    ground_truth_present=frame.ground_truth is not None,
                    detected=outcome.detected,
                    latency_s=0.01,
                    inference_s=0.01,
                    stall_s=0.0,
                    overhead_s=0.0,
                    energy_j=-1.0,
                    swap=False,
                    cold_load=False,
                )

        result = check_run_invariants(trace, policy_factory=NegativeEnergyPolicy)
        assert not result.passed and "energy" in result.detail

    def test_unknown_check_name_rejected(self, trace, zoo):
        with pytest.raises(ValueError, match="unknown checks"):
            verify_scenario(trace.scenario, zoo=zoo, checks=("render", "psychic"))

    def test_fastrun_divergence_detected(self, trace):
        # A policy whose records depend on the tier it runs under is
        # exactly the bug class the fastrun check exists for; the detail
        # must name the policy, frame, and differing fields.
        from repro.baselines import SingleModelPolicy

        class TierSensitivePolicy(SingleModelPolicy):
            def __init__(self, model_name):
                super().__init__(model_name)
                self.name = "tier-sensitive"

            def begin(self, services):
                super().begin(services)
                self._cheat = services.fast

            def step(self, frame):
                record = super().step(frame)
                if self._cheat:
                    import dataclasses

                    record = dataclasses.replace(record, latency_s=record.latency_s * 2)
                return record

        result = check_fast_run_equivalence(
            trace, policy_factories=[lambda: TierSensitivePolicy("yolov7-tiny")]
        )
        assert not result.passed
        assert "tier-sensitive" in result.detail
        assert "latency_s" in result.detail

    def test_fastrun_adapts_to_reduced_zoos(self, trace, zoo):
        # A trace built from a reduced zoo must still get a meaningful
        # fastrun check (over the models it has), not a KeyError.
        from repro.models import ModelZoo
        from repro.verify import default_fast_run_policy_factories

        small_zoo = ModelZoo([zoo.get("ssd-mobilenet-v2")])
        small_trace = ScenarioTrace.build(trace.scenario, small_zoo)
        factories = default_fast_run_policy_factories(small_trace.model_names())
        assert len(factories) == 1  # single-model fallback over the traced model
        result = check_fast_run_equivalence(small_trace)
        assert result.passed, result.detail

    def test_fastrun_passes_for_well_behaved_policies(self, trace):
        from repro.baselines import MarlinPolicy, SingleModelPolicy

        result = check_fast_run_equivalence(
            trace,
            policy_factories=[
                lambda: SingleModelPolicy("yolov7-tiny", "gpu"),
                lambda: MarlinPolicy("yolov7"),
            ],
        )
        assert result.passed, result.detail

    def test_service_divergence_detected(self, trace, zoo, monkeypatch):
        # A service whose runs are not bit-identical to the serial loop
        # (here: a skewed engine seed standing in for any concurrency
        # bug) must fail the service check, naming the differing fields.
        import repro.service.service as service_mod
        from repro.verify import check_service_equivalence

        real = service_mod.run_policy

        def skewed(policy, run_trace, soc=None, engine_seed=1234, fast=False):
            return real(policy, run_trace, soc=soc, engine_seed=engine_seed + 1, fast=fast)

        monkeypatch.setattr(service_mod, "run_policy", skewed)
        result = check_service_equivalence(trace, zoo)
        assert not result.passed
        assert "diverge" in result.detail

    def test_service_duplicate_execution_detected(self, trace, zoo, monkeypatch):
        # A dedup layer that stops deduplicating is a correctness bug for
        # the counters contract, even when results still agree.
        from repro.service.service import SweepService
        from repro.verify import check_service_equivalence

        original = SweepService._execute

        def double_counting(self, job):
            metrics = original(self, job)
            with self._state:
                self.runs_executed += 5  # simulate re-executions
            return metrics

        monkeypatch.setattr(SweepService, "_execute", double_counting)
        result = check_service_equivalence(trace, zoo)
        assert not result.passed
        assert "duplicate execution" in result.detail

    def test_service_check_passes_on_shared_trace(self, trace, zoo):
        from repro.verify import check_service_equivalence

        result = check_service_equivalence(trace, zoo)
        assert result.passed, result.detail
