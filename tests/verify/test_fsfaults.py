"""Filesystem fault-injection harness tests: plan, taxonomy, full sweep.

The sibling of :mod:`tests.verify.test_faults` for the disk-fault
harness.  CI trusts the ``fsfaults`` verdict, so the pieces behind it
are pinned independently: the fixed check plan's coverage contract
(capacity, torn, and lost-rename faults all scheduled, run entries
targeted by name), the outcome failure taxonomy (every contract clause
names its own defect), and one real seeded sweep that must survive its
plan end to end.
"""

import pytest

from repro.data import ScenarioMatrix
from repro.verify import (
    FsFaultOutcome,
    fs_fault_plan_for_check,
    run_fsfault_sweep,
)

TINY = ScenarioMatrix(
    name="fsft",
    compositions=(("loiter",),),
    regimes=("day",),
    seeds=(3,),
    frame_budgets=(16,),
)


class TestCheckPlan:
    def test_covers_the_contracted_fault_kinds(self):
        plan = fs_fault_plan_for_check()
        kinds = {event.kind for event in plan.events}
        # Capacity exhaustion (degraded mode), a transient error, and
        # both silent-corruption shapes must all be on the schedule.
        assert {"enospc", "eio", "partial_write", "lost_rename"} <= kinds

    def test_destructive_kinds_target_run_entries_only(self):
        # Tearing a *pending* job record is the easy case (the submitter
        # re-offers it); the check wants the hard one — a job marked done
        # whose committed effect is torn or missing.
        for event in fs_fault_plan_for_check().events:
            if event.kind in ("partial_write", "lost_rename"):
                assert event.match == "run-*"

    def test_enospc_burst_exhausts_a_whole_retry_budget(self):
        from repro.runtime.iolayer import RETRY_ATTEMPTS

        [burst] = [e for e in fs_fault_plan_for_check().events if e.kind == "enospc"]
        assert burst.count > RETRY_ATTEMPTS

    def test_plan_round_trips_through_disk(self, tmp_path):
        plan = fs_fault_plan_for_check()
        path = plan.save(tmp_path / "plan.json")
        from repro.runtime.iolayer import FsFaultPlan

        assert FsFaultPlan.load(path) == plan


class TestOutcomeTaxonomy:
    def base(self, **overrides) -> FsFaultOutcome:
        fields = dict(job_count=2, run_entries=2, expected_entries=2,
                      faults_fired=5, expect_torn=True, corrupt_quarantined=1)
        fields.update(overrides)
        return FsFaultOutcome(**fields)

    def test_clean_outcome_passes(self):
        outcome = self.base()
        assert outcome.failures() == []
        assert outcome.passed

    def test_each_defect_is_named(self):
        assert "lost" in self.base(lost_jobs=["abc=pending"]).failures()[0]
        assert "disk" in self.base(dead_jobs=["abc"]).failures()[0]
        assert "entries" in self.base(run_entries=5).failures()[0]
        assert "diverge" in self.base(serial_mismatches=["x"]).failures()[0]
        assert "timed out" in self.base(timed_out=True).failures()[0].lower()
        assert "never fired" in self.base(faults_fired=0).failures()[0]
        assert "degraded" in self.base(still_degraded=["runs"]).failures()[0]
        assert "quarantined" in self.base(corrupt_quarantined=0).failures()[0]
        assert "audit" in self.base(audit_problems=["drift"]).failures()[0]

    def test_quarantine_only_required_when_torn_faults_scheduled(self):
        enospc_only = self.base(expect_torn=False, corrupt_quarantined=0)
        assert enospc_only.passed


class TestSweep:
    def test_seeded_sweep_survives_its_plan(self, tmp_path):
        [scenario] = TINY.scenarios()
        outcome = run_fsfault_sweep(
            [scenario], ["marlin-tiny", "single:yolov7-tiny@gpu"], tmp_path
        )
        assert outcome.passed, outcome.failures()
        assert outcome.faults_fired >= 3
        assert outcome.io_errors >= 1
        assert outcome.run_entries == outcome.expected_entries == 2
        assert not outcome.still_degraded

    def test_sweep_without_faults_is_flagged_not_passed(self, tmp_path):
        from repro.runtime.iolayer import FsFaultPlan

        [scenario] = TINY.scenarios()
        outcome = run_fsfault_sweep(
            [scenario], ["single:yolov7-tiny@gpu"], tmp_path,
            plan=FsFaultPlan(events=()),
        )
        # A plan that never fires means the harness missed the seam —
        # that is a harness defect, and the outcome must say so.
        assert not outcome.passed
        assert any("never fired" in failure for failure in outcome.failures())
