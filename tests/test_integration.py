"""End-to-end integration tests: the paper's claims at reduced scale.

These run the full stack — characterization, confidence graph, scheduler,
loader, baselines — over shortened scenarios and assert the qualitative
results of §V hold.
"""

import pytest

from repro import (
    MarlinPolicy,
    ShiftConfig,
    ShiftPipeline,
    SingleModelPolicy,
    TraceCache,
    aggregate,
    average_metrics,
    characterize,
    default_zoo,
    evaluation_scenarios,
    oracle_accuracy,
    oracle_energy,
    oracle_latency,
    run_policy,
    xavier_nx_with_oakd,
)

SCALE = 0.12


@pytest.fixture(scope="module")
def world():
    zoo = default_zoo()
    soc = xavier_nx_with_oakd()
    bundle = characterize(zoo, soc, validation_size=250)
    cache = TraceCache(zoo)
    scenarios = [s.scaled(SCALE) for s in evaluation_scenarios()]
    traces = [cache.get(s) for s in scenarios]
    return zoo, bundle, traces


def _average(policy, traces, name):
    return average_metrics([aggregate(run_policy(policy, t)) for t in traces], name)


@pytest.fixture(scope="module")
def results(world):
    _zoo, bundle, traces = world
    return {
        "shift": _average(ShiftPipeline(bundle), traces, "shift"),
        "yolov7": _average(SingleModelPolicy("yolov7", "gpu"), traces, "yolov7"),
        "marlin": _average(MarlinPolicy("yolov7"), traces, "marlin"),
        "oracle_e": _average(oracle_energy(), traces, "oracle_e"),
        "oracle_a": _average(oracle_accuracy(), traces, "oracle_a"),
        "oracle_l": _average(oracle_latency(), traces, "oracle_l"),
    }


class TestHeadlineClaims:
    def test_energy_improvement_vs_gpu_single_model(self, results):
        ratio = results["yolov7"].mean_energy_j / results["shift"].mean_energy_j
        assert ratio > 3.0  # paper: up to 7.5x

    def test_latency_improvement(self, results):
        ratio = results["yolov7"].mean_latency_s / results["shift"].mean_latency_s
        assert ratio > 1.5  # paper: up to 2.8x

    def test_accuracy_within_a_few_percent(self, results):
        assert results["shift"].mean_iou > 0.85 * results["yolov7"].mean_iou
        assert results["shift"].success_rate > 0.85 * results["yolov7"].success_rate


class TestTableIIIShape:
    def test_shift_beats_marlin_energy(self, results):
        assert results["shift"].mean_energy_j < results["marlin"].mean_energy_j

    def test_oracle_a_best_iou(self, results):
        best = max(results.values(), key=lambda m: m.mean_iou)
        assert best is results["oracle_a"]

    def test_oracle_e_best_energy(self, results):
        cheapest = min(results.values(), key=lambda m: m.mean_energy_j)
        assert cheapest is results["oracle_e"]

    def test_oracles_bound_success(self, results):
        oracle_success = results["oracle_a"].success_rate
        for name in ("shift", "yolov7", "marlin"):
            assert results[name].success_rate <= oracle_success + 1e-9

    def test_shift_uses_heterogeneity(self, results):
        assert results["shift"].non_gpu_share > 0.3
        assert results["marlin"].non_gpu_share == 0.0

    def test_shift_swaps_less_than_oracles(self, results):
        assert 0 < results["shift"].swaps < results["oracle_e"].swaps
        assert results["oracle_a"].swaps >= results["oracle_e"].swaps

    def test_scheduler_overhead_under_2ms(self, results):
        assert results["shift"].mean_overhead_s < 0.002


class TestDeterminism:
    def test_full_pipeline_reproducible(self, world):
        _zoo, bundle, traces = world
        a = run_policy(ShiftPipeline(bundle), traces[0], engine_seed=99)
        b = run_policy(ShiftPipeline(bundle), traces[0], engine_seed=99)
        assert [r.pair for r in a.records] == [r.pair for r in b.records]
        assert sum(r.energy_j for r in a.records) == sum(r.energy_j for r in b.records)


class TestKnobs:
    def test_energy_knob_saves_energy(self, world):
        _zoo, bundle, traces = world
        frugal = ShiftPipeline(bundle, config=ShiftConfig(knob_energy=2.0, knob_latency=0.0))
        eager = ShiftPipeline(bundle, config=ShiftConfig(knob_energy=0.0, knob_latency=0.0))
        frugal_m = _average(frugal, traces[:2], "frugal")
        eager_m = _average(eager, traces[:2], "eager")
        assert frugal_m.mean_energy_j <= eager_m.mean_energy_j + 0.05
