"""Tests for scene state and the difficulty model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import DIFFICULTY_WEIGHTS, SceneState, approach_profile, difficulty_components, scene_difficulty
from repro.data.backgrounds import background


def _scene(**overrides):
    params = {
        "background": background("open_sky"),
        "background_name": "open_sky",
        "cx": 48.0,
        "cy": 48.0,
        "distance": 0.3,
        "speed": 0.0,
        "drift": 0.0,
        "visible": True,
        "frame_size": 96,
    }
    params.update(overrides)
    return SceneState(**params)


class TestSceneState:
    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            _scene(distance=1.5)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            _scene(speed=-1.0)

    def test_target_shrinks_with_distance(self):
        near = _scene(distance=0.0)
        far = _scene(distance=1.0)
        assert far.target_width < near.target_width
        assert far.target_width > 0

    def test_target_aspect_wider_than_tall(self):
        scene = _scene()
        assert scene.target_height < scene.target_width

    def test_ground_truth_box_centered(self):
        box = _scene().ground_truth_box()
        assert box is not None
        cx, cy = box.center
        assert abs(cx - 48) < 1e-9 and abs(cy - 48) < 1e-9

    def test_invisible_target_has_no_box(self):
        assert _scene(visible=False).ground_truth_box() is None

    def test_target_outside_frame_has_no_box(self):
        assert _scene(cx=-50.0, cy=-50.0).ground_truth_box() is None

    def test_edge_target_box_clipped(self):
        box = _scene(cx=1.0).ground_truth_box()
        assert box is not None
        assert box.x1 >= 0.0

    def test_with_position(self):
        moved = _scene().with_position(10, 20)
        assert moved.cx == 10 and moved.cy == 20


class TestDifficulty:
    def test_weights_sum_to_one(self):
        assert abs(sum(DIFFICULTY_WEIGHTS.values()) - 1.0) < 1e-9

    def test_range(self):
        assert 0.0 <= scene_difficulty(_scene()) <= 1.0

    def test_invisible_is_maximal(self):
        assert scene_difficulty(_scene(visible=False)) == 1.0

    def test_monotonic_in_distance(self):
        values = [scene_difficulty(_scene(distance=d)) for d in (0.0, 0.3, 0.6, 0.9)]
        assert values == sorted(values)

    def test_cluttered_background_harder(self):
        easy = scene_difficulty(_scene())
        hard = scene_difficulty(
            _scene(background=background("forest_shade"), background_name="forest_shade")
        )
        assert hard > easy

    def test_motion_increases_difficulty(self):
        still = scene_difficulty(_scene(speed=0.0))
        fast = scene_difficulty(_scene(speed=6.0))
        assert fast > still

    def test_edge_position_harder(self):
        center = scene_difficulty(_scene(cx=48.0))
        edge = scene_difficulty(_scene(cx=92.0))
        assert edge > center

    def test_components_in_range(self):
        for name, value in difficulty_components(_scene()).items():
            assert 0.0 <= value <= 1.0, name

    def test_components_match_weight_keys(self):
        assert set(difficulty_components(_scene())) == set(DIFFICULTY_WEIGHTS)

    @given(
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 8.0, allow_nan=False),
        st.sampled_from(["open_sky", "tree_line", "indoor_wall", "urban_facade"]),
    )
    @settings(max_examples=80)
    def test_difficulty_always_in_unit_interval(self, distance, speed, name):
        scene = _scene(
            distance=distance, speed=speed, background=background(name), background_name=name
        )
        assert 0.0 <= scene_difficulty(scene) <= 1.0


class TestApproachProfile:
    def test_endpoints(self):
        profile = approach_profile(0.2, 0.8, 11)
        assert profile[0] == pytest.approx(0.2)
        assert profile[-1] == pytest.approx(0.8)

    def test_monotonic(self):
        profile = approach_profile(0.1, 0.9, 50)
        assert profile == sorted(profile)

    def test_descending(self):
        profile = approach_profile(0.9, 0.1, 50)
        assert profile == sorted(profile, reverse=True)

    def test_single_frame(self):
        assert approach_profile(0.2, 0.8, 1) == [0.8]

    def test_empty(self):
        assert approach_profile(0.2, 0.8, 0) == []
