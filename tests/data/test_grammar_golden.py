"""Golden-fingerprint regression for the generated scenario library.

The grammar's contract is that a generated scenario's *content* is a pure,
process-stable function of its recipe: traces persisted in stores, CI fuzz
baselines, and cross-process sweeps all key on these fingerprints.  This
module freezes a 10-recipe sample spanning every composition and regime of
the default matrix; a grammar refactor that reshuffles parameter streams,
seed derivation, name layout, or family shapes will change these digests
and must update the goldens explicitly.  (Persisted traces for the old
identities then become unreachable store entries — the safe failure mode.)
"""

from repro.data import default_matrix, scenario_by_name

# Frozen (name -> sha256 content fingerprint) sample, one cell per
# composition x regime spread.  Do not regenerate casually: a diff here
# means every previously generated scenario changed identity.
#
# Regenerated 2026-07 (service-tier PR): seed derivation moved from the
# recipe *display name* to ScenarioRecipe.content_key() so renaming a
# recipe can never reshuffle its content — the metamorphic suite
# (tests/test_metamorphic.py) now pins that property.  Old-identity
# traces in persistent stores became unreachable entries (the safe
# failure mode).
GOLDEN_FINGERPRINTS = {
    "g_dm_s001_crx_day_96f": "d3bbd46f6bd74a1e5814ae9b4fa3a7910391326a760f816cf74c4663cea765c2",
    "g_dm_s002_crx_night_180f": "25badaefdacbf7f9fbb4c66b7f13af1f52a4bd564e6aaba42e2315c85e914a6b",
    "g_dm_s001_loi-pop_fog_300f": "d83a9ebc60de5af41edcf23172230b7ecee4aaa247a458299fa7293ef792b395",
    "g_dm_s002_loi-pop_indoor_96f": "9382b8f6b7218ef1a2369967495d5e22f075086caec7d431c1e57a75a613b000",
    "g_dm_s001_alt-crx_day_300f": "e837b4bded3d95c43f0308855e9630645a33a900f7dc5d39cda9e5a72d0656a9",
    "g_dm_s002_alt-crx_fog_96f": "7d33b5e232f547e35f4afcf57651558e927f2f25c327261a277ff30595baffa3",
    "g_dm_s001_occ-loi_night_300f": "8ad62e82709aeacb2d5aa01d0d1ea5da191afbf2995f1065f3c869213d20a207",
    "g_dm_s002_occ-loi_indoor_180f": "0d03153b5247a38ea69faf90c56b2e5a0ddf4e7436d4e509def1e9ee40c318c5",
    "g_dm_s001_pan-alt_day_180f": "7087e50336df0f445dab2029769fa9d71af96f01c415c01b585559fc6acf8983",
    "g_dm_s002_pop-occ-pan_night_96f": "ceec2c7c2c80fde1c6f5b60aafa93dfe7166a46f26816e1df3764e84ce2cb611",
}


def test_frozen_sample_fingerprints_unchanged():
    drift = {}
    for name, expected in GOLDEN_FINGERPRINTS.items():
        actual = scenario_by_name(name).fingerprint()
        if actual != expected:
            drift[name] = actual
    assert not drift, (
        "generated scenario identities drifted (grammar refactors must not "
        f"silently reshuffle scenarios): {drift}"
    )


def test_frozen_sample_names_still_generated():
    names = {s.name for s in default_matrix().scenarios()}
    missing = set(GOLDEN_FINGERPRINTS) - names
    assert not missing, f"frozen sample names no longer generated: {missing}"


def test_frozen_sample_spans_the_grid():
    # The sample must keep covering every composition and regime of the
    # default matrix, or the regression loses its reach.
    matrix = default_matrix()
    tags = {"-".join(part for part in name.split("_")[3:-2]) for name in GOLDEN_FINGERPRINTS}
    assert len(tags) == len(matrix.compositions)
    regimes = {name.split("_")[-2] for name in GOLDEN_FINGERPRINTS}
    assert regimes == set(matrix.regimes)
