"""Golden-fingerprint regression for the generated scenario library.

The grammar's contract is that a generated scenario's *content* is a pure,
process-stable function of its recipe: traces persisted in stores, CI fuzz
baselines, and cross-process sweeps all key on these fingerprints.  This
module freezes a 10-recipe sample spanning every composition and regime of
the default matrix; a grammar refactor that reshuffles parameter streams,
seed derivation, name layout, or family shapes will change these digests
and must update the goldens explicitly.  (Persisted traces for the old
identities then become unreachable store entries — the safe failure mode.)
"""

from repro.data import default_matrix, scenario_by_name

# Frozen (name -> sha256 content fingerprint) sample, one cell per
# composition x regime spread, committed 2026-07.  Do not regenerate
# casually: a diff here means every previously generated scenario changed
# identity.
GOLDEN_FINGERPRINTS = {
    "g_dm_s001_crx_day_96f": "f79cf8758928612517026f2c55dcc53c6b9e52e665967d68a65a5381eea17cd1",
    "g_dm_s002_crx_night_180f": "c6576e038f09d829db1f44b16eab91ac583c7e54fab1acfc0d401d62381f572e",
    "g_dm_s001_loi-pop_fog_300f": "af14ca0b4f88f9ad27083b39258b0e06de6987eb6854b1ea35bff0a7c50f0f54",
    "g_dm_s002_loi-pop_indoor_96f": "12e9ffef14c225000ead40690cbc01f4d347eb779c22906af82ac541157a1c03",
    "g_dm_s001_alt-crx_day_300f": "468eab480720dd33ed31f751e1af324c6204bf8daa226395269296814f667d42",
    "g_dm_s002_alt-crx_fog_96f": "ad2717a3e4c6fa330c26c6e382481d6f1b1b6589d767f04d14f157658ddf4487",
    "g_dm_s001_occ-loi_night_300f": "78fce8a0165f55a875ac29ccbb954222a25340d89f5004faa41c38ff0a1bc1e3",
    "g_dm_s002_occ-loi_indoor_180f": "2dae13199d0f00d307f04dc5c06ce297d14157237061737ccb187d9ef25b6631",
    "g_dm_s001_pan-alt_day_180f": "ce6ad5353f7356620e093e150512bb5009003caef4644037a8796a0c8c715987",
    "g_dm_s002_pop-occ-pan_night_96f": "5a45738427f699942d1f6b0d742fb6c9fc89e6cc37ef40d1b5dabfac8a287fc8",
}


def test_frozen_sample_fingerprints_unchanged():
    drift = {}
    for name, expected in GOLDEN_FINGERPRINTS.items():
        actual = scenario_by_name(name).fingerprint()
        if actual != expected:
            drift[name] = actual
    assert not drift, (
        "generated scenario identities drifted (grammar refactors must not "
        f"silently reshuffle scenarios): {drift}"
    )


def test_frozen_sample_names_still_generated():
    names = {s.name for s in default_matrix().scenarios()}
    missing = set(GOLDEN_FINGERPRINTS) - names
    assert not missing, f"frozen sample names no longer generated: {missing}"


def test_frozen_sample_spans_the_grid():
    # The sample must keep covering every composition and regime of the
    # default matrix, or the regression loses its reach.
    matrix = default_matrix()
    tags = {"-".join(part for part in name.split("_")[3:-2]) for name in GOLDEN_FINGERPRINTS}
    assert len(tags) == len(matrix.compositions)
    regimes = {name.split("_")[-2] for name in GOLDEN_FINGERPRINTS}
    assert regimes == set(matrix.regimes)
