"""Tests for scenario definitions and motion paths."""

import dataclasses

import pytest

from repro.data import (
    PATHS,
    Scenario,
    Segment,
    all_scenarios,
    evaluation_scenarios,
    extended_scenarios,
    fog_crossing_scenario,
    long_endurance_patrol_scenario,
    multi_pan_survey_scenario,
    night_watch_scenario,
    path_position,
    register_scenario,
    registered_scenarios,
    scenario_by_name,
    scenario_names,
)


def _segment(**overrides):
    params = {
        "name": "seg",
        "frames": 10,
        "background_name": "open_sky",
        "distance_start": 0.2,
        "distance_end": 0.5,
        "path": "hover",
    }
    params.update(overrides)
    return Segment(**params)


class TestSegment:
    def test_valid(self):
        assert _segment().frames == 10

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            _segment(frames=0)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            _segment(path="teleport")

    def test_unknown_background_rejected(self):
        with pytest.raises(KeyError):
            _segment(background_name="the_void")

    def test_distance_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _segment(distance_start=1.2)
        with pytest.raises(ValueError):
            _segment(distance_end=-0.2)


class TestScenario:
    def test_requires_segments(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", indoor=False, seed=1, segments=())

    def test_total_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10), _segment(frames=5)),
        )
        assert scenario.total_frames == 15

    def test_segment_boundaries(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10), _segment(frames=5), _segment(frames=3)),
        )
        assert scenario.segment_boundaries() == [10, 15]

    def test_scaled_shrinks_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=100),),
        )
        assert scenario.scaled(0.25).total_frames == 25

    def test_scaled_keeps_minimum_two_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10),),
        )
        assert scenario.scaled(0.01).segments[0].frames == 2

    def test_scaled_invalid_factor_rejected(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1, segments=(_segment(),),
        )
        with pytest.raises(ValueError):
            scenario.scaled(0.0)


class TestEvaluationScenarios:
    def test_six_scenarios(self):
        assert len(evaluation_scenarios()) == 6

    def test_two_indoor_four_outdoor(self):
        scenarios = evaluation_scenarios()
        assert sum(1 for s in scenarios if s.indoor) == 2
        assert sum(1 for s in scenarios if not s.indoor) == 4

    def test_paper_frame_counts(self):
        # The paper's videos run 500-2,500 frames each.
        for scenario in evaluation_scenarios():
            assert 500 <= scenario.total_frames <= 2500, scenario.name

    def test_unique_names_and_seeds(self):
        scenarios = evaluation_scenarios()
        assert len({s.name for s in scenarios}) == 6
        assert len({s.seed for s in scenarios}) == 6

    def test_lookup_by_name(self):
        scenario = scenario_by_name("s1_multi_background_varying_distance")
        assert scenario.total_frames == 1800

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="known scenarios"):
            scenario_by_name("s99")

    def test_lookup_unknown_enumerates_every_registered_name(self):
        # The error must list the full resolvable namespace: the paper
        # library, the extended flights, and grammar-generated scenarios.
        with pytest.raises(KeyError) as excinfo:
            scenario_by_name("s99_no_such_flight")
        message = str(excinfo.value)
        assert "s1_multi_background_varying_distance" in message
        assert "x_night_watch_400f" in message
        assert "g_dm_s001_crx_day_96f" in message
        for name in scenario_names():
            assert name in message

    def test_scenario1_has_multiple_backgrounds(self):
        scenario = scenario_by_name("s1_multi_background_varying_distance")
        assert len({seg.background_name for seg in scenario.segments}) >= 3

    def test_scenario2_enters_and_exits(self):
        scenario = scenario_by_name("s2_fixed_distance_crossing")
        paths = [seg.path for seg in scenario.segments]
        assert "enter_left" in paths and "exit_right" in paths and "absent" in paths


class TestScenarioRegistry:
    def _custom(self, name):
        return Scenario(
            name=name, description="registered", indoor=False, seed=4242,
            segments=(Segment("only", 10, "open_sky", 0.2, 0.4),),
        )

    def test_register_and_resolve(self):
        from repro.data.scenario import _REGISTRY

        scenario = self._custom("t_registered_resolves")
        register_scenario(scenario)
        try:
            assert scenario_by_name(scenario.name) is scenario
            assert scenario.name in scenario_names()
            assert any(s.name == scenario.name for s in registered_scenarios())
        finally:
            _REGISTRY.pop(scenario.name, None)

    def test_register_rejects_builtin_shadowing(self):
        with pytest.raises(ValueError, match="shadows"):
            register_scenario(self._custom("s3_indoor_close_wall"))

    def test_register_rejects_generated_shadowing(self):
        # Explicit registrations resolve before sources; shadowing a
        # grammar name would give one name two fingerprints across
        # processes, which the trace store cannot survive.
        with pytest.raises(ValueError, match="source-generated"):
            register_scenario(self._custom("g_dm_s001_crx_day_96f"))

    def test_register_rejects_duplicates_without_replace(self):
        from repro.data.scenario import _REGISTRY

        scenario = self._custom("t_registered_duplicate")
        register_scenario(scenario)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(self._custom("t_registered_duplicate"))
            register_scenario(self._custom("t_registered_duplicate"), replace=True)
        finally:
            _REGISTRY.pop(scenario.name, None)

    def test_names_cover_builtin_and_generated(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        assert "s1_multi_background_varying_distance" in names
        assert any(name.startswith("g_dm_") for name in names)


class TestPathPosition:
    @pytest.mark.parametrize("path", PATHS)
    def test_all_paths_defined_over_unit_interval(self, path):
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            x, y = path_position(path, t)
            assert -1.0 < x < 2.0 and -1.0 < y < 2.0

    def test_progress_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            path_position("hover", 1.5)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            path_position("warp", 0.5)

    def test_sweep_moves_left_to_right(self):
        x0, _ = path_position("sweep_lr", 0.0)
        x1, _ = path_position("sweep_lr", 1.0)
        assert x0 < 0.2 and x1 > 0.8

    def test_enter_left_starts_outside(self):
        x, _ = path_position("enter_left", 0.0)
        assert x < 0.0

    def test_exit_right_ends_outside(self):
        x, _ = path_position("exit_right", 1.0)
        assert x > 1.0


class TestFingerprint:
    def test_stable_across_calls(self):
        a = scenario_by_name("s1_multi_background_varying_distance")
        b = scenario_by_name("s1_multi_background_varying_distance")
        assert a.fingerprint() == b.fingerprint()

    def test_seed_changes_fingerprint(self):
        base = scenario_by_name("s3_indoor_close_wall")
        reseeded = dataclasses.replace(base, seed=base.seed + 1)
        assert base.fingerprint() != reseeded.fingerprint()

    def test_segment_content_changes_fingerprint(self):
        base = scenario_by_name("s3_indoor_close_wall")
        segments = (dataclasses.replace(base.segments[0], pan=0.9),) + base.segments[1:]
        panned = dataclasses.replace(base, segments=segments)
        assert base.total_frames == panned.total_frames
        assert base.fingerprint() != panned.fingerprint()

    def test_scaling_changes_fingerprint(self):
        base = scenario_by_name("s3_indoor_close_wall")
        assert base.fingerprint() != base.scaled(0.5).fingerprint()

    def test_all_library_fingerprints_distinct(self):
        prints = [s.fingerprint() for s in all_scenarios()]
        assert len(set(prints)) == len(prints)


class TestExtendedScenarios:
    def test_four_extended_scenarios(self):
        assert len(extended_scenarios()) == 4

    def test_all_scenarios_is_union(self):
        names = [s.name for s in all_scenarios()]
        assert len(names) == len(set(names)) == 10
        assert all(s.name in names for s in evaluation_scenarios())

    def test_lookup_finds_extended(self):
        scenario = scenario_by_name("x_night_watch_400f")
        assert scenario.total_frames == 400

    def test_night_watch_is_dark(self):
        from repro.data import background

        scenario = night_watch_scenario()
        styles = [background(seg.background_name) for seg in scenario.segments]
        assert all(style.brightness < 0.2 for style in styles)

    def test_fog_density_parameterizes_name_and_depth(self):
        shallow = fog_crossing_scenario(density=0.2)
        deep = fog_crossing_scenario(density=0.9)
        assert shallow.name != deep.name
        assert max(s.distance_end for s in deep.segments) > max(
            s.distance_end for s in shallow.segments
        )
        with pytest.raises(ValueError):
            fog_crossing_scenario(density=1.5)

    def test_multi_pan_one_leg_per_level(self):
        scenario = multi_pan_survey_scenario(pans=(0.1, 0.5, 1.0, 2.0), leg_frames=50)
        assert len(scenario.segments) == 4
        assert [seg.pan for seg in scenario.segments] == [0.1, 0.5, 1.0, 2.0]
        assert scenario.total_frames == 200
        with pytest.raises(ValueError):
            multi_pan_survey_scenario(pans=())

    def test_long_endurance_scales_with_laps(self):
        short = long_endurance_patrol_scenario(laps=1, lap_frames=120)
        long = long_endurance_patrol_scenario(laps=5, lap_frames=120)
        assert long.total_frames > 4 * short.total_frames
        assert short.name != long.name
        with pytest.raises(ValueError):
            long_endurance_patrol_scenario(laps=0)
