"""Tests for scenario definitions and motion paths."""

import pytest

from repro.data import PATHS, Scenario, Segment, evaluation_scenarios, path_position, scenario_by_name


def _segment(**overrides):
    params = {
        "name": "seg",
        "frames": 10,
        "background_name": "open_sky",
        "distance_start": 0.2,
        "distance_end": 0.5,
        "path": "hover",
    }
    params.update(overrides)
    return Segment(**params)


class TestSegment:
    def test_valid(self):
        assert _segment().frames == 10

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            _segment(frames=0)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            _segment(path="teleport")

    def test_unknown_background_rejected(self):
        with pytest.raises(KeyError):
            _segment(background_name="the_void")

    def test_distance_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _segment(distance_start=1.2)
        with pytest.raises(ValueError):
            _segment(distance_end=-0.2)


class TestScenario:
    def test_requires_segments(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", indoor=False, seed=1, segments=())

    def test_total_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10), _segment(frames=5)),
        )
        assert scenario.total_frames == 15

    def test_segment_boundaries(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10), _segment(frames=5), _segment(frames=3)),
        )
        assert scenario.segment_boundaries() == [10, 15]

    def test_scaled_shrinks_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=100),),
        )
        assert scenario.scaled(0.25).total_frames == 25

    def test_scaled_keeps_minimum_two_frames(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1,
            segments=(_segment(frames=10),),
        )
        assert scenario.scaled(0.01).segments[0].frames == 2

    def test_scaled_invalid_factor_rejected(self):
        scenario = Scenario(
            name="x", description="", indoor=False, seed=1, segments=(_segment(),),
        )
        with pytest.raises(ValueError):
            scenario.scaled(0.0)


class TestEvaluationScenarios:
    def test_six_scenarios(self):
        assert len(evaluation_scenarios()) == 6

    def test_two_indoor_four_outdoor(self):
        scenarios = evaluation_scenarios()
        assert sum(1 for s in scenarios if s.indoor) == 2
        assert sum(1 for s in scenarios if not s.indoor) == 4

    def test_paper_frame_counts(self):
        # The paper's videos run 500-2,500 frames each.
        for scenario in evaluation_scenarios():
            assert 500 <= scenario.total_frames <= 2500, scenario.name

    def test_unique_names_and_seeds(self):
        scenarios = evaluation_scenarios()
        assert len({s.name for s in scenarios}) == 6
        assert len({s.seed for s in scenarios}) == 6

    def test_lookup_by_name(self):
        scenario = scenario_by_name("s1_multi_background_varying_distance")
        assert scenario.total_frames == 1800

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="known scenarios"):
            scenario_by_name("s99")

    def test_scenario1_has_multiple_backgrounds(self):
        scenario = scenario_by_name("s1_multi_background_varying_distance")
        assert len({seg.background_name for seg in scenario.segments}) >= 3

    def test_scenario2_enters_and_exits(self):
        scenario = scenario_by_name("s2_fixed_distance_crossing")
        paths = [seg.path for seg in scenario.segments]
        assert "enter_left" in paths and "exit_right" in paths and "absent" in paths


class TestPathPosition:
    @pytest.mark.parametrize("path", PATHS)
    def test_all_paths_defined_over_unit_interval(self, path):
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            x, y = path_position(path, t)
            assert -1.0 < x < 2.0 and -1.0 < y < 2.0

    def test_progress_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            path_position("hover", 1.5)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            path_position("warp", 0.5)

    def test_sweep_moves_left_to_right(self):
        x0, _ = path_position("sweep_lr", 0.0)
        x1, _ = path_position("sweep_lr", 1.0)
        assert x0 < 0.2 and x1 > 0.8

    def test_enter_left_starts_outside(self):
        x, _ = path_position("enter_left", 0.0)
        assert x < 0.0

    def test_exit_right_ends_outside(self):
        x, _ = path_position("exit_right", 1.0)
        assert x > 1.0
