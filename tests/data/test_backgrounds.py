"""Tests for the background library."""

import pytest

from repro.data import background, background_names, register_background
from repro.vision import BackgroundStyle


class TestLibrary:
    def test_known_background(self):
        style = background("open_sky")
        assert style.brightness > 0.8

    def test_unknown_background_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known backgrounds"):
            background("the_moon")

    def test_names_sorted_and_nonempty(self):
        names = background_names()
        assert names == sorted(names)
        assert len(names) >= 10

    def test_two_indoor_and_outdoor_families_exist(self):
        names = background_names()
        assert sum(1 for n in names if n.startswith("indoor")) >= 2
        assert "open_sky" in names and "tree_line" in names

    def test_styles_are_distinct(self):
        seeds = [background(n).pattern_seed for n in background_names()]
        assert len(seeds) == len(set(seeds))


class TestRegistration:
    def test_register_and_lookup(self):
        style = BackgroundStyle(complexity=0.3, brightness=0.5, contrast=0.2, pattern_seed=991)
        register_background("test_custom_bg", style)
        try:
            assert background("test_custom_bg") is style
        finally:
            # Keep the global library pristine for other tests.
            import repro.data.backgrounds as bg

            del bg._LIBRARY["test_custom_bg"]

    def test_collision_rejected(self):
        style = BackgroundStyle(complexity=0.3, brightness=0.5, contrast=0.2, pattern_seed=992)
        with pytest.raises(ValueError):
            register_background("open_sky", style)

    def test_replace_allowed(self):
        original = background("open_sky")
        style = BackgroundStyle(complexity=0.3, brightness=0.5, contrast=0.2, pattern_seed=993)
        register_background("open_sky", style, replace=True)
        try:
            assert background("open_sky") is style
        finally:
            register_background("open_sky", original, replace=True)
