"""Tests for frame generation."""

import numpy as np

from repro.data import (
    CAMERA_FPS,
    Scenario,
    Segment,
    generate_frames,
    render_scenario,
    scenario_by_name,
)


def _mini_scenario():
    return Scenario(
        name="mini",
        description="test scenario",
        indoor=False,
        seed=123,
        segments=(
            Segment("a", 6, "open_sky", 0.1, 0.3, path="sweep_lr"),
            Segment("b", 4, "tree_line", 0.5, 0.7, path="hover"),
            Segment("c", 3, "tree_line", 0.5, 0.5, path="absent"),
        ),
    )


class TestGenerateFrames:
    def test_frame_count_and_indices(self):
        frames = render_scenario(_mini_scenario())
        assert len(frames) == 13
        assert [f.index for f in frames] == list(range(13))

    def test_timestamps_follow_camera_fps(self):
        frames = render_scenario(_mini_scenario())
        assert frames[0].timestamp == 0.0
        assert frames[1].timestamp == 1.0 / CAMERA_FPS

    def test_deterministic(self):
        a = render_scenario(_mini_scenario())
        b = render_scenario(_mini_scenario())
        for fa, fb in zip(a, b, strict=True):
            assert np.array_equal(fa.image, fb.image)
            assert fa.ground_truth == fb.ground_truth
            assert fa.difficulty == fb.difficulty

    def test_segment_labels(self):
        frames = render_scenario(_mini_scenario())
        assert [f.segment for f in frames] == ["a"] * 6 + ["b"] * 4 + ["c"] * 3

    def test_absent_segment_has_no_ground_truth(self):
        frames = render_scenario(_mini_scenario())
        for frame in frames[10:]:
            assert frame.ground_truth is None
            assert not frame.target_visible
            assert frame.difficulty == 1.0

    def test_visible_segments_have_ground_truth(self):
        frames = render_scenario(_mini_scenario())
        assert all(f.ground_truth is not None for f in frames[:10])

    def test_images_normalized(self):
        for frame in render_scenario(_mini_scenario()):
            assert frame.image.min() >= 0.0 and frame.image.max() <= 1.0
            assert frame.image.shape == (96, 96)

    def test_sweep_moves_target(self):
        frames = render_scenario(_mini_scenario())
        x_first = frames[0].scene.cx
        x_last = frames[5].scene.cx
        assert x_last > x_first + 30

    def test_speed_computed_from_motion(self):
        frames = render_scenario(_mini_scenario())
        # First frame of each segment has zero speed; subsequent sweep
        # frames move.
        assert frames[0].scene.speed == 0.0
        assert frames[1].scene.speed > 0.0

    def test_difficulty_rises_with_harder_segment(self):
        frames = render_scenario(_mini_scenario())
        easy = np.mean([f.difficulty for f in frames[:6]])
        hard = np.mean([f.difficulty for f in frames[6:10]])
        assert hard > easy

    def test_generator_is_lazy(self):
        gen = generate_frames(_mini_scenario())
        first = next(gen)
        assert first.index == 0

    def test_drift_accumulates_across_segments(self):
        scenario = Scenario(
            name="pan",
            description="",
            indoor=False,
            seed=5,
            segments=(
                Segment("p1", 5, "open_sky", 0.2, 0.2, pan=1.0),
                Segment("p2", 5, "open_sky", 0.2, 0.2, pan=1.0),
            ),
        )
        frames = render_scenario(scenario)
        assert frames[-1].scene.drift > frames[0].scene.drift

    def test_full_scenario_1_shape(self):
        scenario = scenario_by_name("s1_multi_background_varying_distance").scaled(0.1)
        frames = render_scenario(scenario)
        assert len(frames) == scenario.total_frames
        assert all(f.ground_truth is not None for f in frames[:4])


class TestScenarioScenes:
    def test_scenes_match_rendered_frames(self):
        # Worker processes trace scenarios from scene states alone; they
        # must be identical to what the rendering path attaches to frames.
        from repro.data import scenario_scenes

        scenario = scenario_by_name("s4_indoor_clutter").scaled(0.05)
        scenes = scenario_scenes(scenario)
        frames = render_scenario(scenario)
        assert len(scenes) == scenario.total_frames
        assert scenes == [frame.scene for frame in frames]
