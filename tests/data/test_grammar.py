"""Tests for the procedural scenario grammar (families, recipes, matrices)."""

import random

import pytest

from repro.data import (
    DEFAULT_MATRIX,
    FAMILIES,
    GENERATED_PREFIX,
    REGIMES,
    GrammarError,
    ScenarioMatrix,
    ScenarioRecipe,
    default_matrix,
    family,
    family_names,
    regime,
    scenario_by_name,
    split_frames,
)


class TestSplitFrames:
    def test_exact_total(self):
        parts = split_frames(100, (1.0, 2.0, 1.0))
        assert sum(parts) == 100
        assert parts[1] > parts[0]

    def test_minimum_enforced(self):
        parts = split_frames(7, (1.0, 100.0), minimum=2)
        assert parts[0] >= 2 and sum(parts) == 7

    def test_infeasible_total_rejected(self):
        with pytest.raises(GrammarError):
            split_frames(3, (1.0, 1.0), minimum=2)

    def test_zero_parts_rejected(self):
        with pytest.raises(GrammarError):
            split_frames(10, ())


class TestFamiliesAndRegimes:
    def test_at_least_six_families(self):
        assert len(FAMILIES) >= 6

    def test_family_lookup_unknown(self):
        with pytest.raises(GrammarError, match="known families"):
            family("teleport")

    def test_family_names_sorted(self):
        assert family_names() == sorted(FAMILIES)

    def test_regime_lookup_unknown(self):
        with pytest.raises(GrammarError, match="known regimes"):
            regime("underwater")

    def test_regime_rosters_are_registered_backgrounds(self):
        from repro.data import background

        for env in REGIMES.values():
            for name in env.roster:
                background(name)  # raises on unknown


class TestRecipe:
    def test_build_is_deterministic(self):
        recipe = ScenarioRecipe(name="t1", families=("crossing", "loiter"), frame_budget=60)
        assert recipe.build().fingerprint() == recipe.build().fingerprint()

    def test_budget_is_exact(self):
        for budget in (40, 61, 97):
            recipe = ScenarioRecipe(name="t2", families=("popup", "pan_burst"),
                                    frame_budget=budget)
            assert recipe.build().total_frames == budget

    def test_distance_continuity_across_all_segments(self):
        recipe = ScenarioRecipe(
            name="t3", families=("altitude_ramp", "occlusion_dip", "crossing"),
            regime_name="night", frame_budget=90,
        )
        segments = recipe.build().segments
        for previous, current in zip(segments, segments[1:], strict=False):
            assert current.distance_start == pytest.approx(previous.distance_end, abs=1e-12)

    def test_backgrounds_come_from_the_regime_roster(self):
        recipe = ScenarioRecipe(name="t4", families=("crossing", "popup"),
                                regime_name="fog", frame_budget=60)
        roster = set(REGIMES["fog"].roster)
        assert {seg.background_name for seg in recipe.build().segments} <= roster

    def test_indoor_flag_follows_regime(self):
        indoor = ScenarioRecipe(name="t5", families=("loiter",), regime_name="indoor",
                                frame_budget=30)
        outdoor = ScenarioRecipe(name="t5", families=("loiter",), regime_name="day",
                                 frame_budget=30)
        assert indoor.build().indoor and not outdoor.build().indoor

    def test_generated_name_prefix_and_content(self):
        recipe = ScenarioRecipe(name="t6", families=("pan_burst",), frame_budget=30)
        name = recipe.build().name
        assert name.startswith(GENERATED_PREFIX)
        assert "pan" in name and "day" in name and "30f" in name

    def test_unknown_family_rejected(self):
        with pytest.raises(GrammarError):
            ScenarioRecipe(name="t7", families=("warp",))

    def test_unknown_regime_rejected(self):
        with pytest.raises(GrammarError):
            ScenarioRecipe(name="t8", families=("loiter",), regime_name="underwater")

    def test_empty_families_rejected(self):
        with pytest.raises(GrammarError):
            ScenarioRecipe(name="t9", families=())

    def test_infeasible_budget_rejected(self):
        recipe = ScenarioRecipe(name="t10", families=("crossing", "occlusion_dip"),
                                frame_budget=10)
        with pytest.raises(GrammarError):
            recipe.build()

    def test_seed_changes_scenario(self):
        a = ScenarioRecipe(name="t11", families=("crossing",), base_seed=1, frame_budget=40)
        b = ScenarioRecipe(name="t11", families=("crossing",), base_seed=2, frame_budget=40)
        assert a.build().fingerprint() != b.build().fingerprint()

    def test_random_recipes_always_build_valid_scenarios(self):
        # Property-based (seeded, stdlib-only): any feasible recipe the
        # grammar accepts must produce a budget-exact, continuous,
        # in-range scenario.
        rng = random.Random(20240729)
        names = sorted(FAMILIES)
        for case in range(25):
            families = tuple(rng.sample(names, rng.randint(1, 3)))
            minimum = max(FAMILIES[f].min_frames for f in families) * len(families)
            recipe = ScenarioRecipe(
                name=f"prop{case}",
                families=families,
                regime_name=rng.choice(sorted(REGIMES)),
                base_seed=rng.randint(0, 2**31),
                frame_budget=rng.randint(minimum, minimum + 150),
                start_distance=round(rng.uniform(0.1, 0.6), 3),
            )
            scenario = recipe.build()
            assert scenario.total_frames == recipe.frame_budget
            assert scenario.segments[0].distance_start == pytest.approx(recipe.start_distance)
            for previous, current in zip(scenario.segments, scenario.segments[1:], strict=False):
                assert current.distance_start == pytest.approx(previous.distance_end, abs=1e-12)
            for seg in scenario.segments:
                assert 0.0 <= seg.distance_start <= 1.0
                assert 0.0 <= seg.distance_end <= 1.0
                assert seg.frames >= 2


class TestMatrix:
    def test_default_matrix_scale(self):
        scenarios = default_matrix().scenarios()
        assert len(scenarios) >= 100
        assert len({s.name for s in scenarios}) == len(scenarios)
        assert len({s.fingerprint() for s in scenarios}) == len(scenarios)

    def test_default_matrix_covers_all_families(self):
        used = {f for comp in default_matrix().compositions for f in comp}
        assert used == set(FAMILIES)

    def test_expansion_is_deterministic(self):
        a = [s.fingerprint() for s in default_matrix().scenarios()]
        b = [s.fingerprint() for s in default_matrix().scenarios()]
        assert a == b

    def test_len_matches_grid(self):
        matrix = ScenarioMatrix(
            name="m1", compositions=(("loiter",), ("popup",)), regimes=("day", "fog"),
            seeds=(1, 2, 3), frame_budgets=(30,),
        )
        assert len(matrix) == 12
        assert len(matrix.scenarios()) == 12

    def test_empty_axis_rejected(self):
        with pytest.raises(GrammarError):
            ScenarioMatrix(name="m2", compositions=())
        with pytest.raises(GrammarError):
            ScenarioMatrix(name="m3", compositions=(("loiter",),), regimes=())

    def test_generated_scenarios_resolve_by_name(self):
        scenario = DEFAULT_MATRIX.scenarios()[0]
        resolved = scenario_by_name(scenario.name)
        assert resolved.fingerprint() == scenario.fingerprint()

    def test_generated_scenarios_scale_through_context(self):
        from repro.experiments import ExperimentContext

        scenario = DEFAULT_MATRIX.scenarios()[0]
        scaled = ExperimentContext(scale=0.05, validation_size=10).scenario(scenario.name)
        assert scaled.total_frames < scenario.total_frames
