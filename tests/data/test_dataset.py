"""Tests for the characterization validation set."""

import numpy as np
import pytest

from repro.data import background_names, build_validation_set
from repro.data.dataset import VALIDATION_BACKGROUNDS


class TestBuildValidationSet:
    def test_size(self):
        assert len(build_validation_set(size=50)) == 50

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            build_validation_set(size=0)

    def test_invalid_absent_fraction_rejected(self):
        with pytest.raises(ValueError):
            build_validation_set(size=10, absent_fraction=1.0)

    def test_deterministic(self):
        a = build_validation_set(size=40, seed=9)
        b = build_validation_set(size=40, seed=9)
        for sa, sb in zip(a, b, strict=True):
            assert sa.scene == sb.scene
            assert sa.difficulty == sb.difficulty

    def test_seed_changes_samples(self):
        a = build_validation_set(size=40, seed=1)
        b = build_validation_set(size=40, seed=2)
        assert any(sa.scene != sb.scene for sa, sb in zip(a, b, strict=True))

    def test_covers_all_validation_backgrounds(self):
        samples = build_validation_set(size=3 * len(VALIDATION_BACKGROUNDS))
        seen = {s.scene.background_name for s in samples}
        assert seen == set(VALIDATION_BACKGROUNDS)

    def test_roster_frozen_against_library_growth(self):
        # The validation split stands in for the paper's fixed dataset: it
        # must not change when new backgrounds join the live library.
        assert set(VALIDATION_BACKGROUNDS) < set(background_names())
        samples = build_validation_set(size=3 * len(background_names()))
        seen = {s.scene.background_name for s in samples}
        assert "night_sky" not in seen and "fog_bank" not in seen

    def test_distance_stratified(self):
        samples = build_validation_set(size=400)
        distances = [s.scene.distance for s in samples]
        # Every decile of the distance range is populated.
        histogram, _ = np.histogram(distances, bins=10, range=(0.0, 1.0))
        assert all(count > 0 for count in histogram)

    def test_some_frames_empty(self):
        samples = build_validation_set(size=400, absent_fraction=0.1)
        absent = [s for s in samples if s.ground_truth is None]
        assert 0 < len(absent) < 100

    def test_context_ids_unique_and_seeded(self):
        samples = build_validation_set(size=30, seed=77)
        ids = {s.context_id for s in samples}
        assert len(ids) == 30
        assert all(cid[0] == 77 for cid in ids)

    def test_difficulty_consistent_with_scene(self):
        from repro.data import scene_difficulty

        for sample in build_validation_set(size=30):
            assert sample.difficulty == scene_difficulty(sample.scene)
