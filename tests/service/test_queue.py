"""Lease-semantics tests for the on-disk job queue.

The crash-safety contract, pinned without any real sleeping: an
injectable clock drives lease expiry, so every transition — claim,
heartbeat extension, expiry-requeue with backoff, nonce fencing,
max-attempts dead-lettering, dead-letter requeue — is exercised
deterministically.  Real crash/kill behaviour is covered by
``tests/service/test_worker.py`` and the ``faults`` differential check.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.data import ScenarioMatrix
from repro.runtime import shards
from repro.service import JobQueue, ServiceError, SweepRequest, decompose, job_digest

MATRIX = ScenarioMatrix(
    name="q",
    compositions=(("loiter",), ("crossing",)),
    regimes=("day",),
    seeds=(3,),
    frame_budgets=(16,),
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def scenarios():
    return MATRIX.scenarios()


@pytest.fixture(scope="module")
def jobs(scenarios):
    request = SweepRequest(
        policies=("marlin-tiny", "single:yolov7-tiny@gpu"), scenarios=tuple(scenarios)
    )
    return decompose(request)


def make_queue(tmp_path, clock, **kwargs):
    kwargs.setdefault("lease_duration", 10.0)
    kwargs.setdefault("max_attempts", 3)
    return JobQueue(tmp_path / "queue", clock=clock, **kwargs)


class TestEnqueue:
    def test_enqueue_is_idempotent(self, tmp_path, jobs):
        queue = make_queue(tmp_path, FakeClock())
        assert queue.enqueue(jobs[0]) is True
        assert queue.enqueue(jobs[0]) is False
        assert queue.enqueue_all(jobs) == len(jobs) - 1
        assert queue.counts()["pending"] == len(jobs)

    def test_done_jobs_stay_done_across_reenqueue(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        lease = queue.claim("w0")
        assert queue.complete(lease)
        assert queue.enqueue(jobs[0]) is False
        assert queue.counts()["done"] == 1
        assert queue.claim("w0") is None

    def test_unreadable_record_is_replaced_on_enqueue(self, tmp_path, jobs):
        queue = make_queue(tmp_path, FakeClock())
        queue.enqueue(jobs[0])
        [path] = list(shards.iter_entry_paths(queue.root, "job-*.json"))
        path.write_text('{"torn', encoding="utf-8")
        assert queue.enqueue(jobs[0]) is True
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["state"] == "pending"

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            JobQueue(tmp_path / "q1", lease_duration=0)
        with pytest.raises(ServiceError):
            JobQueue(tmp_path / "q2", max_attempts=0)
        with pytest.raises(ServiceError):
            JobQueue(tmp_path / "q3", backoff_base=2.0, backoff_cap=1.0)


class TestLeases:
    def test_claim_grants_exclusive_lease(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        lease = queue.claim("w0")
        assert lease is not None
        assert lease.owner == "w0"
        assert lease.deadline == clock.now + queue.lease_duration
        assert lease.attempt == 1
        assert lease.job_id == job_digest(jobs[0].policy_spec, jobs[0].key[1])
        # The scenario rides inside the lease, rebuilt from the record.
        assert lease.scenario.fingerprint() == jobs[0].scenario.fingerprint()
        assert queue.claim("w1") is None  # nothing else to claim

    def test_heartbeat_extends_an_owned_lease(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        lease = queue.claim("w0")
        clock.advance(8.0)
        new_deadline = queue.heartbeat(lease)
        assert new_deadline == clock.now + queue.lease_duration
        # Without the heartbeat the lease would now be expired:
        clock.advance(4.0)
        assert queue.claim("w1") is None
        assert queue.complete(lease)

    def test_expired_lease_requeues_with_backoff(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        first = queue.claim("w0")
        clock.advance(queue.lease_duration + 0.001)
        # Not immediately reclaimable: the retry backs off first.
        delay = queue.backoff_delay(first.job_id, first.attempt)
        assert queue.claim("w1") is None
        assert queue.leases_expired == 1
        clock.advance(delay + 0.001)
        second = queue.claim("w1")
        assert second is not None
        assert second.owner == "w1"
        assert second.attempt == 2
        assert second.nonce != first.nonce

    def test_stale_owner_is_fenced_after_regrant(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue(jobs[0])
        stale = queue.claim("w0")
        clock.advance(queue.lease_duration + 0.001)
        fresh = queue.claim("w1")
        assert fresh is not None
        # The zombie's writes must all bounce off the new nonce.
        assert queue.heartbeat(stale) is None
        assert queue.complete(stale) is False
        assert queue.fail(stale, "zombie error") is False
        assert queue.leases_lost == 3
        assert queue.complete(fresh) is True
        assert queue.counts()["done"] == 1

    def test_fail_requeues_then_dead_letters_at_max_attempts(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue(jobs[0])
        for attempt in range(1, queue.max_attempts + 1):
            lease = queue.claim("w0")
            assert lease is not None and lease.attempt == attempt
            assert queue.fail(lease, f"boom {attempt}")
        assert queue.counts()["dead"] == 1
        assert queue.claim("w0") is None
        [record] = [r for r in queue.records() if r["state"] == "dead"]
        assert "boom" in record["error"]
        assert [h["state"] for h in record["history"]].count("pending") >= 2

    def test_requeue_dead_resets_attempts(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, max_attempts=1)
        queue.enqueue(jobs[0])
        queue.fail(queue.claim("w0"), "boom")
        assert queue.counts()["dead"] == 1
        assert queue.requeue_dead() == 1
        lease = queue.claim("w0")
        assert lease is not None and lease.attempt == 1
        assert queue.complete(lease)

    def test_expire_overdue_sweeps_without_claiming(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue_all(jobs)
        queue.claim("w0")
        queue.claim("w0")
        clock.advance(queue.lease_duration + 0.001)
        assert queue.expire_overdue() == 2
        assert queue.counts()["leased"] == 0

    def test_corrupt_record_is_quarantined_not_served(self, tmp_path, jobs):
        queue = make_queue(tmp_path, FakeClock())
        queue.enqueue(jobs[0])
        [path] = list(shards.iter_entry_paths(queue.root, "job-*.json"))
        path.write_text("not json at all", encoding="utf-8")
        assert queue.claim("w0") is None
        assert queue.corrupt_records == 1
        assert not path.exists()  # moved aside, not served, not looping
        _, problems = queue.audit()
        assert problems == []


class TestBackoff:
    def test_backoff_is_deterministic_per_seed(self, tmp_path):
        clock = FakeClock()
        a = JobQueue(tmp_path / "a", clock=clock, backoff_seed=42)
        b = JobQueue(tmp_path / "b", clock=clock, backoff_seed=42)
        c = JobQueue(tmp_path / "c", clock=clock, backoff_seed=43)
        delays_a = [a.backoff_delay("job", n) for n in range(1, 6)]
        delays_b = [b.backoff_delay("job", n) for n in range(1, 6)]
        delays_c = [c.backoff_delay("job", n) for n in range(1, 6)]
        assert delays_a == delays_b
        assert delays_a != delays_c

    @given(attempt=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_backoff_bounded_by_cap_and_grows_from_base(self, attempt, seed):
        queue = JobQueue.__new__(JobQueue)  # no disk needed for the formula
        queue.backoff_base = 0.25
        queue.backoff_cap = 8.0
        queue.backoff_seed = seed
        delay = JobQueue.backoff_delay(queue, "some-job", attempt)
        ceiling = min(8.0, 0.25 * 2 ** (attempt - 1))
        assert 0.5 * ceiling <= delay <= ceiling


class TestConcurrency:
    def test_parallel_claims_never_double_grant(self, tmp_path, jobs):
        import threading

        queue = make_queue(tmp_path, FakeClock())
        queue.enqueue_all(jobs)
        grants: list = []
        lock = threading.Lock()

        def worker(name: str) -> None:
            while True:
                lease = queue.claim(name)
                if lease is None:
                    return
                with lock:
                    grants.append(lease.job_id)
                queue.complete(lease)

        threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(grants) == sorted(
            job_digest(j.policy_spec, j.key[1]) for j in jobs
        )
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)


class TestClockDiscipline:
    """Wall-clock skew must never falsely expire or silently extend leases."""

    def test_backward_step_is_clamped_and_counted(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        lease = queue.claim("w0")
        clock.advance(5.0)
        assert queue.heartbeat(lease) is not None
        clock.advance(-60.0)  # NTP steps the wall clock backwards
        # The queue's readings never decrease: the healthy lease is not
        # reclaimable by a rival, and the anomaly is counted.
        assert queue.claim("w1") is None
        assert queue.clock_skew_events == 1
        assert queue.stats()["clock_skew_events"] == 1
        # Progress still works on the clamped clock.
        assert queue.complete(lease) is True

    def test_backward_step_does_not_stretch_expiry(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue(jobs[0])
        first = queue.claim("w0")
        clock.advance(-30.0)
        assert queue.claim("w1") is None  # clamp: no time passed
        skews = queue.clock_skew_events
        # The clock recovers past the original deadline (in steps small
        # enough not to look like fresh skew): the lease expires exactly
        # as if the backward step never happened — clamping is not a
        # lease extension.
        clock.advance(30.0)
        clock.advance(6.0)
        assert queue.claim("w1") is None
        clock.advance(6.0)
        second = queue.claim("w1")
        assert second is not None
        assert second.attempt == first.attempt + 1
        assert queue.clock_skew_events == skews

    def test_forward_jump_is_counted_but_still_expires(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue(jobs[0])
        queue.claim("w0")
        clock.advance(3600.0)  # suspend/resume-sized jump
        # A genuinely overdue lease must still migrate — the clamp only
        # guards the backwards direction — but the jump is observable.
        second = queue.claim("w1")
        assert second is not None
        assert queue.leases_expired == 1
        assert queue.clock_skew_events == 1


class TestRelease:
    """Graceful shutdown returns jobs without burning retry budget."""

    def test_release_refunds_attempt_and_repends_immediately(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue(jobs[0])
        lease = queue.claim("w0")
        assert lease.attempt == 1
        assert queue.release(lease) is True
        assert queue.jobs_released == 1
        # No backoff and a refunded attempt: a surviving worker claims it
        # in the same clock instant, with the full retry budget intact.
        again = queue.claim("w1")
        assert again is not None
        assert again.attempt == 1

    def test_stale_release_is_fenced(self, tmp_path, jobs):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock, backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue(jobs[0])
        stale = queue.claim("w0")
        clock.advance(queue.lease_duration + 0.001)
        fresh = queue.claim("w1")
        assert fresh is not None
        # A zombie releasing a lease it already lost must not yank the
        # job out from under the new owner.
        assert queue.release(stale) is False
        assert queue.leases_lost == 1
        assert queue.complete(fresh) is True
        assert queue.counts()["done"] == 1

    def test_release_owned_sweeps_the_claim_window(self, tmp_path, jobs):
        # A termination signal can land *inside* claim(): the grant is
        # durable on disk but the caller never got the Lease object, so
        # release(lease) is impossible.  release_owned(owner) is the
        # shutdown sweep that closes the gap — fenced per record, so the
        # other worker's healthy lease is untouched.
        clock = FakeClock()
        queue = make_queue(tmp_path, clock)
        queue.enqueue_all(jobs)
        assert queue.claim("w0") is not None  # lease object "lost"
        assert queue.claim("w1") is not None
        assert queue.release_owned("w0") == 1
        assert queue.release_owned("w0") == 0  # idempotent
        assert queue.jobs_released == 1
        counts = queue.counts()
        assert counts["leased"] == 1 and counts["pending"] == len(jobs) - 1
        # The swept job kept its full retry budget.
        again = queue.claim("w2")
        assert again is not None and again.attempt == 1
