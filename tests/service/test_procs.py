"""WorkerSupervisor tests: respawn budgets and orphan-proof teardown.

The reap contract is the regression under test: the old inline loop in
``serve --procs`` waited on workers one at a time, so the first process
that ignored SIGTERM raised ``TimeoutExpired`` out of the ``finally``
block and every worker behind it was orphaned with a live lease.  The
supervisor's two-pass reap (terminate all, one shared deadline, SIGKILL
the stragglers) must make that impossible.
"""

import subprocess
import sys
import time

import pytest

from repro.service import WorkerSupervisor


def spawn_sleeper() -> subprocess.Popen:
    return subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])


def spawn_stubborn() -> subprocess.Popen:
    """A worker that ignores SIGTERM — the orphan-maker."""
    return subprocess.Popen(
        [sys.executable, "-c",
         "import signal, time; signal.signal(signal.SIGTERM, signal.SIG_IGN); "
         "print('armed', flush=True); time.sleep(60)"],
        stdout=subprocess.PIPE,
    )


class TestSupervisor:
    def test_reap_terminates_the_whole_fleet(self):
        supervisor = WorkerSupervisor(spawn_sleeper, 3)
        supervisor.start()
        assert supervisor.alive == 3
        assert supervisor.spawned == 3
        assert supervisor.reap(timeout=30.0) == 0  # no SIGKILL needed
        assert supervisor.alive == 0

    def test_sigterm_ignorer_cannot_shield_its_siblings(self):
        procs: list[subprocess.Popen] = []

        def spawn() -> subprocess.Popen:
            # The ignorer comes FIRST: under the old per-process wait it
            # was exactly the one whose TimeoutExpired skipped the rest.
            proc = spawn_stubborn() if not procs else spawn_sleeper()
            procs.append(proc)
            return proc

        supervisor = WorkerSupervisor(spawn, 3)
        supervisor.start()
        assert procs[0].stdout.readline().strip() == b"armed"
        try:
            killed = supervisor.reap(timeout=2.0)
        finally:
            procs[0].stdout.close()
        assert killed == 1  # exactly the ignorer needed SIGKILL
        # Nobody was shielded: the whole fleet is gone, no orphans.
        assert all(proc.poll() is not None for proc in procs)
        assert supervisor.alive == 0

    def test_tick_respawns_within_budget_then_gives_up(self):
        def spawn_crasher() -> subprocess.Popen:
            return subprocess.Popen([sys.executable, "-c", "raise SystemExit(1)"])

        supervisor = WorkerSupervisor(spawn_crasher, 2, respawn_budget=3)
        supervisor.start()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            supervisor.tick()
            if supervisor.respawn_budget == 0 and supervisor.alive == 0:
                supervisor.tick()  # collect the final exits
                break
            time.sleep(0.05)
        # A crash loop terminates: budget spent, fleet dead, fully counted.
        assert supervisor.respawn_budget == 0
        assert supervisor.alive == 0
        assert supervisor.spawned == 2 + 3
        assert supervisor.worker_deaths == 5
        assert supervisor.reap() == 0

    def test_start_twice_raises(self):
        supervisor = WorkerSupervisor(spawn_sleeper, 1)
        supervisor.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                supervisor.start()
        finally:
            supervisor.reap()

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(spawn_sleeper, 0)


class TestServeProcsInterrupt:
    def test_sigint_mid_drain_leaves_no_orphans_and_no_leases(self, tmp_path):
        """SIGINT a real ``serve --procs`` mid-drain: exit 130, every
        worker reaped (no orphan processes), zero held leases — the
        queue is immediately resumable."""
        import json
        import os
        import signal
        from pathlib import Path

        import repro
        from repro.service import JobQueue

        env = dict(os.environ)
        package_root = Path(repro.__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(package_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps([{
            "id": "r1",
            "policies": ["marlin-tiny", "single:yolov7-tiny@gpu"],
            "scenarios": ["s3_indoor_close_wall", "s4_indoor_clutter"],
        }]))
        queue_dir = tmp_path / "runs" / "_queue"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro",
             "--run-store", str(tmp_path / "runs"),
             "--trace-store", str(tmp_path / "traces"),
             "serve", str(jobs_path), "--procs", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # Wait until at least one worker holds a lease (we are in the
            # drain loop, full-scale trace builds keep the fleet busy).
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    raise AssertionError(
                        f"serve exited early: {proc.communicate()[1]}"
                    )
                if queue_dir.exists() and JobQueue(queue_dir).counts()["leased"] > 0:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("no lease was ever claimed")
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        stderr = proc.stderr.read()
        proc.stdout.close()
        proc.stderr.close()
        assert code == 130, stderr
        assert "interrupted" in stderr
        # Workers released their leases on SIGTERM: resumable, not stuck.
        assert JobQueue(queue_dir).counts()["leased"] == 0
        # And none of them outlived the supervisor.
        marker = str(queue_dir)
        orphans = []
        for entry in Path("/proc").iterdir():
            if not entry.name.isdigit():
                continue
            try:
                cmdline = (entry / "cmdline").read_bytes().decode(errors="replace")
            except OSError:
                continue
            if marker in cmdline:
                orphans.append(cmdline.replace("\x00", " "))
        assert orphans == []
