"""Degraded-mode behavior across the service tier.

Pure disk pressure must never look like a job failure: a claim whose
grant write hits ENOSPC is refused (no lease, no attempt burned), a
commit that cannot land leaves the record leased for a clean retry or
expiry, and a worker that cannot write releases its lease so the
attempt is refunded — zero dead-letters from a full disk.  Over HTTP
the same states surface as ``507`` on submit, ``503`` + ``"degraded":
true`` from ``/healthz``, and a terminal error line on a cold-miss
stream — while warm hits keep serving, because read-only means
*read*-only.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.data import ScenarioMatrix
from repro.data.scenario import register_scenario, scenario_by_name
from repro.runtime import RunStore, TraceStore
from repro.runtime import iolayer
from repro.runtime.iolayer import (
    RETRY_ATTEMPTS,
    FsFaultEvent,
    FsFaultPlan,
    StoreDegraded,
)
from repro.service import (
    JobQueue,
    QueueBackend,
    QueueWorker,
    ServiceBackend,
    SweepFrontend,
    SweepService,
    serve_in_thread,
)
from repro.service.jobs import UnitJob
from repro.service.http import DEGRADED_RETRY_AFTER

DEGRADED_MATRIX = ScenarioMatrix(
    name="degr",
    compositions=(("loiter",),),
    regimes=("day",),
    seeds=(11,),
    frame_budgets=(16,),
)

POLICY = "single:yolov7-tiny@gpu"


@pytest.fixture(autouse=True)
def _clean_seam():
    """Every test starts and ends with no armed plan and no degraded roots."""
    iolayer.disarm_fault_plan()
    iolayer.reset_state()
    yield
    iolayer.disarm_fault_plan()
    iolayer.reset_state()


@pytest.fixture(scope="module")
def scenarios():
    flights = DEGRADED_MATRIX.scenarios()
    for scenario in flights:
        try:
            scenario_by_name(scenario.name)
        except KeyError:
            register_scenario(scenario)
    return flights


def enospc_everywhere(count: int = 100) -> FsFaultPlan:
    return FsFaultPlan(
        events=(FsFaultEvent(op="write", index=0, kind="enospc", count=count),)
    )


def one_job():
    scenario = scenario_by_name("s3_indoor_close_wall").scaled(0.05)
    return [UnitJob(policy_spec=POLICY, scenario=scenario)]


def post(base, payload, timeout=60.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(f"{base}/v1/sweeps", data=body)
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def stream(base, request_id, timeout=120.0):
    rows, summary = [], None
    with urllib.request.urlopen(
        f"{base}/v1/sweeps/{request_id}/results", timeout=timeout
    ) as resp:
        for line in resp:
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("done"):
                summary = record
            else:
                rows.append(record)
    return rows, summary


def get_json(base, path, timeout=60.0):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as resp:
        return json.load(resp)


# ------------------------------------------------------------- queue tier

class TestQueueUnderDiskPressure:
    def test_enospc_inside_claim_burns_no_attempt(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        queue.enqueue_all(one_job(), engine_seed=1234)

        with iolayer.fault_plan(enospc_everywhere()):
            # The grant write exhausts its retries: refusal, not a lease.
            assert queue.claim("w1") is None
            assert queue.degraded_refusals == 1
            # While degraded the next claim probes and refuses without
            # touching the record.
            assert queue.claim("w1") is None
            assert queue.degraded_refusals == 2

        [record] = queue.records()
        assert record["state"] == "pending"
        assert record["attempts"] == 0
        assert queue.degraded and queue.io_errors >= RETRY_ATTEMPTS

        # Space returned: the claim's probe recovers the root by itself.
        lease = queue.claim("w1")
        assert lease is not None
        assert not queue.degraded
        [record] = queue.records()
        assert record["state"] == "leased" and record["attempts"] == 1

    def test_enospc_inside_complete_leaves_the_lease_intact(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        queue.enqueue_all(one_job(), engine_seed=1234)
        lease = queue.claim("w1")
        assert lease is not None

        with iolayer.fault_plan(enospc_everywhere()):
            with pytest.raises(StoreDegraded):
                queue.complete(lease)
        # The atomic replace never landed: still leased, retryable.
        [record] = queue.records()
        assert record["state"] == "leased"

        queue.complete(lease)  # disarmed: the probing attempt lands
        assert queue.counts()["done"] == 1
        assert queue.counts()["dead"] == 0
        assert not queue.degraded

    def test_lease_blocked_by_disk_pressure_expires_cleanly(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_duration=0.1, backoff_base=0.0)
        queue.enqueue_all(one_job(), engine_seed=1234)
        lease = queue.claim("w1")
        with iolayer.fault_plan(enospc_everywhere()):
            with pytest.raises(StoreDegraded):
                queue.complete(lease)

        # The worker died degraded; the lease deadline is the healer.
        time.sleep(0.15)
        assert queue.expire_overdue() == 1
        second = queue.claim("w2")
        assert second is not None
        queue.complete(second)
        counts = queue.counts()
        assert counts["done"] == 1 and counts["dead"] == 0


class TestWorkerUnderDiskPressure:
    def test_run_store_enospc_releases_the_lease_and_never_dead_letters(
        self, tmp_path
    ):
        # max_attempts=1 makes the assertion sharp: a single fail() would
        # dead-letter instantly, so dead == 0 proves disk pressure went
        # through release (attempt refunded), never fail.
        queue = JobQueue(tmp_path / "q", lease_duration=30.0, max_attempts=1)
        queue.enqueue_all(one_job(), engine_seed=1234)
        run_store = RunStore(tmp_path / "runs")

        # The first commit exhausts its retries and degrades the run
        # store; the next cycle's single probing attempt still fails; the
        # one after lands, clears the flag, and completes the job.
        plan = FsFaultPlan(events=(
            FsFaultEvent(op="write", index=0, kind="enospc",
                         count=RETRY_ATTEMPTS + 1, match="run-*"),
        ))
        worker = QueueWorker(queue, run_store=run_store, worker_id="w1")
        with iolayer.fault_plan(plan):
            worker.drain()

        counts = queue.counts()
        assert counts["done"] == 1
        assert counts["dead"] == 0 and counts["pending"] == 0
        assert len(run_store) == 1
        assert not run_store.degraded
        # Two releases refunded two claims: the done record burned one.
        [record] = queue.records()
        assert record["attempts"] == 1
        assert queue.jobs_released == 2


# -------------------------------------------------------------- HTTP tier

class TestHttpDegraded:
    def test_submit_gets_507_healthz_flips_and_both_recover(
        self, tmp_path, scenarios
    ):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        backend = QueueBackend(queue, run_store=tmp_path / "runs")
        frontend = SweepFrontend(backend)
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        payload = [{"policies": [POLICY], "scenarios": [scenarios[0].name]}]
        try:
            iolayer.arm_fault_plan(enospc_everywhere())
            try:
                # Admission writes the job record: the capacity wall is a
                # 507 with a retry hint, not an opaque 500.
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    post(base, payload)
                assert excinfo.value.code == 507
                assert excinfo.value.headers["Retry-After"] == (
                    f"{DEGRADED_RETRY_AFTER:.0f}"
                )

                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get_json(base, "/healthz")
                assert excinfo.value.code == 503
                health = json.load(excinfo.value)
                assert health["degraded"] is True
                assert health["status"] == "degraded"
                assert excinfo.value.headers["Retry-After"] is not None

                stats = get_json(base, "/v1/stores/stats")
                assert stats["degraded"] is True
                assert stats["io_errors"] >= RETRY_ATTEMPTS
            finally:
                iolayer.disarm_fault_plan()

            # Space returned: the next admission write is the probe that
            # clears the flag — no operator, no restart.
            status, _ = post(base, payload)
            assert status == 202
            health = get_json(base, "/healthz")
            assert health == {
                "api_version": health["api_version"],
                "status": "ok",
                "degraded": False,
            }
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()

    def test_cold_miss_refused_but_warm_hits_keep_streaming(
        self, tmp_path, scenarios
    ):
        service = SweepService(
            trace_store=TraceStore(tmp_path / "traces"),
            run_store=RunStore(tmp_path / "runs"),
            workers=2,
        )
        frontend = SweepFrontend(ServiceBackend(service))
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        warm_payload = [{"policies": [POLICY], "scenarios": [scenarios[0].name]}]
        try:
            # Populate one cell while healthy.
            status, resp = post(base, warm_payload)
            assert status == 202
            [request_id] = resp["request_ids"]
            cold_rows, summary = stream(base, request_id)
            assert summary["error"] is None and len(cold_rows) == 1

            iolayer.mark_degraded(service.run_store.root, "disk full (test)")

            # Warm hit: served read-only, bit-identical to the cold run.
            status, resp = post(base, warm_payload)
            assert status == 202
            [request_id] = resp["request_ids"]
            warm_rows, summary = stream(base, request_id)
            assert summary["error"] is None
            assert warm_rows == cold_rows

            # Cold miss: refused loudly in the terminal stream line.
            cold_payload = [{"policies": ["marlin-tiny"],
                             "scenarios": [scenarios[0].name]}]
            status, resp = post(base, cold_payload)
            assert status == 202  # admission is fine — execution is not
            [request_id] = resp["request_ids"]
            rows, summary = stream(base, request_id)
            assert rows == []
            assert summary["error"] is not None
            assert "degraded" in summary["error"]

            health_error = None
            try:
                get_json(base, "/healthz")
            except urllib.error.HTTPError as exc:
                health_error = exc
            assert health_error is not None and health_error.code == 503
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()
