"""The load generator is a CI gate (service-smoke), so it is itself tested:
a small mix must pass all four properties and exit 0, and its checks must
actually be able to fail."""

import importlib.util
import pathlib

import pytest

_LOADGEN = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "loadgen.py"


@pytest.fixture(scope="module")
def loadgen():
    spec = importlib.util.spec_from_file_location("loadgen", _LOADGEN)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_small_mix_passes(loadgen, tmp_path, capsys):
    code = loadgen.main([
        "--requests", "4", "--workers", "2", "--budget", "24", "--scenario-count", "2",
        "--trace-store", str(tmp_path / "t"), "--run-store", str(tmp_path / "r"),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "all checks passed" in out
    assert "warm re-serve: 0 runs, 0 trace builds" in out


def test_warm_second_process_equivalent(loadgen, tmp_path, capsys):
    args = [
        "--requests", "3", "--workers", "2", "--budget", "24", "--scenario-count", "2",
        "--trace-store", str(tmp_path / "t"), "--run-store", str(tmp_path / "r"),
        "--skip-serial-check",
    ]
    assert loadgen.main(args) == 0
    capsys.readouterr()
    # Second invocation (fresh "process" state): --expect-warm demands
    # the first serve already executes zero runs and builds zero traces.
    assert loadgen.main(args + ["--expect-warm"]) == 0
    assert "0 runs," in capsys.readouterr().out

    # And the gate really gates: against empty stores it must fail.
    assert loadgen.main([
        "--requests", "2", "--workers", "2", "--budget", "24", "--scenario-count", "1",
        "--trace-store", str(tmp_path / "cold-t"), "--run-store", str(tmp_path / "cold-r"),
        "--skip-serial-check", "--expect-warm",
    ]) == 1
    assert "expected a warm serve" in capsys.readouterr().err


def test_loadgen_detects_divergence(loadgen, tmp_path, capsys, monkeypatch):
    # Force the service's runs onto a different engine seed than the
    # serial checker: bit-equality must fail and the exit code flip.
    import repro.service.service as service_mod

    real = service_mod.run_policy

    def skewed(policy, trace, soc=None, engine_seed=1234, fast=False):
        return real(policy, trace, soc=soc, engine_seed=engine_seed + 1, fast=fast)

    monkeypatch.setattr(service_mod, "run_policy", skewed)
    code = loadgen.main([
        "--requests", "2", "--workers", "2", "--budget", "24", "--scenario-count", "1",
        "--trace-store", str(tmp_path / "t"), "--run-store", str(tmp_path / "r"),
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "diverges from serial run" in captured.err
