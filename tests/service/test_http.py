"""Network-tier tests: the HTTP/JSON front-end over service and queue.

Three layers, cheapest first: :class:`SweepFrontend` admission/deadline
semantics exercised directly (no sockets, injectable clock);
end-to-end socket tests against a live :class:`SweepHTTPServer` on an
ephemeral port (concurrent clients, dedup, serial bit-equality, warm
re-serve across a server restart, the full error-code table); and the
queue-backed deployment (``serve --http --procs`` shape) with a real
:class:`QueueWorker` draining the on-disk queue behind the socket.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data import ScenarioMatrix
from repro.data.scenario import register_scenario, scenario_by_name
from repro.models import default_zoo
from repro.runtime import ExperimentRunner, RunStore, TraceCache, TraceStore
from repro.runtime.export import metrics_to_dict
from repro.runtime.metrics import aggregate
from repro.service import (
    JobQueue,
    QueueBackend,
    QueueWorker,
    ServiceBackend,
    ServiceBusy,
    ServiceError,
    SweepFrontend,
    SweepService,
    metrics_from_wire,
    policy_resolver,
    serve_in_thread,
)
from repro.service.http import MAX_BODY_BYTES

HTTP_MATRIX = ScenarioMatrix(
    name="net",
    compositions=(("loiter",), ("crossing",)),
    regimes=("day",),
    seeds=(9,),
    frame_budgets=(16,),
)

POLICIES = ("single:yolov7-tiny@gpu", "marlin-tiny")
ENGINE_SEED = 1234


class FakeClock:
    """A manually advanced clock for deadline/admission tests."""

    def __init__(self, start: float = 5000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def scenarios():
    flights = HTTP_MATRIX.scenarios()
    # The wire carries scenario *names*; generated flights must be
    # resolvable inside the server's registry.
    for scenario in flights:
        try:
            scenario_by_name(scenario.name)
        except KeyError:
            register_scenario(scenario)
    return flights


@pytest.fixture(scope="module")
def serial_rows(scenarios):
    """Ground truth: serial runs of every (policy, scenario) wire cell."""
    resolve = policy_resolver()
    runner = ExperimentRunner(cache=TraceCache(default_zoo()))
    return {
        (spec, scenario.name): metrics_to_dict(
            aggregate(runner.run(resolve(spec), scenario))
        )
        for spec in POLICIES
        for scenario in scenarios
    }


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    return SweepService(
        trace_store=TraceStore(tmp_path / "traces"),
        run_store=RunStore(tmp_path / "runs"),
        **kwargs,
    )


def post(base, payload, timeout=60.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(f"{base}/v1/sweeps", data=body)
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def stream(base, request_id, timeout=120.0):
    rows, summary = [], None
    with urllib.request.urlopen(
        f"{base}/v1/sweeps/{request_id}/results", timeout=timeout
    ) as resp:
        for line in resp:
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("done"):
                summary = record
            else:
                rows.append(record)
    rows.sort(key=lambda r: (r["policy_spec"], r["scenario"]))
    return rows, summary


def get_json(base, path, timeout=60.0):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as resp:
        return json.load(resp)


class TestFrontendAdmission:
    """SweepFrontend semantics straight against the object — no sockets."""

    def test_admission_bound_rejects_atomically(self, tmp_path, scenarios):
        clock = FakeClock()
        with SweepFrontend(
            ServiceBackend(make_service(tmp_path)),
            max_pending=2, default_deadline_s=60.0, clock=clock,
        ) as frontend:
            frontend.submit_payload([
                {"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]},
            ])
            # One slot left; a two-request payload must be all-or-nothing.
            two = [
                {"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]},
                {"policies": [POLICIES[1]], "scenarios": [scenarios[0].name]},
            ]
            with pytest.raises(ServiceBusy) as excinfo:
                frontend.submit_payload(two)
            assert excinfo.value.retry_after is not None
            assert frontend.requests_submitted == 1
            assert frontend.requests_rejected == 2
            # The partial payload admitted nothing, so one slot is open.
            frontend.submit_payload([
                {"policies": [POLICIES[1]], "scenarios": [scenarios[0].name]},
            ])

    def test_expired_requests_stop_counting_against_admission(
        self, tmp_path, scenarios
    ):
        clock = FakeClock()
        with SweepFrontend(
            ServiceBackend(make_service(tmp_path)),
            max_pending=1, default_deadline_s=30.0, clock=clock,
        ) as frontend:
            payload = [{"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]}]
            frontend.submit_payload(payload)
            with pytest.raises(ServiceBusy):
                frontend.submit_payload(payload)
            # The abandoned request's deadline passes: the slot frees
            # itself without an operator or a results fetch.
            clock.advance(31.0)
            frontend.submit_payload(payload)

    def test_submit_after_close_is_loud_and_typed(self, tmp_path, scenarios):
        frontend = SweepFrontend(ServiceBackend(make_service(tmp_path)))
        frontend.close()
        with pytest.raises(ServiceBusy, match="shutting down") as excinfo:
            frontend.submit_payload(
                [{"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]}]
            )
        assert excinfo.value.retry_after is None  # 503, not 429

    def test_closed_backend_service_raises_service_busy(self, tmp_path, scenarios):
        # The PR-7 close-race contract extended to the HTTP tier: a
        # service closed underneath the frontend still fails the submit
        # with the same typed error, never a hanging handle.
        service = make_service(tmp_path)
        frontend = SweepFrontend(ServiceBackend(service))
        service.close()
        with pytest.raises(ServiceBusy, match="closed"):
            frontend.submit_payload(
                [{"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]}]
            )

    def test_malformed_payloads_raise_service_error(self, tmp_path):
        with SweepFrontend(ServiceBackend(make_service(tmp_path))) as frontend:
            for payload in ([], {"requests": "nope"}, {"deadline_s": -1}, 42):
                with pytest.raises(ServiceError):
                    frontend.submit_payload(payload)

    def test_deadline_override_is_capped(self, tmp_path, scenarios):
        with SweepFrontend(
            ServiceBackend(make_service(tmp_path)),
            default_deadline_s=30.0, max_deadline_s=60.0,
        ) as frontend:
            [entry] = frontend.submit_payload({
                "deadline_s": 10_000,
                "requests": [
                    {"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]},
                ],
            })
            assert entry.deadline_s == 60.0

    def test_stream_past_deadline_ends_with_error_line(self, tmp_path, scenarios):
        clock = FakeClock()
        with SweepFrontend(
            ServiceBackend(make_service(tmp_path, workers=1)),
            default_deadline_s=5.0, clock=clock,
        ) as frontend:
            [entry] = frontend.submit_payload(
                [{"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]}]
            )

            class _StalledHandle:
                """A backend handle that never resolves (wedged executor)."""

                total_rows = 1

                def results(self, timeout=None):
                    raise TimeoutError("still pending")
                    yield  # pragma: no cover - makes this a generator

                def done(self):
                    return False

                def completed_rows(self):
                    return 0

            entry.handle = _StalledHandle()
            clock.advance(6.0)
            lines = list(frontend.stream_results(entry))
            assert lines[-1]["done"] is True
            assert "deadline exceeded" in lines[-1]["error"]
            assert entry.state(clock()) == "failed"


class TestWire:
    """End-to-end over real localhost sockets."""

    def test_concurrent_clients_dedup_bit_equality_and_warm_restart(
        self, tmp_path, scenarios, serial_rows
    ):
        payloads = [
            [{
                "policies": list(POLICIES[: 1 + (i % 2)]),
                "scenarios": [scenarios[i % len(scenarios)].name],
                "id": f"client-{i}",
            }]
            for i in range(4)
        ]

        def serve_round():
            frontend = SweepFrontend(ServiceBackend(make_service(tmp_path)))
            server = serve_in_thread(frontend)
            base = f"http://127.0.0.1:{server.port}"
            try:
                def drive(payload):
                    status, resp = post(base, payload)
                    assert status == 202
                    [request_id] = resp["request_ids"]
                    rows, summary = stream(base, request_id)
                    assert summary["state"] == "done" and summary["error"] is None
                    return rows

                with ThreadPoolExecutor(max_workers=4) as clients:
                    all_rows = list(clients.map(drive, payloads))
                stats = get_json(base, "/v1/stores/stats")
            finally:
                server.shutdown()
                server.server_close()
                frontend.close()
            return all_rows, stats

        cold_rows, cold_stats = serve_round()
        for payload, rows in zip(payloads, cold_rows):
            assert len(rows) == len(payload[0]["policies"])
            for row in rows:
                # Field-for-field equality with the serial path, via the
                # wire dict AND the reconstructed RunMetrics object.
                serial = serial_rows[(row["policy_spec"], row["scenario"])]
                assert row["metrics"] == serial
                assert metrics_to_dict(metrics_from_wire(row["metrics"])) == serial
        backend = cold_stats["backend"]
        # At-most-once: every scheduled job was a run or a store hit.
        assert backend["runs_executed"] + backend["run_store_hits"] \
            == backend["jobs_scheduled"]
        unique_cells = {
            (spec, payload[0]["scenarios"][0])
            for payload in payloads for spec in payload[0]["policies"]
        }
        assert backend["runs_executed"] <= len(unique_cells)
        assert cold_stats["corrupt_entries"] == 0

        # Warm re-serve across a full server restart: same stores, fresh
        # everything else — free, and bit-identical on the wire.
        warm_rows, warm_stats = serve_round()
        assert warm_rows == cold_rows
        assert warm_stats["backend"]["runs_executed"] == 0
        assert warm_stats["backend"]["trace_builds"] == 0

    def test_backpressure_over_the_wire(self, tmp_path, scenarios):
        frontend = SweepFrontend(
            ServiceBackend(make_service(tmp_path)), max_pending=1,
        )
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        payload = [{"policies": [POLICIES[0]], "scenarios": [scenarios[0].name]}]
        try:
            status, resp = post(base, payload)
            assert status == 202
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base, payload, timeout=30)
            assert excinfo.value.code == 429
            assert excinfo.value.headers.get("Retry-After") is not None
            assert "admission queue full" in json.load(excinfo.value)["error"]
            # Streaming the open request retires it and frees the slot.
            stream(base, resp["request_ids"][0])
            status, _ = post(base, payload)
            assert status == 202
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()

    def test_closed_frontend_returns_503_not_a_hang(self, tmp_path, scenarios):
        frontend = SweepFrontend(ServiceBackend(make_service(tmp_path)))
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        try:
            frontend.close()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base, [{"policies": [POLICIES[0]],
                             "scenarios": [scenarios[0].name]}], timeout=30)
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()

    def test_error_code_table(self, tmp_path, scenarios):
        frontend = SweepFrontend(ServiceBackend(make_service(tmp_path)))
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"

        def expect(code, method, path, body=None):
            request = urllib.request.Request(f"{base}{path}", data=body, method=method)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == code, path
            payload = json.load(excinfo.value)
            assert payload["api_version"] == 1 and payload["error"]

        try:
            expect(404, "GET", "/v1/sweeps/req-999999")
            expect(404, "GET", "/v1/sweeps/req-999999/results")
            expect(404, "GET", "/no/such/route")
            expect(404, "POST", "/healthz", body=b"{}")
            expect(400, "POST", "/v1/sweeps", body=b"not json")
            expect(400, "POST", "/v1/sweeps", body=b"[]")
            expect(400, "POST", "/v1/sweeps", body=json.dumps(
                [{"policies": ["no-such-policy"],
                  "scenarios": [scenarios[0].name]}]).encode())
            expect(400, "POST", "/v1/sweeps", body=json.dumps(
                [{"policies": [POLICIES[0]],
                  "scenarios": ["no-such-scenario"]}]).encode())
            # Oversized body: rejected from the Content-Length alone.
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                conn.putrequest("POST", "/v1/sweeps")
                conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
                conn.endheaders()
                assert conn.getresponse().status == 413
            finally:
                conn.close()
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()

    def test_status_and_stats_endpoints(self, tmp_path, scenarios):
        frontend = SweepFrontend(ServiceBackend(make_service(tmp_path)))
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        try:
            assert get_json(base, "/healthz")["status"] == "ok"
            # No queue configured in the in-process deployment.
            assert get_json(base, "/v1/queue")["configured"] is False
            status, resp = post(base, [{
                "policies": list(POLICIES),
                "scenarios": [scenarios[0].name],
                "id": "mine",
            }])
            [request_id] = resp["request_ids"]
            assert resp["requests"][0]["client_id"] == "mine"
            rows, _ = stream(base, request_id)
            status = get_json(base, f"/v1/sweeps/{request_id}")
            assert status["state"] == "done"
            assert status["rows_done"] == status["rows_total"] == len(rows) == 2
            assert status["client_id"] == "mine"
            stats = get_json(base, "/v1/stores/stats")
            assert stats["frontend"]["rows_streamed"] == 2
            assert stats["run_entries"] == 2
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()


class TestQueueBackend:
    """The ``serve --http --procs`` shape: queue + worker behind the socket."""

    def _drain_in_thread(self, queue, tmp_path, **kwargs):
        worker = QueueWorker(
            queue,
            run_store=tmp_path / "runs",
            trace_store=tmp_path / "traces",
            worker_id="http-w1",
            poll_interval=0.02,
            **kwargs,
        )
        thread = threading.Thread(target=worker.drain, daemon=True)
        thread.start()
        return worker, thread

    def test_rows_assembled_from_worker_fleet_match_serial(
        self, tmp_path, scenarios, serial_rows
    ):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        backend = QueueBackend(queue, tmp_path / "runs", poll_interval=0.02)
        frontend = SweepFrontend(backend, default_deadline_s=120.0)
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, resp = post(base, [{
                "policies": list(POLICIES),
                "scenarios": [s.name for s in scenarios],
            }])
            assert status == 202
            _, thread = self._drain_in_thread(queue, tmp_path)
            rows, summary = stream(base, resp["request_ids"][0])
            thread.join(timeout=60)
            assert summary["state"] == "done" and summary["error"] is None
            assert len(rows) == len(POLICIES) * len(scenarios)
            for row in rows:
                assert row["metrics"] == serial_rows[
                    (row["policy_spec"], row["scenario"])
                ]
            view = get_json(base, "/v1/queue")
            assert view["configured"] is True
            assert view["counts"]["done"] == len(rows)
            assert view["dead"] == []
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()

    def test_dead_lettered_job_surfaces_as_stream_error(self, tmp_path, scenarios):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0, max_attempts=1,
                         backoff_base=0.0, backoff_cap=0.0)
        backend = QueueBackend(queue, tmp_path / "runs", poll_interval=0.02)
        frontend = SweepFrontend(backend, default_deadline_s=60.0)
        server = serve_in_thread(frontend)
        base = f"http://127.0.0.1:{server.port}"
        try:
            _, resp = post(base, [{
                "policies": ["single:no-such-model"],
                "scenarios": [scenarios[0].name],
            }])
            _, thread = self._drain_in_thread(queue, tmp_path)
            rows, summary = stream(base, resp["request_ids"][0])
            thread.join(timeout=60)
            assert rows == []
            assert summary["state"] == "failed"
            assert "dead-lettered" in summary["error"]
            view = get_json(base, "/v1/queue")
            assert len(view["dead"]) == 1
            assert view["dead"][0]["policy_spec"] == "single:no-such-model"
        finally:
            server.shutdown()
            server.server_close()
            frontend.close()
