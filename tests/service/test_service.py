"""Service-tier tests: concurrency, dedup, determinism, warm re-serves.

The acceptance bar for the tier (pinned here, re-proven at larger scale
by ``scripts/loadgen.py`` in CI): a multi-worker service run of many
overlapping sweep requests over generated scenarios is field-for-field
identical to a serial :meth:`ExperimentRunner.sweep`, executes each
deduplicated (policy, scenario) job at most once, and a warm re-serve
executes zero runs and zero trace builds.
"""

import pytest

from repro.data import ScenarioMatrix
from repro.models import default_zoo
from repro.runtime import ExperimentRunner, RunStore, TraceCache, TraceStore
from repro.service import (
    ServiceError,
    SweepRequest,
    SweepService,
    overlapping_requests,
    policy_resolver,
)

# Generated flights (not hand-written ones): the service must serve the
# grammar matrix exactly like the library.  Budgets stay small for tier-1.
SERVICE_MATRIX = ScenarioMatrix(
    name="svc",
    compositions=(("loiter",), ("popup", "pan_burst"), ("crossing",)),
    regimes=("day", "indoor"),
    seeds=(8,),
    frame_budgets=(24,),
)

POLICIES = ("single:yolov7-tiny@gpu", "marlin-tiny", "single:ssd-mobilenet-v2-320@gpu")


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


@pytest.fixture(scope="module")
def scenarios():
    return SERVICE_MATRIX.scenarios()


@pytest.fixture(scope="module")
def serial_rows(zoo, scenarios):
    """The ground truth: one serial foreground sweep over the full grid."""
    resolve = policy_resolver()
    runner = ExperimentRunner(cache=TraceCache(zoo))
    result = runner.sweep([resolve(spec) for spec in POLICIES], scenarios)
    return {
        (name, m.scenario_name): m for name, rows in result.items() for m in rows
    }


class TestAcceptance:
    def test_overlapping_requests_match_serial_sweep_exactly(
        self, tmp_path, zoo, scenarios, serial_rows
    ):
        # >= 8 overlapping requests, 4 workers, generated scenarios: the
        # tentpole acceptance criterion, end to end.
        requests = overlapping_requests(POLICIES, scenarios, count=8, seed=21)
        with SweepService(
            zoo=zoo,
            trace_store=tmp_path / "traces",
            run_store=tmp_path / "runs",
            workers=4,
        ) as service:
            handles = service.serve(requests)
            results = [handle.result() for handle in handles]

            # Field-for-field equality with the serial runner, per request.
            for request, result in zip(requests, results, strict=True):
                for policy_name, rows in result.items():
                    for metrics in rows:
                        assert metrics == serial_rows[(policy_name, metrics.scenario_name)]
                # Shape: every requested (policy, scenario) cell is present.
                assert sum(len(rows) for rows in result.values()) == len(
                    request.policies
                ) * len(request.scenarios)

            # Dedup: each distinct (policy, scenario) job ran at most once.
            distinct = {
                (spec, scenario.fingerprint())
                for request in requests
                for spec in request.policies
                for scenario in request.resolve_scenarios()
            }
            assert service.jobs_scheduled == len(distinct)
            assert service.runs_executed <= len(distinct)
            assert service.runs_executed + service.run_store_hits == len(distinct)
            assert service.jobs_coalesced > 0, "the mix must actually overlap"
            assert service.corrupt_entries == 0

        # Warm re-serve against the same stores: zero runs, zero builds.
        with SweepService(
            zoo=zoo,
            trace_store=tmp_path / "traces",
            run_store=tmp_path / "runs",
            workers=4,
        ) as warm:
            warm_results = [handle.result() for handle in warm.serve(requests)]
            assert warm.runs_executed == 0, "warm re-serve re-executed runs"
            assert warm.trace_builds == 0, "warm re-serve rebuilt traces"
            assert warm.trace_store_hits == 0, "metrics hits must not touch traces"
            assert warm.corrupt_entries == 0
        assert warm_results == results, "warm metrics diverged from cold metrics"

    def test_streaming_results_cover_every_cell(self, zoo, scenarios):
        request = SweepRequest(
            policies=POLICIES[:2], scenarios=tuple(scenarios[:2]), request_id="stream"
        )
        with SweepService(zoo=zoo, workers=2) as service:
            rows = list(service.submit(request).results())
        assert {(spec, name) for spec, name, _ in rows} == {
            (spec, s.name) for spec in request.policies for s in scenarios[:2]
        }
        for _spec, name, metrics in rows:
            assert metrics.scenario_name == name


class TestDedupAndSharing:
    def test_identical_requests_share_every_job(self, zoo, scenarios):
        request = SweepRequest(
            policies=("marlin-tiny",), scenarios=tuple(scenarios[:3]), request_id="a"
        )
        clone = SweepRequest(
            policies=("marlin-tiny",), scenarios=tuple(scenarios[:3]), request_id="b"
        )
        with SweepService(zoo=zoo, workers=3) as service:
            first = service.submit(request).result()
            second = service.submit(clone).result()
            assert service.jobs_scheduled == 3
            assert service.jobs_coalesced == 3
            assert service.runs_executed == 3
        assert first == second

    def test_storeless_service_still_dedups_in_flight(self, zoo, scenarios):
        # No run store: dedup comes purely from the shared job table.
        requests = overlapping_requests(POLICIES[:2], scenarios[:2], count=6, seed=3)
        with SweepService(zoo=zoo, workers=4) as service:
            results = service.run(requests)
        assert service.runs_executed == service.jobs_scheduled
        assert len(results) == 6

    def test_duplicate_cells_within_one_request_coalesce(self, zoo, scenarios):
        request = SweepRequest(
            policies=("marlin-tiny",),
            scenarios=(scenarios[0], scenarios[0]),
            request_id="dup",
        )
        with SweepService(zoo=zoo, workers=2) as service:
            result = service.submit(request).result()
            assert service.jobs_scheduled == 1
            assert service.jobs_coalesced == 1
        (rows,) = result.values()
        assert len(rows) == 2  # both requested cells are answered


class TestValidationAndLifecycle:
    def test_unknown_policy_fails_at_submit(self, zoo, scenarios):
        with SweepService(zoo=zoo, workers=1) as service:
            with pytest.raises(ServiceError, match="unknown policy"):
                service.submit(
                    SweepRequest(policies=("quantum",), scenarios=(scenarios[0],))
                )
            assert service.jobs_scheduled == 0

    def test_unknown_scenario_fails_at_submit(self, zoo):
        with (
            SweepService(zoo=zoo, workers=1) as service,
            pytest.raises(ServiceError, match="known scenarios"),
        ):
            service.submit(
                SweepRequest(policies=("marlin-tiny",), scenarios=("s99_nope",))
            )

    def test_closed_service_rejects_requests(self, zoo, scenarios):
        service = SweepService(zoo=zoo, workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(
                SweepRequest(policies=("marlin-tiny",), scenarios=(scenarios[0],))
            )

    def test_soc_instance_rejected(self, zoo):
        from repro.sim import xavier_nx_with_oakd

        with pytest.raises(ValueError, match="factory"):
            SweepService(zoo=zoo, soc=xavier_nx_with_oakd())

    def test_run_store_respects_fingerprintless_policies(self, zoo, scenarios, tmp_path):
        # A policy without a content identity is served but never
        # persisted (the store cannot key it) — and never crashes the job.
        from repro.baselines import SingleModelPolicy

        class AnonymousPolicy(SingleModelPolicy):
            def fingerprint(self):
                raise NotImplementedError("no identity")

        def resolver(spec):
            assert spec == "anon"
            return AnonymousPolicy("yolov7-tiny", "gpu")

        with SweepService(
            zoo=zoo, workers=2, run_store=tmp_path / "runs", policy_resolver=resolver
        ) as service:
            result = service.submit(
                SweepRequest(policies=("anon",), scenarios=(scenarios[0],))
            ).result()
            assert service.runs_executed == 1
            assert service.run_store_hits == 0
        assert len(RunStore(tmp_path / "runs")) == 0
        (rows,) = result.values()
        assert rows[0].scenario_name == scenarios[0].name


class TestResilienceAndBounds:
    def test_transient_job_failure_does_not_poison_the_cell(self, zoo, scenarios):
        # One flaky execution must fail the requests that raced it, but a
        # later submit of the same (policy, scenario) cell retries fresh.
        calls = {"n": 0}

        def flaky_resolver(spec):
            # Call 1 is submit-time validation, call 2 the first job's
            # fresh-policy resolution (the simulated transient failure),
            # calls 3/4 the retry's validation + execution.
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("transient: store hiccup")
            return policy_resolver()(spec)

        request = SweepRequest(policies=("marlin-tiny",), scenarios=(scenarios[0],))
        with SweepService(zoo=zoo, workers=1, policy_resolver=flaky_resolver) as service:
            handle = service.submit(request)
            with pytest.raises(RuntimeError, match="transient"):
                handle.result()
            retry = service.submit(request)
            (rows,) = retry.result().values()
        assert rows[0].scenario_name == scenarios[0].name

    def test_trace_memo_is_bounded(self, zoo, scenarios):
        with SweepService(zoo=zoo, workers=1, trace_cache_size=2) as service:
            for scenario in scenarios[:4]:
                service.submit(
                    SweepRequest(policies=("marlin-tiny",), scenarios=(scenario,))
                ).result()
                assert len(service._traces) <= 2
            assert service.runs_executed == 4

    def test_evicted_trace_reloads_from_store(self, zoo, scenarios, tmp_path):
        with SweepService(
            zoo=zoo, workers=1, trace_store=tmp_path / "t", trace_cache_size=1
        ) as service:
            for scenario in scenarios[:3]:
                service.submit(
                    SweepRequest(policies=("marlin-tiny",), scenarios=(scenario,))
                ).result()
            # Re-serve the first (evicted) scenario with a new policy: the
            # trace comes back from the store, not a rebuild.
            service.submit(
                SweepRequest(policies=("single:yolov7-tiny@gpu",), scenarios=(scenarios[0],))
            ).result()
            assert service.trace_builds == 3
            assert service.trace_store_hits == 1


class TestSharedStoreInterop:
    def test_service_hits_runner_populated_stores(self, tmp_path, zoo, scenarios):
        # The service and the foreground runner speak the same store
        # format: a runner-populated store warms the service completely.
        resolve = policy_resolver()
        runner = ExperimentRunner(
            zoo,
            store=TraceStore(tmp_path / "traces"),
            run_store=RunStore(tmp_path / "runs"),
        )
        serial = runner.sweep([resolve(s) for s in POLICIES[:2]], scenarios[:2])
        with SweepService(
            zoo=zoo,
            trace_store=tmp_path / "traces",
            run_store=tmp_path / "runs",
            workers=4,
        ) as service:
            served = service.submit(
                SweepRequest(policies=POLICIES[:2], scenarios=tuple(scenarios[:2]))
            ).result()
            assert service.runs_executed == 0
            assert service.trace_builds == 0
        assert served == serial


class TestCloseRace:
    def test_close_racing_submit_never_strands_a_handle(self, zoo, scenarios, tmp_path):
        """Regression: ``submit`` used to schedule pool tasks after
        releasing the state lock, so a concurrent ``close`` could shut
        the pool between registration and scheduling — RuntimeError out
        of ``submit`` and a ``SweepHandle.result()`` that never returns.
        Now submit either succeeds fully or raises ServiceError, and
        every successfully returned handle resolves."""
        import threading

        request = SweepRequest(policies=("marlin-tiny",), scenarios=(scenarios[0],))
        for round_index in range(6):
            service = SweepService(
                zoo=zoo, workers=2,
                trace_store=tmp_path / "traces", run_store=tmp_path / "runs",
            )
            handles: list = []
            errors: list = []
            barrier = threading.Barrier(5)

            def submit_one() -> None:
                barrier.wait()
                try:
                    handles.append(service.submit(request))
                except ServiceError:
                    errors.append("closed")
                except BaseException as exc:  # the old bug: RuntimeError
                    errors.append(f"unexpected: {exc!r}")

            threads = [threading.Thread(target=submit_one) for _ in range(4)]
            for thread in threads:
                thread.start()
            barrier.wait()
            service.close()
            for thread in threads:
                thread.join()
            assert all(error == "closed" for error in errors), errors

            outcomes: list = []

            def resolve_all() -> None:
                for handle in handles:
                    try:
                        handle.result()
                        outcomes.append("done")
                    except ServiceError:
                        outcomes.append("failed-loudly")

            waiter = threading.Thread(target=resolve_all)
            waiter.start()
            waiter.join(timeout=60)
            assert not waiter.is_alive(), "a SweepHandle.result() hung after close()"
            assert len(outcomes) == len(handles)
