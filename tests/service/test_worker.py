"""Queue-worker tests: execute/commit/warm-complete, crash recovery.

The cheap tiers run in-process (threads + :class:`WorkerKilled`); the
integration tier SIGKILLs a real ``python -m repro work`` subprocess
mid-job via a fault plan and proves a second worker recovers the lease
and the result is the serial one, bit for bit.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.data import ScenarioMatrix
from repro.models import default_zoo
from repro.runtime import RunStore, TraceStore, run_policy
from repro.runtime.runstore import RunKey
from repro.runtime.trace import ScenarioTrace
from repro.service import (
    JobQueue,
    QueueWorker,
    SweepRequest,
    WorkerKilled,
    decompose,
    policy_resolver,
)
from repro.sim.soc import xavier_nx_with_oakd
from repro.verify import FaultEvent, FaultHooks, FaultPlan

MATRIX = ScenarioMatrix(
    name="qw",
    compositions=(("loiter",), ("popup",)),
    regimes=("day",),
    seeds=(4,),
    frame_budgets=(16,),
)

ENGINE_SEED = 1234


@pytest.fixture(scope="module")
def scenarios():
    return MATRIX.scenarios()


@pytest.fixture(scope="module")
def jobs(scenarios):
    return decompose(
        SweepRequest(policies=("marlin-tiny",), scenarios=tuple(scenarios))
    )


def run_key_for(job):
    policy = policy_resolver()(job.policy_spec)
    return RunKey(
        policy_name=policy.name,
        policy_fingerprint=policy.fingerprint(),
        scenario_fingerprint=job.key[1],
        zoo_fingerprint=default_zoo().fingerprint(),
        soc_fingerprint=xavier_nx_with_oakd().fingerprint(),
        engine_seed=ENGINE_SEED,
    )


class TestDrain:
    def test_drain_executes_commits_and_completes(self, tmp_path, jobs):
        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        queue.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        worker = QueueWorker(queue, run_store=tmp_path / "runs",
                             trace_store=tmp_path / "traces", worker_id="wA")
        worker.drain()
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)
        assert worker.runs_executed == len(jobs)
        store = RunStore(tmp_path / "runs")
        assert len(store) == len(jobs)
        # Bit-equality with the serial path, straight from the store.
        zoo = default_zoo()
        trace_store = TraceStore(tmp_path / "traces")
        for job in jobs:
            stored = store.load(run_key_for(job))
            trace = trace_store.load(job.scenario, zoo)
            serial = run_policy(policy_resolver()(job.policy_spec), trace,
                                engine_seed=ENGINE_SEED, fast=True)
            assert stored.records == serial.records

    def test_second_queue_warm_completes_from_run_store(self, tmp_path, jobs):
        first = JobQueue(tmp_path / "q1")
        first.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        QueueWorker(first, run_store=tmp_path / "runs",
                    trace_store=tmp_path / "traces", worker_id="wA").drain()
        # A fresh queue of the same jobs over the same stores: nothing
        # executes, every job warm-completes off the committed runs.
        second = JobQueue(tmp_path / "q2")
        second.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        warm = QueueWorker(second, run_store=tmp_path / "runs",
                           trace_store=tmp_path / "traces", worker_id="wB")
        warm.drain()
        assert second.counts()["done"] == len(jobs)
        assert warm.runs_executed == 0
        assert warm.trace_builds == 0
        assert warm.warm_completes == len(jobs)

    def test_unresolvable_spec_dead_letters_loudly(self, tmp_path, scenarios):
        bad = decompose(SweepRequest(policies=("single:no-such-model",),
                                     scenarios=(scenarios[0],)))
        queue = JobQueue(tmp_path / "q", max_attempts=2,
                         backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue_all(bad, engine_seed=ENGINE_SEED)
        worker = QueueWorker(queue, run_store=tmp_path / "runs", worker_id="wA")
        worker.drain()
        assert queue.counts()["dead"] == 1
        [record] = [r for r in queue.records() if r["state"] == "dead"]
        assert "no-such-model" in record["error"]

    def test_max_jobs_stops_early(self, tmp_path, jobs):
        queue = JobQueue(tmp_path / "q")
        queue.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        QueueWorker(queue, run_store=tmp_path / "runs",
                    trace_store=tmp_path / "traces", worker_id="wA",
                    max_jobs=1).drain()
        assert queue.counts()["done"] == 1
        assert not queue.drained()


class TestCrashRecovery:
    def test_killed_worker_job_migrates_to_survivor(self, tmp_path, jobs):
        queue = JobQueue(tmp_path / "q", lease_duration=0.3,
                         backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        plan = FaultPlan(events=(FaultEvent("wA", 0, "kill"),))
        victim = QueueWorker(queue, run_store=tmp_path / "runs",
                             trace_store=tmp_path / "traces", worker_id="wA",
                             hooks=FaultHooks(plan), poll_interval=0.01)
        with pytest.raises(WorkerKilled):
            victim.drain()
        assert queue.counts()["leased"] == 1  # the victim took it down holding this
        time.sleep(0.35)  # one lease horizon: crash detection
        survivor = QueueWorker(queue, run_store=tmp_path / "runs",
                               trace_store=tmp_path / "traces", worker_id="wB",
                               poll_interval=0.01)
        survivor.drain()
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)
        assert len(RunStore(tmp_path / "runs")) == len(jobs)


class TestProcessIntegration:
    def test_sigkill_mid_job_then_recovery_over_shared_dir(self, tmp_path, jobs):
        """A real ``repro work`` process dies by SIGKILL mid-job; a second
        process recovers the lease and finishes.  The whole crash story,
        with nothing simulated."""
        zoo = default_zoo()
        trace_store = TraceStore(tmp_path / "traces")
        for job in jobs:
            if trace_store.load(job.scenario, zoo) is None:
                trace_store.save(ScenarioTrace.build(job.scenario, zoo), zoo)
        queue = JobQueue(tmp_path / "q", lease_duration=1.0,
                         backoff_base=0.0, backoff_cap=0.0)
        queue.enqueue_all(jobs, engine_seed=ENGINE_SEED)
        plan_path = tmp_path / "plan.json"
        FaultPlan(events=(FaultEvent("w0", 0, "kill"),)).save(plan_path)

        env = dict(os.environ)
        package_root = Path(repro.__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(package_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )

        def work(worker_id: str, *extra: str) -> subprocess.CompletedProcess:
            return subprocess.run(
                [sys.executable, "-m", "repro", "work", str(tmp_path / "q"),
                 "--run-store", str(tmp_path / "runs"),
                 "--trace-store", str(tmp_path / "traces"),
                 "--worker-id", worker_id, "--lease", "1.0", "--poll", "0.01",
                 *extra],
                env=env, capture_output=True, text=True, timeout=120,
            )

        killed = work("w0", "--fault-plan", str(plan_path))
        assert killed.returncode == -9, (killed.returncode, killed.stderr)
        assert queue.counts()["leased"] == 1

        time.sleep(1.1)  # lease horizon passes in real time
        recovered = work("w1")
        assert recovered.returncode == 0, recovered.stderr
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)
        store = RunStore(tmp_path / "runs")
        for job in jobs:
            stored = store.load(run_key_for(job))
            assert stored is not None
            serial = run_policy(policy_resolver()(job.policy_spec),
                                trace_store.load(job.scenario, zoo),
                                engine_seed=ENGINE_SEED, fast=True)
            assert stored.records == serial.records
        # The kill left no torn bytes and no index drift anywhere.
        for audited in (queue, store, trace_store):
            _, problems = audited.audit()
            assert problems == []


class TestGracefulShutdown:
    """SIGTERM-shaped teardown: the lease goes back to pending, not limbo."""

    def test_terminated_worker_releases_lease_for_the_survivors(
        self, tmp_path, jobs
    ):
        import signal

        from repro.service import WorkerHooks, WorkerTerminated

        queue = JobQueue(tmp_path / "q", lease_duration=30.0)
        queue.enqueue_all(jobs, engine_seed=ENGINE_SEED)

        class Interrupt(WorkerHooks):
            """SIGTERM arriving right after the claim, before any work."""

            def claimed(self, worker, lease):
                raise WorkerTerminated(signal.SIGTERM)

        dying = QueueWorker(
            queue, run_store=tmp_path / "runs", trace_store=tmp_path / "traces",
            worker_id="dying", hooks=Interrupt(),
        )
        with pytest.raises(WorkerTerminated) as excinfo:
            dying.drain()
        assert excinfo.value.signum == signal.SIGTERM
        # run()'s shutdown path: release, don't abandon.  The job is
        # immediately claimable with its attempt refunded — the 30 s
        # lease horizon never enters the picture.
        assert dying.release_current() is True
        assert dying.release_current() is False  # idempotent
        assert queue.jobs_released == 1
        assert queue.counts()["leased"] == 0
        assert queue.counts()["pending"] == len(jobs)

        survivor = QueueWorker(
            queue, run_store=tmp_path / "runs", trace_store=tmp_path / "traces",
            worker_id="survivor",
        )
        assert survivor.drain() == len(jobs)
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)

    def test_stop_breaks_idle_polling(self, tmp_path):
        import threading

        queue = JobQueue(tmp_path / "q")
        worker = QueueWorker(
            queue, run_store=tmp_path / "runs",
            exit_when_drained=False, poll_interval=0.05,
        )
        thread = threading.Thread(target=worker.drain)
        thread.start()
        time.sleep(0.3)
        assert thread.is_alive()  # idling through an empty queue
        worker.stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_sigterm_to_idle_worker_process_exits_143(self, tmp_path):
        """A real ``repro work --idle`` process, terminated the way a
        supervisor does it, exits ``128 + SIGTERM`` with nothing leased."""
        import signal

        env = dict(os.environ)
        package_root = Path(repro.__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(package_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        queue_dir = tmp_path / "q"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", str(queue_dir),
             "--run-store", str(tmp_path / "runs"), "--poll", "0.01", "--idle"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # The worker creates the queue directory just before it
            # installs its signal handlers and starts polling.
            deadline = time.monotonic() + 60.0
            while not queue_dir.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert queue_dir.exists(), "worker never started"
            time.sleep(0.5)  # cover the mkdir -> handler-install gap
            proc.terminate()
            code = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()
            proc.stderr.close()
        assert code == 128 + signal.SIGTERM
