"""Unit tests for request decomposition, dedup keys, and jobs-file parsing."""

import pytest

from repro.data import scenario_by_name
from repro.service import (
    ServiceError,
    SweepRequest,
    decompose,
    policy_resolver,
    requests_from_payload,
)


class TestSweepRequest:
    def test_empty_axes_rejected(self):
        with pytest.raises(ServiceError, match="no policies"):
            SweepRequest(policies=(), scenarios=("s3_indoor_close_wall",))
        with pytest.raises(ServiceError, match="no scenarios"):
            SweepRequest(policies=("marlin",), scenarios=())

    def test_resolves_names_and_passes_objects_through(self):
        live = scenario_by_name("s3_indoor_close_wall").scaled(0.05)
        request = SweepRequest(
            policies=("marlin",), scenarios=("s4_indoor_clutter", live)
        )
        resolved = request.resolve_scenarios()
        assert resolved[0].name == "s4_indoor_clutter"
        assert resolved[1] is live

    def test_unknown_scenario_name_is_a_service_error(self):
        request = SweepRequest(policies=("marlin",), scenarios=("s99_nope",))
        with pytest.raises(ServiceError, match="known scenarios"):
            request.resolve_scenarios()


class TestDecompose:
    def test_policy_major_order_and_dedup_within_request(self):
        request = SweepRequest(
            policies=("marlin-tiny", "single:yolov7-tiny@gpu"),
            scenarios=("s3_indoor_close_wall", "s4_indoor_clutter", "s3_indoor_close_wall"),
        )
        jobs = decompose(request)
        assert len(jobs) == 6  # every requested cell appears, duplicates included
        assert len({job.key for job in jobs}) == 4  # but only 4 distinct jobs
        assert [j.policy_spec for j in jobs[:3]] == ["marlin-tiny"] * 3
        # The duplicate scenario maps onto the *same* job object.
        assert jobs[0] is jobs[2]

    def test_key_is_content_derived(self):
        a = scenario_by_name("s3_indoor_close_wall")
        jobs = decompose(SweepRequest(policies=("marlin",), scenarios=(a,)))
        assert jobs[0].key == ("marlin", a.fingerprint())


class TestPolicyResolver:
    def test_resolves_fresh_instances(self):
        resolve = policy_resolver()
        a, b = resolve("marlin-tiny"), resolve("marlin-tiny")
        assert a is not b and a.name == b.name

    def test_single_spec_with_accelerator(self):
        policy = policy_resolver()("single:yolov7@dla0")
        assert policy.name == "single:yolov7@dla0"

    def test_unknown_spec_raises(self):
        with pytest.raises(ServiceError, match="unknown policy"):
            policy_resolver()("quantum")

    def test_shift_requires_a_bundle(self):
        with pytest.raises(ServiceError, match="bundle"):
            policy_resolver()("shift")


class TestJobsPayload:
    def test_bare_list_and_wrapped_object(self):
        entry = {"policies": ["marlin"], "scenarios": ["s3_indoor_close_wall"]}
        for payload in ([entry], {"requests": [entry]}):
            requests = requests_from_payload(payload)
            assert len(requests) == 1
            assert requests[0].policies == ("marlin",)
            assert requests[0].request_id == "request-0"

    def test_explicit_ids_survive(self):
        payload = [{"id": "r7", "policies": ["marlin"], "scenarios": ["s5_far_patrol"]}]
        assert requests_from_payload(payload)[0].request_id == "r7"

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a list", "must be a JSON list"),
            ([], "no requests"),
            ({"requests": "nope"}, '"requests" list'),
            ([42], "expected an object"),
            ([{"policies": [], "scenarios": ["s"]}], "'policies'"),
            ([{"policies": ["marlin"], "scenarios": [3]}], "'scenarios'"),
            ([{"policies": ["marlin"]}], "'scenarios'"),
            ([{"id": 9, "policies": ["marlin"], "scenarios": ["s"]}], "'id'"),
        ],
    )
    def test_malformed_payloads_fail_loudly(self, payload, match):
        with pytest.raises(ServiceError, match=match):
            requests_from_payload(payload)
