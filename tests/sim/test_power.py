"""Tests for power rails and energy accounting."""

import pytest

from repro.sim import EnergyMeter, EnergySample


class TestEnergySample:
    def test_energy_is_power_times_time(self):
        sample = EnergySample(rail="VDD_GPU", power_watts=10.0, duration_s=0.5)
        assert sample.energy_joules == 5.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergySample(rail="r", power_watts=-1.0, duration_s=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergySample(rail="r", power_watts=1.0, duration_s=-1.0)

    def test_zero_duration_is_zero_energy(self):
        assert EnergySample(rail="r", power_watts=5.0, duration_s=0.0).energy_joules == 0.0


class TestEnergyMeter:
    def test_starts_empty(self):
        meter = EnergyMeter()
        assert meter.total_joules == 0.0
        assert meter.sample_count == 0
        assert meter.rails() == []

    def test_accumulates_per_rail(self):
        meter = EnergyMeter()
        meter.record_draw("VDD_GPU", 10.0, 1.0)
        meter.record_draw("VDD_GPU", 10.0, 0.5)
        meter.record_draw("VDD_CV", 5.0, 1.0)
        assert meter.rail_joules("VDD_GPU") == 15.0
        assert meter.rail_joules("VDD_CV") == 5.0
        assert meter.total_joules == 20.0
        assert meter.sample_count == 3

    def test_unknown_rail_is_zero(self):
        assert EnergyMeter().rail_joules("nope") == 0.0

    def test_rails_sorted(self):
        meter = EnergyMeter()
        meter.record_draw("b", 1, 1)
        meter.record_draw("a", 1, 1)
        assert meter.rails() == ["a", "b"]

    def test_record_returns_sample(self):
        meter = EnergyMeter()
        sample = meter.record_draw("r", 2.0, 3.0)
        assert sample.energy_joules == 6.0

    def test_snapshot_is_a_copy(self):
        meter = EnergyMeter()
        meter.record_draw("r", 1.0, 1.0)
        snap = meter.snapshot()
        snap["r"] = 999.0
        assert meter.rail_joules("r") == 1.0

    def test_reset(self):
        meter = EnergyMeter()
        meter.record_draw("r", 1.0, 1.0)
        meter.reset()
        assert meter.total_joules == 0.0
        assert meter.sample_count == 0
