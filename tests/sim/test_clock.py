"""Tests for the virtual clock."""

import pytest

from repro.sim import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_advance_zero_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0
        clock.advance_to(1.0)  # no-op going backwards
        assert clock.now == 3.0

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.reset()
        assert clock.now == 0.0
        with pytest.raises(ValueError):
            clock.reset(-5)
