"""Tests for SoC assembly and accelerators."""

import pytest

from repro.sim import (
    Accelerator,
    AcceleratorClass,
    MemoryPool,
    SoC,
    gpu_only_soc,
    xavier_nx_with_oakd,
)


class TestAccelerator:
    def test_supports_follows_profiles(self):
        soc = xavier_nx_with_oakd()
        oakd = soc.accelerator("oakd")
        assert oakd.supports("yolov7")
        assert not oakd.supports("ssd-resnet50")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Accelerator(
                name="", accel_class=AcceleratorClass.GPU,
                memory=MemoryPool("m", 10), power_rail="r",
            )

    def test_resident_models_tracks_pool(self):
        soc = xavier_nx_with_oakd()
        gpu = soc.accelerator("gpu")
        gpu.memory.allocate("yolov7", 950.0)
        assert gpu.resident_models() == ["yolov7"]


class TestXavierPlatform:
    def test_default_composition(self):
        soc = xavier_nx_with_oakd()
        names = [a.name for a in soc.accelerators]
        assert names == ["cpu", "gpu", "dla0", "oakd"]

    def test_two_dla_variant(self):
        soc = xavier_nx_with_oakd(dla_count=2)
        names = [a.name for a in soc.accelerators]
        assert "dla0" in names and "dla1" in names

    def test_cpu_not_schedulable(self):
        soc = xavier_nx_with_oakd()
        schedulable = [a.name for a in soc.schedulable_accelerators()]
        assert "cpu" not in schedulable
        assert set(schedulable) == {"gpu", "dla0", "oakd"}

    def test_18_schedulable_pairs_for_paper_zoo(self):
        from repro.models import default_zoo

        soc = xavier_nx_with_oakd()
        pairs = soc.schedulable_pairs(default_zoo().names())
        assert len(pairs) == 18

    def test_lookup_unknown_accelerator(self):
        with pytest.raises(KeyError):
            xavier_nx_with_oakd().accelerator("tpu")

    def test_duplicate_names_rejected(self):
        accel = Accelerator(
            name="x", accel_class=AcceleratorClass.GPU,
            memory=MemoryPool("m", 10), power_rail="r",
        )
        with pytest.raises(ValueError):
            SoC(name="bad", accelerators=[accel, accel])

    def test_empty_soc_rejected(self):
        with pytest.raises(ValueError):
            SoC(name="empty", accelerators=[])

    def test_reset_clears_state(self):
        soc = xavier_nx_with_oakd()
        soc.accelerator("gpu").memory.allocate("yolov7", 950.0)
        soc.meter.record_draw("VDD_GPU", 10, 1)
        soc.clock.advance(5)
        soc.reset()
        assert soc.accelerator("gpu").memory.used_mb == 0.0
        assert soc.meter.total_joules == 0.0
        assert soc.clock.now == 0.0

    def test_negative_dla_count_rejected(self):
        with pytest.raises(ValueError):
            xavier_nx_with_oakd(dla_count=-1)


class TestGpuOnly:
    def test_composition(self):
        soc = gpu_only_soc()
        assert [a.name for a in soc.accelerators] == ["gpu"]

    def test_8_pairs_for_paper_zoo(self):
        from repro.models import default_zoo

        assert len(gpu_only_soc().schedulable_pairs(default_zoo().names())) == 8
