"""Tests for the execution engine."""

import pytest

from repro.sim import ExecutionEngine, perf_point, AcceleratorClass, load_cost, xavier_nx_with_oakd


@pytest.fixture
def soc():
    return xavier_nx_with_oakd()


class TestRunInference:
    def test_advances_clock_and_charges_energy(self, soc):
        engine = ExecutionEngine(soc, latency_jitter=0.0, power_jitter=0.0)
        gpu = soc.accelerator("gpu")
        record = engine.run_inference("yolov7", gpu)
        expected = perf_point("yolov7", AcceleratorClass.GPU)
        assert record.latency_s == expected.latency_s
        assert record.power_w == expected.power_w
        assert record.energy_j == pytest.approx(expected.energy_j)
        assert soc.clock.now == pytest.approx(expected.latency_s)
        assert soc.meter.rail_joules("VDD_GPU") == pytest.approx(expected.energy_j)

    def test_no_clock_advance_option(self, soc):
        engine = ExecutionEngine(soc, latency_jitter=0.0, power_jitter=0.0)
        engine.run_inference("yolov7", soc.accelerator("gpu"), advance_clock=False)
        assert soc.clock.now == 0.0
        assert soc.meter.total_joules > 0.0  # energy still charged

    def test_jitter_reproducible_per_seed(self, soc):
        a = ExecutionEngine(soc, seed=7).run_inference("yolov7", soc.accelerator("gpu"))
        soc.reset()
        b = ExecutionEngine(soc, seed=7).run_inference("yolov7", soc.accelerator("gpu"))
        assert a.latency_s == b.latency_s and a.power_w == b.power_w

    def test_jitter_bounded(self, soc):
        engine = ExecutionEngine(soc, seed=3)
        expected = perf_point("yolov7", AcceleratorClass.GPU)
        for _ in range(100):
            record = engine.run_inference("yolov7", soc.accelerator("gpu"), advance_clock=False)
            assert 0.5 * expected.latency_s <= record.latency_s <= 1.5 * expected.latency_s
            assert 0.5 * expected.power_w <= record.power_w <= 1.5 * expected.power_w

    def test_jitter_averages_to_profile_mean(self, soc):
        engine = ExecutionEngine(soc, seed=11)
        expected = perf_point("yolov7", AcceleratorClass.GPU)
        samples = [
            engine.run_inference("yolov7", soc.accelerator("gpu"), advance_clock=False).latency_s
            for _ in range(400)
        ]
        assert sum(samples) / len(samples) == pytest.approx(expected.latency_s, rel=0.02)

    def test_unsupported_pair_raises(self, soc):
        engine = ExecutionEngine(soc)
        with pytest.raises(KeyError):
            engine.run_inference("ssd-resnet50", soc.accelerator("oakd"))

    def test_negative_jitter_rejected(self, soc):
        with pytest.raises(ValueError):
            ExecutionEngine(soc, latency_jitter=-0.1)


class TestRunLoad:
    def test_load_costs_time_and_energy(self, soc):
        engine = ExecutionEngine(soc, latency_jitter=0.0, power_jitter=0.0)
        record = engine.run_load("yolov7", soc.accelerator("gpu"))
        expected = load_cost("yolov7", AcceleratorClass.GPU)
        assert record.load_time_s == pytest.approx(expected.load_time_s)
        assert record.memory_mb == expected.memory_mb
        assert soc.clock.now == pytest.approx(expected.load_time_s)

    def test_load_does_not_touch_memory_pool(self, soc):
        engine = ExecutionEngine(soc)
        engine.run_load("yolov7", soc.accelerator("gpu"))
        assert soc.accelerator("gpu").memory.used_mb == 0.0


class TestOverhead:
    def test_charge_overhead(self, soc):
        engine = ExecutionEngine(soc)
        engine.charge_overhead("VDD_CPU", 3.0, 0.002)
        assert soc.clock.now == pytest.approx(0.002)
        assert soc.meter.rail_joules("VDD_CPU") == pytest.approx(0.006)
