"""Tests for the Table IV/I performance profiles."""

import pytest

from repro.sim import (
    AcceleratorClass,
    PerfPoint,
    has_profile,
    load_cost,
    paper_model_names,
    perf_point,
    register_profile,
    supported_classes,
)

GPU = AcceleratorClass.GPU
DLA = AcceleratorClass.DLA
OAKD = AcceleratorClass.OAKD
CPU = AcceleratorClass.CPU


class TestTableIVFidelity:
    def test_eight_paper_models(self):
        assert len(paper_model_names()) == 8

    def test_yolov7_gpu_matches_table_iv(self):
        point = perf_point("yolov7", GPU)
        assert point.latency_s == 0.130
        assert point.power_w == 15.14
        assert point.energy_j == pytest.approx(1.968, abs=0.01)

    def test_yolov7_dla_matches_table_iv(self):
        point = perf_point("yolov7", DLA)
        assert point.latency_s == 0.118
        assert point.energy_j == pytest.approx(0.656, abs=0.01)

    def test_yolov7_oakd_matches_table_iv(self):
        point = perf_point("yolov7", OAKD)
        assert point.latency_s == 0.894
        assert point.energy_j == pytest.approx(1.391, abs=0.01)

    def test_cpu_profiles_from_table_i(self):
        assert perf_point("yolov7", CPU).latency_s == 1.65
        assert perf_point("yolov7-tiny", CPU).latency_s == 0.38

    def test_dla_power_always_below_gpu(self):
        for model in paper_model_names():
            assert perf_point(model, DLA).power_w < perf_point(model, GPU).power_w

    def test_small_models_faster_on_gpu_than_dla(self):
        # Table IV: mobilenet-v2 runs faster on the GPU than the DLA —
        # the non-trivial trade-off SHIFT exploits.
        for model in ("ssd-mobilenet-v2", "ssd-mobilenet-v2-320"):
            assert perf_point(model, GPU).latency_s < perf_point(model, DLA).latency_s

    def test_oakd_only_supports_yolo_pair(self):
        supported = {m for m in paper_model_names() if has_profile(m, OAKD)}
        assert supported == {"yolov7", "yolov7-tiny"}

    def test_18_schedulable_combinations(self):
        pairs = sum(
            1
            for model in paper_model_names()
            for accel_class in (GPU, DLA, OAKD)
            if has_profile(model, accel_class)
        )
        assert pairs == 18

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            perf_point("yolov99", GPU)

    def test_unsupported_pair_raises(self):
        with pytest.raises(KeyError):
            perf_point("ssd-resnet50", OAKD)

    def test_supported_classes(self):
        assert set(supported_classes("yolov7")) == {GPU, DLA, OAKD, CPU}
        assert set(supported_classes("ssd-resnet50")) == {GPU, DLA}


class TestPerfPoint:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PerfPoint(0.0, 5.0)
        with pytest.raises(ValueError):
            PerfPoint(0.1, 0.0)


class TestLoadCost:
    def test_load_cost_fields(self):
        cost = load_cost("yolov7", GPU)
        assert cost.memory_mb > 0
        assert cost.load_time_s > 0
        assert cost.load_energy_j == pytest.approx(cost.load_time_s * cost.load_power_w)

    def test_bigger_models_load_slower(self):
        big = load_cost("yolov7-e6e", GPU)
        small = load_cost("yolov7-tiny", GPU)
        assert big.load_time_s > small.load_time_s
        assert big.memory_mb > small.memory_mb

    def test_oakd_loads_slower_per_megabyte(self):
        gpu = load_cost("yolov7", GPU)
        oakd = load_cost("yolov7", OAKD)
        assert oakd.load_time_s / oakd.memory_mb > gpu.load_time_s / gpu.memory_mb

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            load_cost("ssd-resnet50", OAKD)


class TestRegistration:
    def test_register_custom_profile(self):
        register_profile("custom-test-model", GPU, PerfPoint(0.05, 9.0), footprint_mb=111.0)
        try:
            assert perf_point("custom-test-model", GPU).latency_s == 0.05
            assert load_cost("custom-test-model", GPU).memory_mb == 111.0
        finally:
            import repro.sim.profiles as profiles

            del profiles._TABLE_IV["custom-test-model"]
            del profiles._FOOTPRINT_MB["custom-test-model"]
