"""The planned (plan/replay) engine must equal the live engine bit-for-bit.

The fast-run tier's timing/energy samples all flow through
:class:`PlannedExecutionEngine`; these tests pin its two contracts —
identical draw order (hence identical samples) over arbitrary operation
mixes, and segment refills that never skip or repeat a draw.
"""

import random

import pytest

from repro.sim import ExecutionEngine, PlannedExecutionEngine, xavier_nx_with_oakd
from repro.sim.engine import DRAW_SEGMENT


def _engines(seed):
    live_soc = xavier_nx_with_oakd()
    planned_soc = xavier_nx_with_oakd()
    return (
        ExecutionEngine(live_soc, seed=seed),
        PlannedExecutionEngine(planned_soc, seed=seed),
    )


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1234, 2**40 + 17])
    def test_inference_sequence_identical(self, seed):
        live, planned = _engines(seed)
        for _ in range(50):
            a = live.run_inference("yolov7", live.soc.accelerator("gpu"))
            b = planned.run_inference("yolov7", planned.soc.accelerator("gpu"))
            assert (a.latency_s, a.power_w, a.energy_j) == (b.latency_s, b.power_w, b.energy_j)
        assert live.soc.clock.now == planned.soc.clock.now
        assert live.soc.meter.total_joules == planned.soc.meter.total_joules

    def test_mixed_operation_sequence_identical(self):
        """Loads, inferences, and overheads interleave on one draw stream."""
        live, planned = _engines(7)
        rng = random.Random(99)
        models = ["yolov7", "yolov7-tiny", "ssd-mobilenet-v2"]
        for _ in range(200):
            op = rng.random()
            model = rng.choice(models)
            for engine in (live, planned):
                gpu = engine.soc.accelerator("gpu")
                if op < 0.5:
                    record = engine.run_inference(model, gpu)
                elif op < 0.8:
                    record = engine.run_load(model, gpu)
                else:
                    engine.charge_overhead("VDD_CPU", 3.0, 0.0015)
                    record = None
            # Spot-compare the meters rather than each record pair: any
            # draw-order divergence compounds into the running totals.
        assert live.soc.clock.now == planned.soc.clock.now
        assert live.soc.meter.total_joules == planned.soc.meter.total_joules

    def test_segment_refill_boundary_loses_no_draws(self):
        """Cross several segment boundaries; every sample must still match."""
        live, planned = _engines(11)
        draws = DRAW_SEGMENT * 2 + 7  # odd count: boundary lands mid-operation
        for _ in range(draws):
            a = live._jittered(1.0, 0.04)
            b = planned._jittered(1.0, 0.04)
            assert a == b

    def test_zero_jitter_bypasses_the_stream(self):
        live, planned = _engines(3)
        assert planned._jittered(2.5, 0.0) == 2.5 == live._jittered(2.5, 0.0)
        # The bypass consumed nothing: the streams still agree afterwards.
        assert live._jittered(1.0, 0.04) == planned._jittered(1.0, 0.04)

    def test_seed_matters(self):
        _, a = _engines(1)
        _, b = _engines(2)
        assert a._jittered(1.0, 0.04) != b._jittered(1.0, 0.04)
