"""Tests for memory pools."""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import MemoryPool, OutOfMemoryError


class TestMemoryPool:
    def test_capacity_required_positive(self):
        with pytest.raises(ValueError):
            MemoryPool("p", 0.0)

    def test_allocate_and_free(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 40.0)
        assert pool.used_mb == 40.0
        assert pool.available_mb == 60.0
        assert pool.holds("a")
        assert pool.free("a") == 40.0
        assert pool.used_mb == 0.0

    def test_oversubscription_rejected(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 80.0)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("b", 30.0)
        # Failed allocation leaves no residue.
        assert not pool.holds("b")
        assert pool.used_mb == 80.0

    def test_double_allocation_rejected(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 10.0)
        with pytest.raises(ValueError):
            pool.allocate("a", 10.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool("p", 100.0).allocate("a", -1.0)

    def test_free_unknown_rejected(self):
        with pytest.raises(KeyError):
            MemoryPool("p", 100.0).free("ghost")

    def test_exact_fit_allowed(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 100.0)
        assert pool.available_mb == 0.0

    def test_can_fit(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 60.0)
        assert pool.can_fit(40.0)
        assert not pool.can_fit(41.0)

    def test_allocations_copy(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 10.0)
        allocations = pool.allocations()
        allocations["b"] = 50.0
        assert not pool.holds("b")

    def test_allocation_mb(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 10.0)
        assert pool.allocation_mb("a") == 10.0
        assert pool.allocation_mb("missing") == 0.0

    def test_clear(self):
        pool = MemoryPool("p", 100.0)
        pool.allocate("a", 10.0)
        pool.allocate("b", 20.0)
        pool.clear()
        assert pool.used_mb == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_used_never_exceeds_capacity(self, sizes):
        pool = MemoryPool("p", 100.0)
        for i, size in enumerate(sizes):
            with contextlib.suppress(OutOfMemoryError):
                pool.allocate(f"m{i}", size)
            assert pool.used_mb <= pool.capacity_mb + 1e-6

    @given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_alloc_free_roundtrip_conserves(self, sizes):
        pool = MemoryPool("p", 1000.0)
        for i, size in enumerate(sizes):
            pool.allocate(f"m{i}", size)
        for i in range(len(sizes)):
            pool.free(f"m{i}")
        assert pool.used_mb == pytest.approx(0.0, abs=1e-9)
