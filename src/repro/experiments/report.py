"""Plain-text table rendering for experiment outputs.

Every table/figure generator returns a :class:`TableData`; this module
renders it as aligned ASCII (for terminals and the benchmark logs) or
Markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

Cell = str | float | int | None


@dataclass
class TableData:
    """A titled grid of cells with optional footnotes."""

    title: str
    headers: list[str]
    rows: list[list[Cell]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.headers:
            raise ValueError("a table needs at least one column")
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"row {row!r} has {len(row)} cells, expected {len(self.headers)}"
                )

    def add_row(self, *cells: Cell) -> None:
        """Append one row (cell count must match the headers)."""
        row = list(cells)
        if len(row) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(row)}")
        self.rows.append(row)

    def column(self, header: str) -> list[Cell]:
        """All cells of one column."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column named {header!r}; have {self.headers}") from None
        return [row[index] for row in self.rows]


def format_cell(cell: Cell, precision: int = 3) -> str:
    """Human-readable cell text; None renders as '-' (unsupported pair)."""
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def render_table(table: TableData, precision: int = 3) -> str:
    """Render as aligned ASCII text."""
    grid = [table.headers] + [
        [format_cell(cell, precision) for cell in row] for row in table.rows
    ]
    widths = [max(len(row[i]) for row in grid) for i in range(len(table.headers))]
    lines = [table.title, "=" * len(table.title)]
    header_line = "  ".join(h.ljust(w) for h, w in zip(grid[0], widths, strict=True))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in grid[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_markdown(table: TableData, precision: int = 3) -> str:
    """Render as a Markdown table (used by EXPERIMENTS.md tooling)."""
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.headers) + " |")
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(format_cell(c, precision) for c in row) + " |")
    for note in table.notes:
        lines.append(f"\n*{note}*")
    return "\n".join(lines)
