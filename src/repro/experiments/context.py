"""Shared experiment context: one characterization, many experiments.

Building the validation set, the characterization bundle, and the scenario
traces dominates experiment cost; the :class:`ExperimentContext` builds
each at most once and every table/figure generator draws from it.
``scale`` shortens scenarios proportionally — the test suite runs at small
scales, the benchmark harness near full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..characterization import CharacterizationBundle, characterize
from ..core import ConfidenceGraph
from ..data import Scenario, evaluation_scenarios, scenario_by_name
from ..models import ModelZoo, default_zoo
from ..runtime import ExperimentRunner, RunStore, TraceCache, TraceStore
from ..sim import SoC, xavier_nx_with_oakd


@dataclass
class ExperimentContext:
    """Lazily cached building blocks shared by all experiments.

    ``trace_store`` points the trace tier at a directory so traces persist
    across processes (a second benchmark/CLI invocation rebuilds nothing);
    ``run_store`` does the same for the run tier (finished policy runs,
    keyed by policy/trace/SoC/seed fingerprints — a repeat sweep is a pure
    metrics reload); ``max_workers`` > 1 fans trace building across worker
    processes.  All default off, preserving the fully in-memory serial
    behaviour.  ``fast_runs`` selects the bit-identical fast-run engine
    (on by default; turn off to exercise the scalar reference path).
    """

    scale: float = 1.0
    validation_size: int = 800
    validation_seed: int = 7151
    engine_seed: int = 1234
    zoo: ModelZoo = field(default_factory=default_zoo)
    trace_store: str | Path | None = None
    run_store: str | Path | None = None
    max_workers: int | None = None
    fast_runs: bool = True
    _soc: SoC | None = None
    _bundle: CharacterizationBundle | None = None
    _cache: TraceCache | None = None
    _graph: ConfidenceGraph | None = None
    _runner: ExperimentRunner | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.validation_size <= 0:
            raise ValueError("validation_size must be positive")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @property
    def soc(self) -> SoC:
        """The simulated platform (built once)."""
        if self._soc is None:
            self._soc = xavier_nx_with_oakd()
        return self._soc

    @property
    def bundle(self) -> CharacterizationBundle:
        """The offline characterization (built once)."""
        if self._bundle is None:
            self._bundle = characterize(
                self.zoo,
                self.soc,
                validation_size=self.validation_size,
                validation_seed=self.validation_seed,
            )
        return self._bundle

    @property
    def cache(self) -> TraceCache:
        """Trace cache shared by every policy run (store-backed if configured)."""
        if self._cache is None:
            store = TraceStore(self.trace_store) if self.trace_store is not None else None
            self._cache = TraceCache(self.zoo, store=store, max_workers=self.max_workers)
        return self._cache

    @property
    def runner(self) -> ExperimentRunner:
        """The experiment runner sharing this context's trace tier."""
        if self._runner is None:
            self._runner = ExperimentRunner(
                cache=self.cache,
                max_workers=self.max_workers,
                engine_seed=self.engine_seed,
                run_store=RunStore(self.run_store) if self.run_store is not None else None,
                fast=self.fast_runs,
            )
        return self._runner

    @property
    def graph(self) -> ConfidenceGraph:
        """The confidence graph at default parameters (built once)."""
        if self._graph is None:
            self._graph = ConfidenceGraph.build(self.bundle.observations)
        return self._graph

    def scenarios(self) -> list[Scenario]:
        """The six evaluation scenarios at this context's scale."""
        scenarios = evaluation_scenarios()
        if self.scale != 1.0:
            scenarios = [s.scaled(self.scale) for s in scenarios]
        return scenarios

    def scenario(self, name: str) -> Scenario:
        """One scenario (evaluation or extended, by full name) at this scale."""
        scenario = scenario_by_name(name)
        return scenario.scaled(self.scale) if self.scale != 1.0 else scenario
