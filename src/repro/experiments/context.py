"""Shared experiment context: one characterization, many experiments.

Building the validation set, the characterization bundle, and the scenario
traces dominates experiment cost; the :class:`ExperimentContext` builds
each at most once and every table/figure generator draws from it.
``scale`` shortens scenarios proportionally — the test suite runs at small
scales, the benchmark harness near full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..characterization import CharacterizationBundle, characterize
from ..core import ConfidenceGraph
from ..data import Scenario, evaluation_scenarios
from ..models import ModelZoo, default_zoo
from ..runtime import TraceCache
from ..sim import SoC, xavier_nx_with_oakd


@dataclass
class ExperimentContext:
    """Lazily cached building blocks shared by all experiments."""

    scale: float = 1.0
    validation_size: int = 800
    validation_seed: int = 7151
    engine_seed: int = 1234
    zoo: ModelZoo = field(default_factory=default_zoo)
    _soc: SoC | None = None
    _bundle: CharacterizationBundle | None = None
    _cache: TraceCache | None = None
    _graph: ConfidenceGraph | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.validation_size <= 0:
            raise ValueError("validation_size must be positive")

    @property
    def soc(self) -> SoC:
        """The simulated platform (built once)."""
        if self._soc is None:
            self._soc = xavier_nx_with_oakd()
        return self._soc

    @property
    def bundle(self) -> CharacterizationBundle:
        """The offline characterization (built once)."""
        if self._bundle is None:
            self._bundle = characterize(
                self.zoo,
                self.soc,
                validation_size=self.validation_size,
                validation_seed=self.validation_seed,
            )
        return self._bundle

    @property
    def cache(self) -> TraceCache:
        """Trace cache shared by every policy run."""
        if self._cache is None:
            self._cache = TraceCache(self.zoo)
        return self._cache

    @property
    def graph(self) -> ConfidenceGraph:
        """The confidence graph at default parameters (built once)."""
        if self._graph is None:
            self._graph = ConfidenceGraph.build(self.bundle.observations)
        return self._graph

    def scenarios(self) -> list[Scenario]:
        """The six evaluation scenarios at this context's scale."""
        scenarios = evaluation_scenarios()
        if self.scale != 1.0:
            scenarios = [s.scaled(self.scale) for s in scenarios]
        return scenarios

    def scenario(self, name: str) -> Scenario:
        """One evaluation scenario (by full name) at this context's scale."""
        for candidate in self.scenarios():
            if candidate.name == name:
                return candidate
        known = ", ".join(s.name for s in self.scenarios())
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
