"""Regeneration of the paper's tables (I, II, III, IV) and headline claims."""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import MarlinPolicy, SingleModelPolicy, oracle_accuracy, oracle_energy, oracle_latency
from ..core import ShiftConfig, ShiftPipeline
from ..runtime import RunMetrics, average_metrics
from ..core.policy import Policy
from ..sim import AcceleratorClass
from .context import ExperimentContext
from .report import TableData

# Models shown in the paper's Table I.
_TABLE1_MODELS = ("yolov7", "yolov7-tiny", "ssd-mobilenet-v1")
_TABLE1_CLASSES = (AcceleratorClass.CPU, AcceleratorClass.GPU, AcceleratorClass.DLA)

# Models in Table IV column order (largest to smallest).
_TABLE4_CLASSES = (AcceleratorClass.GPU, AcceleratorClass.DLA, AcceleratorClass.OAKD)


def table1(ctx: ExperimentContext) -> TableData:
    """Table I: CPU/GPU/DLA statistics for three representative models."""
    bundle = ctx.bundle
    table = TableData(
        title="Table I: average statistics per model on CPU, GPU, and GPU/DLA",
        headers=[
            "Model", "IoU",
            "Inference CPU (s)", "Inference GPU (s)", "Inference DLA (s)",
            "Power CPU (W)", "Power GPU (W)", "Power DLA (W)",
            "Energy CPU (J)", "Energy GPU (J)", "Energy DLA (J)",
        ],
    )
    for model in _TABLE1_MODELS:
        perf = {c: bundle.performance.get((model, c)) for c in _TABLE1_CLASSES}
        table.add_row(
            model,
            round(bundle.accuracy[model].mean_iou, 2),
            *[None if perf[c] is None else perf[c].mean_latency_s for c in _TABLE1_CLASSES],
            *[None if perf[c] is None else perf[c].mean_power_w for c in _TABLE1_CLASSES],
            *[None if perf[c] is None else perf[c].mean_energy_j for c in _TABLE1_CLASSES],
        )
    table.notes.append("'-' marks pairs the platform cannot execute (Table I of the paper).")
    return table


# ----------------------------------------------------------- Table II

# Feature matrix transcribed from the paper (static by nature).
_FEATURES = ("Context Awareness", "Multi-Accelerator", "Multi-DNN", "Energy-Aware",
             "No-Offloading", "Continuous")
_RELATED_WORK: dict[str, tuple[bool, bool, bool, bool, bool, bool]] = {
    "Glimpse": (False, False, False, False, False, True),
    "MARLIN": (True, False, False, True, True, True),
    "AdaVP": (True, False, False, True, True, False),
    "RoaD-RuNNer": (True, False, False, True, False, True),
    "Fast UQ": (False, False, True, False, True, False),
    "Herald": (False, True, False, True, True, False),
    "AxoNN": (False, True, False, True, True, False),
    "SHIFT": (True, True, True, True, True, True),
}


def table2() -> TableData:
    """Table II: feature comparison with related work."""
    table = TableData(
        title="Table II: features offered by related work vs SHIFT",
        headers=["Feature"] + list(_RELATED_WORK),
    )
    for i, feature in enumerate(_FEATURES):
        table.add_row(feature, *[_RELATED_WORK[name][i] for name in _RELATED_WORK])
    return table


# ---------------------------------------------------------- Table III

@dataclass
class Table3Result:
    """Structured Table III output: per-policy averaged metrics."""

    table: TableData
    metrics: dict[str, RunMetrics]
    per_scenario: dict[str, list[RunMetrics]]


def _table3_policies(ctx: ExperimentContext, config: ShiftConfig) -> list[Policy]:
    return [
        MarlinPolicy("yolov7"),
        MarlinPolicy("yolov7-tiny"),
        ShiftPipeline(ctx.bundle, config=config, graph=ctx.graph),
        oracle_energy(),
        oracle_accuracy(),
        oracle_latency(),
    ]


_TABLE3_LABELS = {
    "marlin:yolov7": "Marlin",
    "marlin:yolov7-tiny": "Marlin Tiny",
    "shift": "SHIFT",
    "oracle:energy": "Oracle E",
    "oracle:accuracy": "Oracle A",
    "oracle:latency": "Oracle L",
}


def table3(ctx: ExperimentContext, config: ShiftConfig | None = None) -> Table3Result:
    """Table III: average runtime performance over the six scenarios."""
    config = config or ShiftConfig()
    scenarios = ctx.scenarios()
    pair_total = len(ctx.soc.schedulable_pairs(ctx.zoo.names()))
    table = TableData(
        title="Table III: average runtime performance of continuous object detection",
        headers=["Methodology", "IoU", "Time (s)", "Energy (J)", "Success Rate",
                 "Non-GPU", "Model Swaps", "Pairs Used"],
        notes=[
            f"SHIFT parameters: goal accuracy {config.accuracy_goal}, momentum "
            f"{config.momentum}, distance threshold {config.distance_threshold}, knobs: "
            f"accuracy {config.knob_accuracy}, energy/latency "
            f"{config.knob_energy}/{config.knob_latency}.",
            f"A total of {pair_total} model-accelerator combinations were possible.",
            "Includes overhead for SHIFT and Marlin methods.",
        ],
    )
    metrics: dict[str, RunMetrics] = {}
    per_scenario: dict[str, list[RunMetrics]] = {}
    for policy in _table3_policies(ctx, config):
        runs = ctx.runner.run_policy_on_scenarios(policy, scenarios)
        label = _TABLE3_LABELS.get(policy.name, policy.name)
        avg = average_metrics(runs, label)
        metrics[label] = avg
        per_scenario[label] = runs
        table.add_row(
            label,
            round(avg.mean_iou, 3),
            round(avg.mean_latency_s, 3),
            round(avg.mean_energy_j, 3),
            f"{avg.success_rate * 100:.1f}%",
            f"{avg.non_gpu_share * 100:.1f}%",
            avg.swaps,
            avg.pairs_used,
        )
    return Table3Result(table=table, metrics=metrics, per_scenario=per_scenario)


# ----------------------------------------------------------- Table IV

def table4(ctx: ExperimentContext) -> TableData:
    """Table IV: accuracy and performance traits of all models."""
    bundle = ctx.bundle
    table = TableData(
        title="Table IV: collected accuracy and performance traits of all models",
        headers=[
            "Model", "Avg. IoU", "Success Rate",
            "Time GPU (s)", "Time DLA (s)", "Time OAK-D (s)",
            "Energy GPU (J)", "Energy DLA (J)", "Energy OAK-D (J)",
            "Power GPU (W)", "Power DLA (W)", "Power OAK-D (W)",
        ],
    )
    for spec in ctx.zoo:
        accuracy = bundle.accuracy[spec.name]
        perf = {c: bundle.performance.get((spec.name, c)) for c in _TABLE4_CLASSES}
        table.add_row(
            spec.name,
            round(accuracy.mean_iou, 3),
            f"{accuracy.success_rate * 100:.1f}%",
            *[None if perf[c] is None else perf[c].mean_latency_s for c in _TABLE4_CLASSES],
            *[None if perf[c] is None else perf[c].mean_energy_j for c in _TABLE4_CLASSES],
            *[None if perf[c] is None else perf[c].mean_power_w for c in _TABLE4_CLASSES],
        )
    return table


# ----------------------------------------------------- headline claims

@dataclass
class HeadlineClaims:
    """The abstract's numbers: SHIFT vs single-model YoloV7 on GPU."""

    energy_improvement: float  # paper: up to 7.5x
    latency_improvement: float  # paper: up to 2.8x
    iou_ratio: float  # paper: 0.97x
    success_ratio: float  # paper: 0.97x
    table: TableData


def headline_claims(ctx: ExperimentContext, config: ShiftConfig | None = None) -> HeadlineClaims:
    """Compare SHIFT with the state-of-the-art single model on GPU."""
    config = config or ShiftConfig()
    scenarios = ctx.scenarios()
    shift = ShiftPipeline(ctx.bundle, config=config, graph=ctx.graph)
    single = SingleModelPolicy("yolov7", "gpu")
    shift_avg = average_metrics(ctx.runner.run_policy_on_scenarios(shift, scenarios), "SHIFT")
    single_avg = average_metrics(
        ctx.runner.run_policy_on_scenarios(single, scenarios), "YoloV7@GPU"
    )
    claims = HeadlineClaims(
        energy_improvement=single_avg.mean_energy_j / shift_avg.mean_energy_j,
        latency_improvement=single_avg.mean_latency_s / shift_avg.mean_latency_s,
        iou_ratio=shift_avg.mean_iou / single_avg.mean_iou,
        success_ratio=shift_avg.success_rate / single_avg.success_rate,
        table=TableData(
            title="Headline claims: SHIFT vs GPU-based single-model OD",
            headers=["Metric", "SHIFT", "YoloV7@GPU", "Ratio", "Paper"],
        ),
    )
    claims.table.add_row("Energy (J/frame)", round(shift_avg.mean_energy_j, 3),
                         round(single_avg.mean_energy_j, 3),
                         f"{claims.energy_improvement:.2f}x better", "7.5x")
    claims.table.add_row("Latency (s/frame)", round(shift_avg.mean_latency_s, 3),
                         round(single_avg.mean_latency_s, 3),
                         f"{claims.latency_improvement:.2f}x better", "2.8x")
    claims.table.add_row("Mean IoU", round(shift_avg.mean_iou, 3),
                         round(single_avg.mean_iou, 3),
                         f"{claims.iou_ratio:.2f}x", "0.97x")
    claims.table.add_row("Success rate", round(shift_avg.success_rate, 3),
                         round(single_avg.success_rate, 3),
                         f"{claims.success_ratio:.2f}x", "0.97x")
    return claims
