"""Sensitivity analysis of SHIFT's parameters (paper §V-B, Fig. 5).

Sweeps the scheduler knobs (accuracy/energy/latency), the accuracy goal,
the momentum, and the confidence-graph distance threshold over a grid of
configurations, runs SHIFT under each, and reports the correlation of each
parameter with the achieved mean IoU, energy, and latency.

The paper's expectations (all reproduced here):
* energy knob up   -> actual energy down (negative correlation),
* latency knob up  -> actual latency down,
* accuracy knob up -> accuracy, energy, and latency all up (more expensive
  models are more accurate),
* accuracy goal up -> primary metrics degrade (unmet goals collapse to
  knob-only optimization),
* momentum         -> minor effect (frame-to-frame results are stable),
* distance threshold up -> average latency down (more models in play).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from ..core import ConfidenceGraph, ShiftConfig, ShiftPipeline
from ..runtime import aggregate, run_policy
from .context import ExperimentContext
from .report import TableData

# Quick grid: 3*3*3*3*2*2 = 324 configurations.
QUICK_GRID: dict[str, tuple[float, ...]] = {
    "knob_accuracy": (0.25, 0.5, 1.0),
    "knob_energy": (0.0, 0.5, 1.0),
    "knob_latency": (0.0, 0.5, 1.0),
    "accuracy_goal": (0.15, 0.30, 0.45),
    "momentum": (1, 30),
    "distance_threshold": (0.3, 0.7),
}

# Full grid: 1,860 configurations, approximating the paper's sweep size.
FULL_GRID: dict[str, tuple[float, ...]] = {
    "knob_accuracy": (0.0, 0.25, 0.5, 0.75, 1.0),
    "knob_energy": (0.0, 0.5, 1.0),
    "knob_latency": (0.0, 0.5, 1.0),
    "accuracy_goal": (0.1, 0.25, 0.4, 0.55),
    "momentum": (1, 15, 30, 60),
    "distance_threshold": (0.25, 0.5, 0.75),
}
# 5*3*3*4*4*3 = 2160; drop the all-zero-knob corner cases at runtime to
# land close to the paper's 1860 (zero weights everywhere make the argmax
# degenerate).


@dataclass(frozen=True)
class SweepPoint:
    """One configuration and the metrics SHIFT achieved under it."""

    config: ShiftConfig
    mean_iou: float
    mean_energy_j: float
    mean_latency_s: float


@dataclass
class SensitivityResult:
    """All sweep points plus per-parameter correlations."""

    points: list[SweepPoint]
    correlations: dict[str, dict[str, float]]  # parameter -> metric -> r
    table: TableData = field(default=None)  # type: ignore[assignment]

    def correlation(self, parameter: str, metric: str) -> float:
        """Pearson correlation of one parameter with one metric."""
        return self.correlations[parameter][metric]


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _grid_configs(grid: dict[str, tuple[float, ...]]) -> list[ShiftConfig]:
    names = list(grid)
    configs = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values, strict=True))
        if (
            params["knob_accuracy"] == 0.0
            and params["knob_energy"] == 0.0
            and params["knob_latency"] == 0.0
        ):
            continue  # degenerate: nothing to optimize
        params["momentum"] = int(params["momentum"])
        configs.append(ShiftConfig(**params))
    return configs


def sensitivity_analysis(
    ctx: ExperimentContext,
    full_grid: bool = False,
    scenario_scale: float | None = None,
    scenario_name: str = "s1_multi_background_varying_distance",
) -> SensitivityResult:
    """Sweep the grid on one scenario and correlate parameters to metrics.

    ``scenario_scale`` further shortens the sweep scenario relative to the
    context's scale (each configuration is a full policy run; the paper's
    1,860-point sweep needs a short video to stay tractable).
    """
    grid = FULL_GRID if full_grid else QUICK_GRID
    scenario = ctx.scenario(scenario_name)
    if scenario_scale is not None:
        scenario = scenario.scaled(scenario_scale)
    trace = ctx.runner.trace(scenario)

    # One confidence-graph structure serves every configuration: only the
    # bounded-search threshold differs, and re-thresholding is cheap.
    base_graph = ctx.graph
    graph_cache: dict[float, ConfidenceGraph] = {}

    points: list[SweepPoint] = []
    for config in _grid_configs(grid):
        if config.distance_threshold not in graph_cache:
            graph_cache[config.distance_threshold] = base_graph.with_distance_threshold(
                config.distance_threshold
            )
        pipeline = ShiftPipeline(
            ctx.bundle, config=config, graph=graph_cache[config.distance_threshold]
        )
        metrics = aggregate(run_policy(pipeline, trace, engine_seed=ctx.engine_seed))
        points.append(
            SweepPoint(
                config=config,
                mean_iou=metrics.mean_iou,
                mean_energy_j=metrics.mean_energy_j,
                mean_latency_s=metrics.mean_latency_s,
            )
        )

    parameters = list(grid)
    metrics_of = {
        "accuracy": [p.mean_iou for p in points],
        "energy": [p.mean_energy_j for p in points],
        "latency": [p.mean_latency_s for p in points],
    }
    correlations = {
        parameter: {
            metric: _pearson(
                [float(getattr(p.config, parameter)) for p in points], values
            )
            for metric, values in metrics_of.items()
        }
        for parameter in parameters
    }

    table = TableData(
        title=f"Figure 5: sensitivity over {len(points)} configurations "
        f"({'full' if full_grid else 'quick'} grid, scenario {scenario.name})",
        headers=["Parameter", "r(mean accuracy)", "r(mean energy)", "r(mean latency)"],
    )
    for parameter in parameters:
        table.add_row(
            parameter,
            round(correlations[parameter]["accuracy"], 3),
            round(correlations[parameter]["energy"], 3),
            round(correlations[parameter]["latency"], 3),
        )
    return SensitivityResult(points=points, correlations=correlations, table=table)
