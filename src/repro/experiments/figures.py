"""Regeneration of the paper's figures (1-5) as data series.

Each generator returns the numeric series behind the figure plus a
:class:`~repro.experiments.report.TableData` summary, so the benchmark
harness prints exactly what the paper plots (no plotting dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import MarlinPolicy, SingleModelPolicy, oracle_accuracy
from ..core import ShiftConfig, ShiftPipeline
from ..runtime import efficiency_series, run_policy
from ..sim import AcceleratorClass
from .context import ExperimentContext
from .report import TableData
from .sensitivity import SensitivityResult, sensitivity_analysis

# Scenario used by Figs. 2 and 3 (the paper's first video) and Fig. 4.
_FIG3_SCENARIO = "s1_multi_background_varying_distance"
_FIG4_SCENARIO = "s2_fixed_distance_crossing"

# The YOLOv7 size ladder of Fig. 1a, largest to smallest.
_YOLO_LADDER = ("yolov7-e6e", "yolov7-x", "yolov7", "yolov7-tiny")
# The heterogeneous model set of Fig. 1b.
_MULTI_MODEL_SET = ("yolov7", "ssd-resnet50", "ssd-mobilenet-v1", "ssd-mobilenet-v2",
                    "ssd-mobilenet-v2-320", "yolov7-tiny")


@dataclass
class EALPoint:
    """One model's energy-accuracy-latency triple, normalized bigger-is-better."""

    model_name: str
    accuracy: float
    energy: float
    latency: float


@dataclass
class Figure1Result:
    """Fig. 1: e-a-l triangles for (a) single-family sizes, (b) multi-model."""

    single_family: list[EALPoint]
    multi_model: list[EALPoint]
    table: TableData


def _eal_points(ctx: ExperimentContext, models: tuple[str, ...]) -> list[EALPoint]:
    bundle = ctx.bundle
    perfs = {m: bundle.performance[(m, AcceleratorClass.GPU)] for m in models}
    accs = {m: bundle.accuracy[m].mean_iou for m in models}
    e_values = [p.mean_energy_j for p in perfs.values()]
    l_values = [p.mean_latency_s for p in perfs.values()]
    e_low, e_high = min(e_values), max(e_values)
    l_low, l_high = min(l_values), max(l_values)
    acc_high = max(accs.values())
    points = []
    for model in models:
        energy = perfs[model].mean_energy_j
        latency = perfs[model].mean_latency_s
        points.append(
            EALPoint(
                model_name=model,
                accuracy=accs[model] / acc_high,
                energy=1.0 - (energy - e_low) / (e_high - e_low) if e_high > e_low else 1.0,
                latency=1.0 - (latency - l_low) / (l_high - l_low) if l_high > l_low else 1.0,
            )
        )
    return points


def figure1(ctx: ExperimentContext) -> Figure1Result:
    """Fig. 1: single-model size ladder vs multi-model e-a-l trade-off.

    In (a) energy and latency improve monotonically as the YOLOv7 variant
    shrinks while accuracy monotonically drops; in (b) the relationship is
    non-monotonic — the defining observation of the paper's introduction.
    """
    single = _eal_points(ctx, _YOLO_LADDER)
    multi = _eal_points(ctx, _MULTI_MODEL_SET)
    table = TableData(
        title="Figure 1: normalized energy-accuracy-latency per model (GPU)",
        headers=["Set", "Model", "Accuracy", "Energy", "Latency"],
    )
    for point in single:
        table.add_row("single-family", point.model_name, point.accuracy, point.energy, point.latency)
    for point in multi:
        table.add_row("multi-model", point.model_name, point.accuracy, point.energy, point.latency)
    return Figure1Result(single_family=single, multi_model=multi, table=table)


@dataclass
class Figure2Result:
    """Fig. 2: per-model efficiency (IoU/J) timelines on the GPU."""

    window: int
    series: dict[str, list[float]]
    segment_boundaries: list[int]
    table: TableData


def figure2(ctx: ExperimentContext, window: int = 50) -> Figure2Result:
    """Fig. 2: single-model OD efficiency over the scenario-1 stream.

    Efficiency is IoU per joule in a sliding window; the crossing curves
    (small models dominating easy stretches, collapsing on hard ones) are
    the paper's motivation for context-aware model switching.
    """
    scenario = ctx.scenario(_FIG3_SCENARIO)
    trace = ctx.runner.trace(scenario)
    series: dict[str, list[float]] = {}
    for spec in ctx.zoo:
        policy = SingleModelPolicy(spec.name, "gpu")
        result = run_policy(policy, trace, engine_seed=ctx.engine_seed)
        series[spec.name] = efficiency_series(result.records, window=window)

    table = TableData(
        title=f"Figure 2: single-model efficiency (IoU/J) per {window}-frame window, GPU",
        headers=["Model"] + [f"w{i}" for i in range(len(next(iter(series.values()))))],
    )
    for model, values in series.items():
        table.add_row(model, *[round(v, 2) for v in values])
    return Figure2Result(
        window=window,
        series=series,
        segment_boundaries=scenario.segment_boundaries(),
        table=table,
    )


@dataclass
class TimelineResult:
    """Figs. 3/4: what each policy ran over one scenario's timeline."""

    scenario_name: str
    window: int
    segment_boundaries: list[int]
    shift_models: list[str]  # per frame
    shift_swap_frames: list[int]
    shift_efficiency: list[float]
    shift_iou: list[float]  # per window
    shift_frame_iou: list[float]  # per frame
    shift_frame_detected: list[bool]  # per frame
    shift_frame_rescheduled: list[bool]  # per frame
    rescheduled_share: float  # fraction of frames with a full Algorithm-1 pass
    marlin_efficiency: list[float]
    oracle_efficiency: list[float]
    table: TableData
    segments: list[str] = field(default_factory=list)


def _windowed_iou(records, window: int) -> list[float]:
    values = []
    for start in range(0, len(records), window):
        chunk = [r for r in records[start : start + window] if r.ground_truth_present]
        values.append(sum(r.iou for r in chunk) / len(chunk) if chunk else 0.0)
    return values


def _timeline(ctx: ExperimentContext, scenario_name: str, window: int) -> TimelineResult:
    scenario = ctx.scenario(scenario_name)
    trace = ctx.runner.trace(scenario)
    config = ShiftConfig()

    shift = ShiftPipeline(ctx.bundle, config=config, graph=ctx.graph)
    shift_run = run_policy(shift, trace, engine_seed=ctx.engine_seed)
    marlin_run = run_policy(MarlinPolicy("yolov7"), trace, engine_seed=ctx.engine_seed)
    oracle_run = run_policy(oracle_accuracy(), trace, engine_seed=ctx.engine_seed)

    swap_frames = [r.frame_index for r in shift_run.records if r.swap]
    result = TimelineResult(
        scenario_name=scenario.name,
        window=window,
        segment_boundaries=scenario.segment_boundaries(),
        shift_models=[r.model_name for r in shift_run.records],
        shift_swap_frames=swap_frames,
        shift_efficiency=efficiency_series(shift_run.records, window=window),
        shift_iou=_windowed_iou(shift_run.records, window),
        shift_frame_iou=[r.iou for r in shift_run.records],
        shift_frame_detected=[r.detected for r in shift_run.records],
        shift_frame_rescheduled=[r.rescheduled for r in shift_run.records],
        rescheduled_share=sum(1 for r in shift_run.records if r.rescheduled)
        / len(shift_run.records),
        marlin_efficiency=efficiency_series(marlin_run.records, window=window),
        oracle_efficiency=efficiency_series(oracle_run.records, window=window),
        table=TableData(
            title=f"{scenario.name}: windowed IoU/J (window={window})",
            headers=["Series"] + [f"w{i}" for i in range(len(_windowed_iou(shift_run.records, window)))],
        ),
        segments=[f.segment for f in trace.frames],
    )
    result.table.add_row("SHIFT", *[round(v, 2) for v in result.shift_efficiency])
    result.table.add_row("Marlin", *[round(v, 2) for v in result.marlin_efficiency])
    result.table.add_row("Oracle A", *[round(v, 2) for v in result.oracle_efficiency])
    result.table.notes.append(
        f"SHIFT swaps at frames {swap_frames[:20]}{'...' if len(swap_frames) > 20 else ''}; "
        f"segment boundaries at {result.segment_boundaries}"
    )
    return result


def figure3(ctx: ExperimentContext, window: int = 50) -> TimelineResult:
    """Fig. 3: scenario 1 — varying distance across multiple backgrounds."""
    return _timeline(ctx, _FIG3_SCENARIO, window)


def figure4(ctx: ExperimentContext, window: int = 50) -> TimelineResult:
    """Fig. 4: scenario 2 — fixed distance, horizontal crossing."""
    return _timeline(ctx, _FIG4_SCENARIO, window)


def figure5(
    ctx: ExperimentContext,
    full_grid: bool = False,
    scenario_scale: float | None = None,
) -> SensitivityResult:
    """Fig. 5: parameter sensitivity of SHIFT (delegates to the sweep)."""
    return sensitivity_analysis(ctx, full_grid=full_grid, scenario_scale=scenario_scale)
