"""Experiment harness: regenerate every table and figure of the paper."""

from .context import ExperimentContext
from .figures import (
    EALPoint,
    Figure1Result,
    Figure2Result,
    TimelineResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from .report import TableData, format_cell, render_markdown, render_table
from .sensitivity import (
    FULL_GRID,
    QUICK_GRID,
    SensitivityResult,
    SweepPoint,
    sensitivity_analysis,
)
from .tables import (
    HeadlineClaims,
    Table3Result,
    headline_claims,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "ExperimentContext",
    "TableData",
    "render_table",
    "render_markdown",
    "format_cell",
    "table1",
    "table2",
    "table3",
    "table4",
    "Table3Result",
    "headline_claims",
    "HeadlineClaims",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "Figure1Result",
    "Figure2Result",
    "TimelineResult",
    "EALPoint",
    "sensitivity_analysis",
    "SensitivityResult",
    "SweepPoint",
    "QUICK_GRID",
    "FULL_GRID",
]
