"""Offline ODM characterization (paper §III-A)."""

from .builder import characterize
from .profiler import (
    AccuracyTrait,
    CharacterizationBundle,
    ConfidenceObservation,
    PerformanceTrait,
    profile_accuracy,
    profile_load_costs,
    profile_performance,
)
from .serialization import (
    SCHEMA_VERSION,
    BundleSchemaError,
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    save_bundle,
)

__all__ = [
    "characterize",
    "AccuracyTrait",
    "PerformanceTrait",
    "ConfidenceObservation",
    "CharacterizationBundle",
    "profile_accuracy",
    "profile_performance",
    "profile_load_costs",
    "save_bundle",
    "load_bundle",
    "bundle_to_dict",
    "bundle_from_dict",
    "BundleSchemaError",
    "SCHEMA_VERSION",
]
