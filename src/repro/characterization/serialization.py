"""Persistence for characterization bundles.

The offline phase (running every model over the validation set, profiling
every accelerator) is the expensive part of deploying SHIFT; on the
paper's testbed it is hours of measurement.  A deployment characterizes
once and ships the bundle with the runtime.  This module serializes a
:class:`~repro.characterization.profiler.CharacterizationBundle` to plain
JSON and back, with a schema version so stale bundles fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..sim.profiles import AcceleratorClass, LoadCost
from ..util.atomicio import atomic_write_json
from .profiler import (
    AccuracyTrait,
    CharacterizationBundle,
    ConfidenceObservation,
    PerformanceTrait,
)

SCHEMA_VERSION = 1


class BundleSchemaError(ValueError):
    """Raised when a serialized bundle cannot be understood."""


def bundle_to_dict(bundle: CharacterizationBundle) -> dict:
    """Plain-dict form of a bundle (JSON-compatible)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "accuracy": {
            name: {
                "mean_iou": trait.mean_iou,
                "success_rate": trait.success_rate,
                "mean_confidence": trait.mean_confidence,
                "sample_count": trait.sample_count,
            }
            for name, trait in bundle.accuracy.items()
        },
        "performance": [
            {
                "model": model,
                "accel_class": accel_class.value,
                "mean_latency_s": trait.mean_latency_s,
                "mean_power_w": trait.mean_power_w,
                "mean_energy_j": trait.mean_energy_j,
                "repeats": trait.repeats,
            }
            for (model, accel_class), trait in bundle.performance.items()
        ],
        "load_costs": [
            {
                "model": model,
                "accel_class": accel_class.value,
                "memory_mb": cost.memory_mb,
                "load_time_s": cost.load_time_s,
                "load_power_w": cost.load_power_w,
            }
            for (model, accel_class), cost in bundle.load_costs.items()
        ],
        "observations": [
            {
                "sample_index": obs.sample_index,
                "difficulty": obs.difficulty,
                "readings": {
                    model: [confidence, iou]
                    for model, (confidence, iou) in obs.readings.items()
                },
            }
            for obs in bundle.observations
        ],
    }


def bundle_from_dict(payload: dict) -> CharacterizationBundle:
    """Rebuild a bundle from its dict form; validates the schema version."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BundleSchemaError(
            f"unsupported bundle schema {version!r}; this build reads version {SCHEMA_VERSION}"
        )
    try:
        accuracy = {
            name: AccuracyTrait(
                model_name=name,
                mean_iou=entry["mean_iou"],
                success_rate=entry["success_rate"],
                mean_confidence=entry["mean_confidence"],
                sample_count=entry["sample_count"],
            )
            for name, entry in payload["accuracy"].items()
        }
        performance = {}
        for entry in payload["performance"]:
            accel_class = AcceleratorClass(entry["accel_class"])
            performance[(entry["model"], accel_class)] = PerformanceTrait(
                model_name=entry["model"],
                accel_class=accel_class,
                mean_latency_s=entry["mean_latency_s"],
                mean_power_w=entry["mean_power_w"],
                mean_energy_j=entry["mean_energy_j"],
                repeats=entry["repeats"],
            )
        load_costs = {}
        for entry in payload["load_costs"]:
            accel_class = AcceleratorClass(entry["accel_class"])
            load_costs[(entry["model"], accel_class)] = LoadCost(
                memory_mb=entry["memory_mb"],
                load_time_s=entry["load_time_s"],
                load_power_w=entry["load_power_w"],
            )
        observations = [
            ConfidenceObservation(
                sample_index=entry["sample_index"],
                difficulty=entry["difficulty"],
                readings={
                    model: (reading[0], reading[1])
                    for model, reading in entry["readings"].items()
                },
            )
            for entry in payload["observations"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise BundleSchemaError(f"malformed bundle payload: {exc}") from exc
    return CharacterizationBundle(
        accuracy=accuracy,
        performance=performance,
        load_costs=load_costs,
        observations=observations,
    )


def save_bundle(bundle: CharacterizationBundle, path: str | Path) -> None:
    """Write a bundle as JSON (atomically: a crash never leaves a torn file)."""
    atomic_write_json(path, bundle_to_dict(bundle))


def load_bundle(path: str | Path) -> CharacterizationBundle:
    """Read a bundle written by :func:`save_bundle`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise BundleSchemaError("bundle file does not contain a JSON object")
    return bundle_from_dict(payload)
