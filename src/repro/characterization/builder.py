"""One-call characterization: dataset -> CharacterizationBundle."""

from __future__ import annotations

from ..data.dataset import Sample, build_validation_set
from ..models.zoo import ModelZoo
from ..sim.soc import SoC
from .profiler import (
    CharacterizationBundle,
    profile_accuracy,
    profile_load_costs,
    profile_performance,
)


def characterize(
    zoo: ModelZoo,
    soc: SoC,
    samples: list[Sample] | None = None,
    validation_size: int = 800,
    validation_seed: int = 7151,
    perf_repeats: int = 25,
) -> CharacterizationBundle:
    """Run the full offline characterization of §III-A.

    When ``samples`` is omitted a synthetic validation set is generated
    (the stand-in for the paper's 2,500-image validation split).
    """
    if samples is None:
        samples = build_validation_set(size=validation_size, seed=validation_seed)
    accuracy, observations = profile_accuracy(zoo, samples)
    performance = profile_performance(zoo, soc, repeats=perf_repeats)
    load_costs = profile_load_costs(zoo, soc)
    return CharacterizationBundle(
        accuracy=accuracy,
        performance=performance,
        load_costs=load_costs,
        observations=observations,
    )
