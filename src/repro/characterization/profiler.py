"""Offline ODM characterization (paper §III-A).

Collects the five traits the paper enumerates for every model:

(i)   accuracy — IoU against ground truth over a validation dataset,
(ii)  confidence scores — paired with accuracy per image (the raw material
      of the confidence graph),
(iii) latency — measured per accelerator class by repeated execution,
(iv)  energy — time x power over the same executions,
(v)   model loading cost — memory footprint, load time, load energy.

The profiler is the only place that runs every model on every sample; the
runtime never does (that is the point of SHIFT).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Sample
from ..models.detector import DetectionOutcome, SceneBatch, detect, detect_batch
from ..models.zoo import ModelZoo
from ..sim.engine import ExecutionEngine
from ..sim.profiles import AcceleratorClass, LoadCost, load_cost
from ..sim.soc import SoC

DEFAULT_PERF_REPEATS = 25


@dataclass(frozen=True)
class AccuracyTrait:
    """Dataset-level accuracy of one model."""

    model_name: str
    mean_iou: float
    success_rate: float
    mean_confidence: float
    sample_count: int


@dataclass(frozen=True)
class PerformanceTrait:
    """Measured latency/power/energy of one (model, accelerator class)."""

    model_name: str
    accel_class: AcceleratorClass
    mean_latency_s: float
    mean_power_w: float
    mean_energy_j: float
    repeats: int


@dataclass(frozen=True)
class ConfidenceObservation:
    """Per-image confidence/IoU readings across all models (one CG edge set)."""

    sample_index: int
    difficulty: float
    readings: dict[str, tuple[float, float]]  # model -> (confidence, iou)


@dataclass
class CharacterizationBundle:
    """Everything the SHIFT runtime needs from the offline phase."""

    accuracy: dict[str, AccuracyTrait] = field(default_factory=dict)
    performance: dict[tuple[str, AcceleratorClass], PerformanceTrait] = field(default_factory=dict)
    load_costs: dict[tuple[str, AcceleratorClass], LoadCost] = field(default_factory=dict)
    observations: list[ConfidenceObservation] = field(default_factory=list)

    def model_names(self) -> list[str]:
        """Models covered by the bundle."""
        return list(self.accuracy)

    def fingerprint(self) -> str:
        """Content-addressed identity of the bundle (hex digest, cached).

        Hashes every trait table and the full observation list — the
        inputs the SHIFT pipeline derives its scheduler priors and
        confidence graph from — so run-store entries keyed through a
        policy fingerprint go stale the moment characterization changes.
        The digest is cached on first use; treat the bundle as frozen
        once it has been fingerprinted.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for name in sorted(self.accuracy):
            digest.update(repr(self.accuracy[name]).encode("utf-8"))
        for key in sorted(self.performance, key=lambda k: (k[0], k[1].value)):
            digest.update(repr(self.performance[key]).encode("utf-8"))
        for key in sorted(self.load_costs, key=lambda k: (k[0], k[1].value)):
            digest.update(repr(self.load_costs[key]).encode("utf-8"))
        for obs in self.observations:
            digest.update(
                f"{obs.sample_index}|{obs.difficulty!r}|{sorted(obs.readings.items())!r}".encode(
                    "utf-8"
                )
            )
        value = digest.hexdigest()
        self._fingerprint = value
        return value


def profile_accuracy(
    zoo: ModelZoo, samples: list[Sample]
) -> tuple[dict[str, AccuracyTrait], list[ConfidenceObservation]]:
    """Run every model over the validation set; collect traits (i)+(ii).

    Samples without a ground-truth box still contribute confidence readings
    (a model may false-positive on them) but are excluded from the IoU and
    success-rate averages, matching standard evaluation practice.
    """
    if not samples:
        raise ValueError("profile_accuracy needs at least one sample")
    traits: dict[str, AccuracyTrait] = {}
    per_model_scores: dict[str, list[tuple[float, float]]] = {s.name: [] for s in zoo}
    observations: list[ConfidenceObservation] = []

    # The validation set shares one RNG stream seed across samples (the
    # frame index varies), which is exactly the batched kernel's contract;
    # heterogeneous seeds (hand-built samples) fall back to scalar detect.
    stream_seeds = {sample.context_id[0] for sample in samples}
    outcome_rows: dict[str, list[DetectionOutcome]]
    if len(stream_seeds) == 1:
        batch = SceneBatch(
            [sample.scene for sample in samples],
            stream_seeds.pop(),
            frame_indices=[sample.context_id[1] for sample in samples],
        )
        outcome_rows = {spec.name: detect_batch(spec, batch) for spec in zoo}
    else:
        outcome_rows = {
            spec.name: [detect(spec, sample.scene, sample.context_id) for sample in samples]
            for spec in zoo
        }

    for row, sample in enumerate(samples):
        readings: dict[str, tuple[float, float]] = {}
        for spec in zoo:
            outcome = outcome_rows[spec.name][row]
            readings[spec.name] = (outcome.confidence, outcome.iou)
            if sample.ground_truth is not None:
                per_model_scores[spec.name].append((outcome.iou, outcome.confidence))
        observations.append(
            ConfidenceObservation(
                sample_index=sample.index,
                difficulty=sample.difficulty,
                readings=readings,
            )
        )

    for name, scores in per_model_scores.items():
        if not scores:
            raise ValueError("validation set has no frames with ground truth")
        ious = np.array([s[0] for s in scores])
        confs = np.array([s[1] for s in scores])
        traits[name] = AccuracyTrait(
            model_name=name,
            mean_iou=float(ious.mean()),
            success_rate=float((ious >= 0.5).mean()),
            mean_confidence=float(confs.mean()),
            sample_count=len(scores),
        )
    return traits, observations


def profile_performance(
    zoo: ModelZoo,
    soc: SoC,
    repeats: int = DEFAULT_PERF_REPEATS,
    seed: int = 515,
) -> dict[tuple[str, AcceleratorClass], PerformanceTrait]:
    """Measure latency/power per (model, accelerator class) — traits (iii)+(iv).

    Runs ``repeats`` inferences on a throwaway engine per supported pair and
    averages, mimicking how the paper characterizes on real hardware.  One
    accelerator per class is exercised (units of a class share silicon).
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    engine = ExecutionEngine(soc, seed=seed)
    results: dict[tuple[str, AcceleratorClass], PerformanceTrait] = {}
    seen_classes: dict[AcceleratorClass, str] = {}
    for accel in soc.accelerators:
        seen_classes.setdefault(accel.accel_class, accel.name)

    for spec in zoo:
        for accel_class, accel_name in seen_classes.items():
            accel = soc.accelerator(accel_name)
            if not accel.supports(spec.name):
                continue
            latencies, powers = [], []
            for _ in range(repeats):
                record = engine.run_inference(spec.name, accel, advance_clock=False)
                latencies.append(record.latency_s)
                powers.append(record.power_w)
            mean_latency = float(np.mean(latencies))
            mean_power = float(np.mean(powers))
            results[(spec.name, accel_class)] = PerformanceTrait(
                model_name=spec.name,
                accel_class=accel_class,
                mean_latency_s=mean_latency,
                mean_power_w=mean_power,
                mean_energy_j=mean_latency * mean_power,
                repeats=repeats,
            )
    return results


def profile_load_costs(
    zoo: ModelZoo, soc: SoC
) -> dict[tuple[str, AcceleratorClass], LoadCost]:
    """Model loading costs per supported pair — trait (v)."""
    costs: dict[tuple[str, AcceleratorClass], LoadCost] = {}
    classes = {accel.accel_class for accel in soc.accelerators}
    for spec in zoo:
        for accel_class in classes:
            try:
                costs[(spec.name, accel_class)] = load_cost(spec.name, accel_class)
            except KeyError:
                continue
    return costs
