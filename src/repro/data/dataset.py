"""Characterization dataset: the stand-in for the paper's validation set.

SHIFT's offline step runs every model over a validation dataset to collect
traits and build the confidence graph.  The paper uses the 2,500-image
validation split of a public UAV dataset; this module synthesizes an
equivalent: a diverse sample of scene states spanning all backgrounds,
distances, positions and speeds, rendered to frames with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vision.bbox import BoundingBox
from .backgrounds import background
from .scene import SceneState, scene_difficulty

DEFAULT_VALIDATION_SIZE = 800

# The paper's validation split is a fixed public dataset; this frozen
# background roster is its stand-in.  It must NOT track the live background
# library: registering new backgrounds (night, fog, custom deployments)
# would silently reshuffle the validation set, changing every trait and
# confidence-graph statistic — and therefore every SHIFT decision — behind
# the caller's back.  New contexts are deliberately out-of-distribution,
# like a real deployment; characterization generalizes through difficulty,
# not background identity.
VALIDATION_BACKGROUNDS = (
    "cloudy_sky",
    "dusk_horizon",
    "forest_shade",
    "indoor_lab",
    "indoor_wall",
    "indoor_warehouse",
    "open_sky",
    "parking_lot",
    "tree_line",
    "urban_facade",
)


@dataclass(frozen=True)
class Sample:
    """One validation image: latent scene plus ground truth.

    Characterization does not need rendered pixels (detector behaviour is
    driven by the latent scene), so samples carry scene state only; the
    renderer can still materialize any sample on demand.  ``context_id``
    is the global frame identity fed to the simulated detectors so every
    consumer observes identical outcomes on the same sample.
    """

    index: int
    scene: SceneState
    ground_truth: BoundingBox | None
    difficulty: float
    context_id: tuple[int, int] = (0, 0)


def build_validation_set(
    size: int = DEFAULT_VALIDATION_SIZE,
    seed: int = 7151,
    frame_size: int = 96,
    absent_fraction: float = 0.04,
) -> list[Sample]:
    """Draw a diverse validation set of ``size`` samples.

    Backgrounds are cycled uniformly; distance is stratified so every
    difficulty band is populated (the confidence graph needs co-occurrence
    statistics across the full range).  A small ``absent_fraction`` of
    frames has no target, matching real validation splits that include
    empty frames.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if not 0.0 <= absent_fraction < 1.0:
        raise ValueError("absent_fraction must be within [0, 1)")

    rng = np.random.default_rng(seed)
    names = list(VALIDATION_BACKGROUNDS)
    samples: list[Sample] = []
    for index in range(size):
        name = names[index % len(names)]
        style = background(name)
        # Stratified distance: low-discrepancy stripes plus jitter.
        stripe = (index // len(names)) % 10
        distance = float(np.clip((stripe + rng.uniform()) / 10.0, 0.0, 1.0))
        cx = float(rng.uniform(0.12, 0.88) * frame_size)
        cy = float(rng.uniform(0.12, 0.88) * frame_size)
        speed = float(rng.uniform(0.0, 5.0))
        visible = bool(rng.uniform() >= absent_fraction)
        scene = SceneState(
            background=style,
            background_name=name,
            cx=cx,
            cy=cy,
            distance=distance,
            speed=speed,
            drift=0.0,
            visible=visible,
            frame_size=frame_size,
        )
        samples.append(
            Sample(
                index=index,
                scene=scene,
                ground_truth=scene.ground_truth_box(),
                difficulty=scene_difficulty(scene),
                context_id=(seed, index),
            )
        )
    return samples
