"""Background library for the scenario substrate.

Each entry is a named :class:`~repro.vision.rendering.BackgroundStyle`
capturing a class of environment from the paper's evaluation videos: indoor
walls and labs, open sky, tree lines, urban facades.  Names are stable API —
scenarios reference backgrounds by name.
"""

from __future__ import annotations

from ..vision.rendering import BackgroundStyle

# Complexity drives clutter, brightness sets the gray level (the drone is
# dark, so bright backgrounds are high-contrast), contrast scales texture
# amplitude.  Pattern seeds are arbitrary but frozen: each background must
# render identically in every run.
_LIBRARY: dict[str, BackgroundStyle] = {
    # Indoor
    "indoor_wall": BackgroundStyle(complexity=0.10, brightness=0.85, contrast=0.10, pattern_seed=101),
    "indoor_lab": BackgroundStyle(complexity=0.55, brightness=0.60, contrast=0.45, pattern_seed=102),
    "indoor_warehouse": BackgroundStyle(complexity=0.70, brightness=0.35, contrast=0.55, pattern_seed=103),
    # Outdoor
    "open_sky": BackgroundStyle(complexity=0.05, brightness=0.92, contrast=0.08, pattern_seed=201),
    "cloudy_sky": BackgroundStyle(complexity=0.25, brightness=0.75, contrast=0.25, pattern_seed=202),
    "tree_line": BackgroundStyle(complexity=0.85, brightness=0.30, contrast=0.70, pattern_seed=203),
    "forest_shade": BackgroundStyle(complexity=0.90, brightness=0.18, contrast=0.60, pattern_seed=204),
    "urban_facade": BackgroundStyle(complexity=0.75, brightness=0.50, contrast=0.65, pattern_seed=205),
    "parking_lot": BackgroundStyle(complexity=0.45, brightness=0.55, contrast=0.40, pattern_seed=206),
    "dusk_horizon": BackgroundStyle(complexity=0.35, brightness=0.22, contrast=0.30, pattern_seed=207),
    # Night: very dark scenes where the dark airframe nearly vanishes.
    "night_sky": BackgroundStyle(complexity=0.08, brightness=0.07, contrast=0.10, pattern_seed=208),
    "moonlit_field": BackgroundStyle(complexity=0.42, brightness=0.16, contrast=0.22, pattern_seed=209),
    # Fog: bright but washed out — low contrast without low light.
    "fog_bank": BackgroundStyle(complexity=0.12, brightness=0.68, contrast=0.06, pattern_seed=210),
    "fog_treeline": BackgroundStyle(complexity=0.50, brightness=0.58, contrast=0.15, pattern_seed=211),
}


def background(name: str) -> BackgroundStyle:
    """Look up a background style by name; raises KeyError with guidance."""
    try:
        return _LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(_LIBRARY))
        raise KeyError(f"unknown background {name!r}; known backgrounds: {known}") from None


def background_names() -> list[str]:
    """All registered background names, sorted."""
    return sorted(_LIBRARY)


def register_background(name: str, style: BackgroundStyle, replace: bool = False) -> None:
    """Add a custom background to the library.

    Set ``replace=True`` to overwrite an existing entry; otherwise a
    collision raises ValueError so scenario definitions stay unambiguous.
    """
    if not replace and name in _LIBRARY:
        raise ValueError(f"background {name!r} already registered")
    _LIBRARY[name] = style
