"""Frame generation: turn scenario scripts into frames with ground truth.

The generator walks a scenario's segments, eases the distance profile,
advances the motion path, renders the grayscale image, and packages
everything a policy or profiler needs: the rendered pixels (for NCC and
tracking), the latent :class:`~repro.data.scene.SceneState` (for the
simulated detectors), the ground-truth box, and the scalar difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from ..vision.bbox import BoundingBox
from ..vision.rendering import render_frame, render_segment_frames
from .backgrounds import background
from .scenario import Scenario, Segment, path_position
from .scene import SceneState, approach_profile, scene_difficulty

# The paper's camera streams run at 30 fps; frame timestamps follow that.
CAMERA_FPS = 30.0


@dataclass(frozen=True)
class Frame:
    """Everything known about one frame of a scenario.

    ``image`` is the rendered grayscale frame in [0, 1]; ``ground_truth``
    is None when the target is absent from the view; ``difficulty`` is the
    latent context difficulty driving the simulated detectors; ``segment``
    names the scenario segment the frame belongs to.
    """

    index: int
    timestamp: float
    image: np.ndarray
    scene: SceneState
    ground_truth: BoundingBox | None
    difficulty: float
    segment: str

    @property
    def target_visible(self) -> bool:
        """True when the ground-truth box exists in this frame."""
        return self.ground_truth is not None


def _segment_scenes(segment: Segment, frame_size: int, start_drift: float) -> list[SceneState]:
    """Latent scene states for one segment (positions, distances, speeds)."""
    style = background(segment.background_name)
    distances = approach_profile(segment.distance_start, segment.distance_end, segment.frames)
    scenes: list[SceneState] = []
    previous_xy: tuple[float, float] | None = None
    drift = start_drift
    for i in range(segment.frames):
        t = i / max(1, segment.frames - 1)
        nx, ny = path_position(segment.path, t)
        cx = nx * frame_size
        cy = ny * frame_size
        speed = (
            0.0 if previous_xy is None
            else float(np.hypot(cx - previous_xy[0], cy - previous_xy[1]))
        )
        previous_xy = (cx, cy)
        drift += segment.pan
        visible = segment.path != "absent"
        scenes.append(
            SceneState(
                background=style,
                background_name=segment.background_name,
                cx=cx,
                cy=cy,
                distance=distances[i],
                speed=speed,
                drift=drift,
                visible=visible,
                frame_size=frame_size,
            )
        )
    return scenes


def _segment_stream(scenario: Scenario) -> Iterator[tuple[Segment, list[SceneState]]]:
    """Yield (segment, its scenes) in order, threading pan drift through.

    The single owner of the drift hand-off invariant: each segment starts
    where the previous one's background pan left off.
    """
    drift = 0.0
    for segment in scenario.segments:
        scenes = _segment_scenes(segment, scenario.frame_size, drift)
        if scenes:
            drift = scenes[-1].drift
        yield segment, scenes


def _scene_stream(scenario: Scenario) -> Iterator[tuple[Segment, SceneState]]:
    """Yield (segment, scene) for every frame, threading pan drift through."""
    for segment, scenes in _segment_stream(scenario):
        for scene in scenes:
            yield segment, scene


def scenario_scenes(scenario: Scenario) -> list[SceneState]:
    """Latent scene states of every frame, without rendering any pixels.

    Detection outcomes depend only on the scene state (the simulated
    detectors never read pixels), so trace builders that fan detection out
    across worker processes use this to skip the rendering cost entirely;
    the states are identical to the ``scene`` fields of
    :func:`generate_frames`.
    """
    return [scene for _, scene in _scene_stream(scenario)]


def generate_frames(scenario: Scenario) -> Iterator[Frame]:
    """Yield every frame of ``scenario`` in order, deterministically.

    The sensor-noise stream is seeded from the scenario seed, so the same
    scenario always produces bit-identical frames.

    This is the scalar *reference* path (one :func:`render_frame` call per
    frame); :func:`render_scenario` produces bit-identical frames through
    the segment-batched renderer and is what the trace tier uses.
    """
    noise_rng = np.random.default_rng(scenario.seed)
    for index, (segment, scene) in enumerate(_scene_stream(scenario)):
        truth = scene.ground_truth_box()
        image = render_frame(
            scene.background,
            truth,
            frame_size=scenario.frame_size,
            drift=scene.drift,
            noise_rng=noise_rng,
        )
        yield Frame(
            index=index,
            timestamp=index / CAMERA_FPS,
            image=image,
            scene=scene,
            ground_truth=truth,
            difficulty=scene_difficulty(scene),
            segment=segment.name,
        )


def render_scenario(scenario: Scenario) -> list[Frame]:
    """Materialize every frame of a scenario as a list.

    Renders segment by segment through
    :func:`~repro.vision.rendering.render_segment_frames` — bit-identical
    to :func:`generate_frames`, several times faster (this call sits on
    every trace build and lazy store load).
    """
    noise_rng = np.random.default_rng(scenario.seed)
    frames: list[Frame] = []
    index = 0
    for segment, scenes in _segment_stream(scenario):
        truths = [scene.ground_truth_box() for scene in scenes]
        images = render_segment_frames(
            background(segment.background_name),
            truths,
            [scene.drift for scene in scenes],
            frame_size=scenario.frame_size,
            noise_rng=noise_rng,
        )
        for scene, truth, image in zip(scenes, truths, images, strict=True):
            frames.append(
                Frame(
                    index=index,
                    timestamp=index / CAMERA_FPS,
                    image=image,
                    scene=scene,
                    ground_truth=truth,
                    difficulty=scene_difficulty(scene),
                    segment=segment.name,
                )
            )
            index += 1
    return frames
