"""Procedural scenario grammar: compose flights from parameterized families.

The hand-written library covers ten flights; the north-star workload is
"as many scenarios as you can imagine".  This module turns scenario
authoring into data:

* a :class:`SegmentFamily` is a reusable flight *phrase* — a crossing, a
  loiter, a pop-up appearance, an occlusion dip, an altitude ramp, a
  high-pan burst — that expands into concrete :class:`~.scenario.Segment`
  runs from a frame budget, a starting distance, and a seeded parameter
  stream;
* a :class:`Regime` fixes the environment (background roster, indoor flag,
  camera-pan scale) for day, night, fog, and indoor operation;
* a :class:`ScenarioRecipe` composes families under validity constraints
  (exact frame budget, distance continuity between phrases, regime-legal
  backgrounds) and builds one deterministic :class:`~.scenario.Scenario`;
* a :class:`ScenarioMatrix` expands a recipe grid (compositions x regimes
  x seeds x budgets) into hundreds of distinct, fingerprint-stable
  scenarios.

Everything is seed-deterministic and process-independent: parameters come
from ``random.Random`` seeded by strings derived from the recipe's
*content* identity (:meth:`ScenarioRecipe.content_key` — stdlib string
seeding is stable across platforms and processes), and per-recipe
scenario seeds are SHA-256-derived from the same key.  Display names
label scenarios but never feed a seed, so renaming a recipe can never
reshuffle its content (the metamorphic suite pins this).  Two
processes that expand the same matrix therefore agree on every scenario
name *and* every content fingerprint — which is what lets generated
scenarios flow through ``scenario_by_name``, the CLI ``sweep``, the trace
store, and the experiment runner exactly like hand-written ones.

The :data:`default matrix <DEFAULT_MATRIX>` is registered as a lazy
scenario source on import, so ``scenario_by_name("g_...")`` works anywhere
``repro.data`` is imported.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from collections.abc import Callable

from .scenario import Scenario, Segment, register_scenario_source

# Generated scenario names carry this prefix; the built-in library uses
# "s*" (paper) and "x_*" (extended), so the namespaces never collide.
GENERATED_PREFIX = "g_"

# Distances stay inside this band so eased profiles, jitter, and ramps can
# never push a segment outside the Segment validator's [0, 1] range.
MIN_DISTANCE = 0.04
MAX_DISTANCE = 0.94


class GrammarError(ValueError):
    """Raised when a recipe or matrix cannot produce a valid scenario."""


def _clamp_distance(value: float) -> float:
    return min(MAX_DISTANCE, max(MIN_DISTANCE, value))


def split_frames(total: int, weights: tuple[float, ...], minimum: int = 2) -> list[int]:
    """Split ``total`` frames across ``weights`` proportionally, exactly.

    Every part gets at least ``minimum`` frames; the result always sums to
    ``total`` (floor-proportional allocation, remainder left-to-right,
    then deficits repaid by the largest parts).  Raises
    :class:`GrammarError` when ``total`` cannot cover the minimums.
    """
    if not weights:
        raise GrammarError("cannot split frames over zero parts")
    if total < minimum * len(weights):
        raise GrammarError(
            f"{total} frames cannot cover {len(weights)} parts of at least {minimum} frames each"
        )
    scale = sum(weights)
    parts = [max(minimum, int(total * w / scale)) for w in weights]
    # Repay any overshoot from the largest parts, then hand out the
    # remainder left-to-right; both loops terminate because the minimum
    # check above guarantees a feasible allocation exists.
    while sum(parts) > total:
        largest = max(range(len(parts)), key=lambda i: parts[i])
        if parts[largest] <= minimum:
            raise GrammarError(f"cannot honour minimum {minimum} within {total} frames")
        parts[largest] -= 1
    for i in itertools.cycle(range(len(parts))):
        if sum(parts) == total:
            break
        parts[i] += 1
    return parts


# ------------------------------------------------------------------ regimes


@dataclass(frozen=True)
class Regime:
    """An operating environment: legal backgrounds plus global modifiers.

    ``roster`` lists the backgrounds families may draw from; ``pan_scale``
    damps or boosts camera pan (night and fog flights pan gently, day
    pursuit pans hard); ``indoor`` flows into the scenario flag.
    """

    name: str
    roster: tuple[str, ...]
    indoor: bool = False
    pan_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.roster:
            raise GrammarError(f"regime {self.name!r} needs at least one background")
        if self.pan_scale < 0.0:
            raise GrammarError(f"regime {self.name!r}: pan_scale must be non-negative")


REGIMES: dict[str, Regime] = {
    "day": Regime(
        name="day",
        roster=("open_sky", "cloudy_sky", "tree_line", "parking_lot", "urban_facade", "forest_shade"),
        pan_scale=1.0,
    ),
    "night": Regime(name="night", roster=("night_sky", "moonlit_field"), pan_scale=0.6),
    "fog": Regime(name="fog", roster=("fog_bank", "fog_treeline"), pan_scale=0.5),
    "indoor": Regime(
        name="indoor",
        roster=("indoor_wall", "indoor_lab", "indoor_warehouse"),
        indoor=True,
        pan_scale=0.3,
    ),
}


def regime(name: str) -> Regime:
    """Look up a regime by name; raises GrammarError with guidance."""
    try:
        return REGIMES[name]
    except KeyError:
        known = ", ".join(sorted(REGIMES))
        raise GrammarError(f"unknown regime {name!r}; known regimes: {known}") from None


# ----------------------------------------------------------------- families


@dataclass(frozen=True)
class FamilySlot:
    """What a recipe hands a family when instantiating one phrase.

    ``frames`` is the exact budget the family must consume; ``start`` is
    the distance the previous phrase ended at (the family's first segment
    must start there — the continuity constraint); ``rng`` is a seeded
    parameter stream private to this (recipe, slot) pair; ``prefix``
    namespaces segment names within the scenario.
    """

    index: int
    frames: int
    start: float
    regime: Regime
    rng: random.Random
    prefix: str

    def pick_background(self) -> str:
        """A roster background, drawn from this slot's parameter stream."""
        return self.rng.choice(self.regime.roster)

    def pan(self, low: float, high: float) -> float:
        """A pan level in [low, high], scaled by the regime."""
        return round(self.rng.uniform(low, high) * self.regime.pan_scale, 3)


BuilderFn = Callable[[FamilySlot], tuple[Segment, ...]]


@dataclass(frozen=True)
class SegmentFamily:
    """A parameterized flight phrase: budget + slot in, segments out.

    ``min_frames`` is the smallest budget under which the family's shape
    survives (every internal segment keeps >= 2 frames); recipes validate
    their budget splits against it before building.
    """

    name: str
    description: str
    min_frames: int
    build: BuilderFn

    def instantiate(self, slot: FamilySlot) -> tuple[Segment, ...]:
        """Expand this family in ``slot``, enforcing the phrase contract."""
        if slot.frames < self.min_frames:
            raise GrammarError(
                f"family {self.name!r} needs >= {self.min_frames} frames, got {slot.frames}"
            )
        segments = self.build(slot)
        if not segments:
            raise GrammarError(f"family {self.name!r} produced no segments")
        produced = sum(s.frames for s in segments)
        if produced != slot.frames:
            raise GrammarError(
                f"family {self.name!r} consumed {produced} frames of a {slot.frames}-frame budget"
            )
        return segments


def _build_crossing(slot: FamilySlot) -> tuple[Segment, ...]:
    """Horizontal crossing: enter, traverse (possibly changing background), exit."""
    enter, cross, leave = split_frames(slot.frames, (1.0, 2.2, 1.0))
    depth = _clamp_distance(slot.start + slot.rng.uniform(-0.08, 0.10))
    pan = slot.pan(0.1, 0.9)
    return (
        Segment(f"{slot.prefix}_enter", enter, slot.pick_background(), slot.start, depth,
                path="enter_left"),
        Segment(f"{slot.prefix}_cross", cross, slot.pick_background(), depth, depth,
                path="sweep_lr", pan=pan),
        Segment(f"{slot.prefix}_exit", leave, slot.pick_background(), depth, slot.start,
                path="exit_right", pan=pan),
    )


def _build_loiter(slot: FamilySlot) -> tuple[Segment, ...]:
    """Loiter: hover on station, then a slow orbit drifting slightly closer."""
    hold, orbit = split_frames(slot.frames, (1.0, 1.4))
    closer = _clamp_distance(slot.start - slot.rng.uniform(0.05, 0.18))
    background = slot.pick_background()
    return (
        Segment(f"{slot.prefix}_hold", hold, background, slot.start, closer, path="hover"),
        Segment(f"{slot.prefix}_orbit", orbit, background, closer, slot.start,
                path="orbit", pan=slot.pan(0.0, 0.3)),
    )


def _build_popup(slot: FamilySlot) -> tuple[Segment, ...]:
    """Pop-up: empty view, sudden appearance, then a settling hover."""
    empty, appear, settle = split_frames(slot.frames, (1.0, 1.0, 1.6))
    near = _clamp_distance(slot.start - slot.rng.uniform(0.0, 0.12))
    background = slot.pick_background()
    return (
        Segment(f"{slot.prefix}_empty", empty, background, slot.start, slot.start, path="absent"),
        Segment(f"{slot.prefix}_appear", appear, background, slot.start, near, path="enter_left"),
        Segment(f"{slot.prefix}_settle", settle, slot.pick_background(), near, slot.start,
                path="hover"),
    )


def _build_occlusion_dip(slot: FamilySlot) -> tuple[Segment, ...]:
    """Occlusion dip: tracked flight, a blackout behind cover, reacquisition."""
    before, occluded, after = split_frames(slot.frames, (1.5, 1.0, 1.5))
    deep = _clamp_distance(slot.start + slot.rng.uniform(0.04, 0.14))
    cover = slot.pick_background()
    return (
        Segment(f"{slot.prefix}_approach", before, slot.pick_background(), slot.start, deep,
                path="sweep_lr", pan=slot.pan(0.0, 0.4)),
        Segment(f"{slot.prefix}_occluded", occluded, cover, deep, deep, path="absent"),
        Segment(f"{slot.prefix}_reacquire", after, cover, deep, slot.start,
                path="sweep_rl", pan=slot.pan(0.0, 0.4)),
    )


def _build_altitude_ramp(slot: FamilySlot) -> tuple[Segment, ...]:
    """Altitude ramp: climb far out on a weave, then descend most of the way."""
    climb, descend = split_frames(slot.frames, (1.3, 1.0))
    apex = _clamp_distance(slot.start + slot.rng.uniform(0.20, 0.40))
    partial = _clamp_distance(slot.start + (apex - slot.start) * slot.rng.uniform(0.0, 0.35))
    return (
        Segment(f"{slot.prefix}_climb", climb, slot.pick_background(), slot.start, apex,
                path="weave", pan=slot.pan(0.0, 0.3)),
        Segment(f"{slot.prefix}_descend", descend, slot.pick_background(), apex, partial,
                path="orbit"),
    )


def _build_pan_burst(slot: FamilySlot) -> tuple[Segment, ...]:
    """Pan burst: back-to-back sweep legs under aggressive camera pan."""
    out, back = split_frames(slot.frames, (1.0, 1.0))
    pan = slot.pan(0.8, 1.8)
    band = _clamp_distance(slot.start + slot.rng.uniform(-0.06, 0.06))
    return (
        Segment(f"{slot.prefix}_dash", out, slot.pick_background(), slot.start, band,
                path="sweep_lr", pan=pan),
        Segment(f"{slot.prefix}_return", back, slot.pick_background(), band, slot.start,
                path="sweep_rl", pan=pan),
    )


FAMILIES: dict[str, SegmentFamily] = {
    f.name: f
    for f in (
        SegmentFamily("crossing", "enter, traverse, and exit the view", 8, _build_crossing),
        SegmentFamily("loiter", "hover on station, then orbit", 4, _build_loiter),
        SegmentFamily("popup", "empty view, sudden appearance, settle", 6, _build_popup),
        SegmentFamily("occlusion_dip", "track, blackout behind cover, reacquire", 6,
                      _build_occlusion_dip),
        SegmentFamily("altitude_ramp", "climb far out, descend partway", 4, _build_altitude_ramp),
        SegmentFamily("pan_burst", "sweep legs under aggressive camera pan", 4, _build_pan_burst),
    )
}

# Compact family codes used in generated scenario names.
_FAMILY_CODES = {
    "crossing": "crx",
    "loiter": "loi",
    "popup": "pop",
    "occlusion_dip": "occ",
    "altitude_ramp": "alt",
    "pan_burst": "pan",
}


def family(name: str) -> SegmentFamily:
    """Look up a segment family by name; raises GrammarError with guidance."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise GrammarError(f"unknown family {name!r}; known families: {known}") from None


def family_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(FAMILIES)


# ------------------------------------------------------------------ recipes


def _derive_seed(*parts: object) -> int:
    """A stable 32-bit seed from arbitrary identity parts (SHA-256 based).

    Python's ``hash()`` is salted per process; this is not — the same
    recipe derives the same scenario seed in every process, which keeps
    generated fingerprints stable across the CLI, workers, and CI.
    """
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ScenarioRecipe:
    """A declarative flight plan: families composed inside one regime.

    ``frame_budget`` is exact — the built scenario has precisely that many
    frames, split across families proportionally to their minimums.
    Every derived seed — the scenario's noise seed and each family's
    parameter stream — comes from :meth:`content_key`, the recipe's
    *content* identity (families, regime, base seed, budget, geometry):
    the display ``name`` labels the scenario but never feeds a seed, so
    renaming a recipe is metamorphically invisible (identical segments,
    identical noise, only the label changes — the property
    ``tests/test_metamorphic.py`` pins).  Build validity is enforced, not
    assumed: unknown names, infeasible budgets, and continuity violations
    raise :class:`GrammarError` before any scenario object exists.
    """

    name: str
    families: tuple[str, ...]
    regime_name: str = "day"
    base_seed: int = 0
    frame_budget: int = 120
    start_distance: float = 0.30
    frame_size: int = 96

    def __post_init__(self) -> None:
        if not self.name:
            raise GrammarError("recipe name must be non-empty")
        if not self.families:
            raise GrammarError(f"recipe {self.name!r} needs at least one family")
        for name in self.families:
            family(name)  # fail fast on typos
        regime(self.regime_name)
        if self.frame_budget < 1:
            raise GrammarError(f"recipe {self.name!r}: frame_budget must be positive")
        if not MIN_DISTANCE <= self.start_distance <= MAX_DISTANCE:
            raise GrammarError(
                f"recipe {self.name!r}: start_distance must be within "
                f"[{MIN_DISTANCE}, {MAX_DISTANCE}]"
            )

    @property
    def scenario_name(self) -> str:
        """The generated scenario's name (stable, collision-free by content)."""
        tag = "-".join(_FAMILY_CODES[f] for f in self.families)
        return f"{GENERATED_PREFIX}{self.name}_{tag}_{self.regime_name}_{self.frame_budget}f"

    def content_key(self) -> str:
        """The recipe's content identity: every seed-relevant field, no name.

        All derived randomness (scenario seed, per-family parameter
        streams) is seeded from this string, so two recipes that differ
        only in display name build scenarios with identical segments and
        noise — renaming never reshuffles content.
        """
        return "|".join(
            (
                ",".join(self.families),
                self.regime_name,
                str(self.base_seed),
                str(self.frame_budget),
                repr(self.start_distance),
                str(self.frame_size),
            )
        )

    def build(self) -> Scenario:
        """Expand this recipe into a deterministic, validated scenario."""
        env = regime(self.regime_name)
        content = self.content_key()
        phrases = [family(name) for name in self.families]
        budgets = split_frames(
            self.frame_budget,
            tuple(float(p.min_frames) for p in phrases),
            minimum=max(p.min_frames for p in phrases),
        )
        segments: list[Segment] = []
        distance = self.start_distance
        for index, (phrase, frames) in enumerate(zip(phrases, budgets, strict=True)):
            rng = random.Random(f"{content}|{index}|{phrase.name}")
            slot = FamilySlot(
                index=index,
                frames=frames,
                start=distance,
                regime=env,
                rng=rng,
                prefix=f"p{index}_{phrase.name}",
            )
            produced = phrase.instantiate(slot)
            if abs(produced[0].distance_start - distance) > 1e-9:
                raise GrammarError(
                    f"family {phrase.name!r} broke distance continuity at phrase {index} "
                    f"({produced[0].distance_start} != {distance})"
                )
            for previous, current in zip(produced, produced[1:], strict=False):
                if abs(current.distance_start - previous.distance_end) > 1e-9:
                    raise GrammarError(
                        f"family {phrase.name!r} produced a discontinuous distance profile"
                    )
            segments.extend(produced)
            distance = produced[-1].distance_end
        scenario = Scenario(
            name=self.scenario_name,
            description=(
                f"Generated ({self.regime_name}): " + ", ".join(p.description for p in phrases)
            ),
            indoor=env.indoor,
            seed=_derive_seed("grammar", content),
            segments=tuple(segments),
            frame_size=self.frame_size,
        )
        if scenario.total_frames != self.frame_budget:
            raise GrammarError(
                f"recipe {self.name!r} produced {scenario.total_frames} frames "
                f"for a {self.frame_budget}-frame budget"
            )
        return scenario


# ------------------------------------------------------------------- matrix


@dataclass(frozen=True)
class ScenarioMatrix:
    """A recipe grid: compositions x regimes x seeds x budgets.

    Expansion is the full cartesian product, in deterministic order; every
    cell becomes one :class:`ScenarioRecipe` whose name encodes the cell,
    so names (and therefore fingerprints) are stable under re-expansion in
    any process.  Use :meth:`scenarios` for the built scenarios and
    :func:`~.scenario.register_scenario_source` (or :meth:`register`) to
    make them resolvable by name.
    """

    name: str
    compositions: tuple[tuple[str, ...], ...]
    regimes: tuple[str, ...] = ("day",)
    seeds: tuple[int, ...] = (0,)
    frame_budgets: tuple[int, ...] = (120,)
    start_distance: float = 0.30
    frame_size: int = 96

    def __post_init__(self) -> None:
        if not self.name:
            raise GrammarError("matrix name must be non-empty")
        for axis, label in (
            (self.compositions, "compositions"),
            (self.regimes, "regimes"),
            (self.seeds, "seeds"),
            (self.frame_budgets, "frame_budgets"),
        ):
            if not axis:
                raise GrammarError(f"matrix {self.name!r}: {label} axis is empty")

    def __len__(self) -> int:
        return (
            len(self.compositions) * len(self.regimes) * len(self.seeds) * len(self.frame_budgets)
        )

    def recipes(self) -> list[ScenarioRecipe]:
        """One recipe per grid cell, in deterministic expansion order."""
        expanded = []
        for families_, regime_name, seed, budget in itertools.product(
            self.compositions, self.regimes, self.seeds, self.frame_budgets
        ):
            expanded.append(
                ScenarioRecipe(
                    name=f"{self.name}_s{seed:03d}",
                    families=families_,
                    regime_name=regime_name,
                    base_seed=_derive_seed(self.name, families_, regime_name, seed, budget),
                    frame_budget=budget,
                    start_distance=self.start_distance,
                    frame_size=self.frame_size,
                )
            )
        return expanded

    def scenarios(self) -> list[Scenario]:
        """Build every grid cell; names and fingerprints are all distinct."""
        built = [recipe.build() for recipe in self.recipes()]
        names: set[str] = set()
        for scenario in built:
            if scenario.name in names:
                raise GrammarError(f"matrix {self.name!r} generated duplicate name {scenario.name!r}")
            names.add(scenario.name)
        return built

    def register(self) -> None:
        """Make this matrix's scenarios resolvable through ``scenario_by_name``."""
        register_scenario_source(self.scenarios)


def default_matrix() -> ScenarioMatrix:
    """The canonical generated library: 144 flights over all six families.

    Registered as a lazy scenario source on import of :mod:`repro.data`,
    so every ``g_dm_*`` name resolves in any process; the differential
    fuzz harness (:mod:`repro.verify`) sweeps seeded samples of it in CI.
    """
    return ScenarioMatrix(
        name="dm",
        compositions=(
            ("crossing",),
            ("loiter", "popup"),
            ("altitude_ramp", "crossing"),
            ("occlusion_dip", "loiter"),
            ("pan_burst", "altitude_ramp"),
            ("popup", "occlusion_dip", "pan_burst"),
        ),
        regimes=("day", "night", "fog", "indoor"),
        seeds=(1, 2),
        frame_budgets=(96, 180, 300),
    )


DEFAULT_MATRIX = default_matrix()
DEFAULT_MATRIX.register()
