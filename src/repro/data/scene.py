"""Scene state: the latent context behind every simulated frame.

The paper's central observation is that the *context* of a frame — how far
the drone is, how cluttered and low-contrast the background is, how fast
things move — determines how accurate each object-detection model will be.
This module makes that context explicit: a :class:`SceneState` captures the
latent variables, and :func:`scene_difficulty` collapses them into a single
difficulty score in ``[0, 1]`` that drives the simulated detectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..vision.bbox import BoundingBox
from ..vision.rendering import DEFAULT_FRAME_SIZE, BackgroundStyle

# Gray level the target is painted with; difficulty rises as the background
# brightness approaches it (camouflage).
TARGET_GRAY_LEVEL = 0.08

# Apparent target width in pixels at distance 0 (nearest) for a 96-px frame.
NEAR_TARGET_WIDTH = 30.0
# Fraction of the near width that remains at distance 1 (farthest).
FAR_WIDTH_FRACTION = 0.12
# Drones render wider than tall in our scenarios (quadcopter profile).
TARGET_ASPECT = 0.62

# Speed (pixels/frame) past which motion blur saturates the difficulty term.
MOTION_SATURATION_SPEED = 6.0


@dataclass(frozen=True)
class SceneState:
    """Latent state of the world at one frame.

    ``distance`` is normalized: 0 means nearest approach, 1 means farthest.
    ``cx``/``cy`` are the target center in pixels; ``speed`` is the target's
    apparent speed in pixels/frame; ``drift`` is background pan in pixels.
    ``visible`` is False when the target is outside the camera frustum.
    """

    background: BackgroundStyle
    background_name: str
    cx: float
    cy: float
    distance: float
    speed: float = 0.0
    drift: float = 0.0
    visible: bool = True
    frame_size: int = DEFAULT_FRAME_SIZE

    def __post_init__(self) -> None:
        if not 0.0 <= self.distance <= 1.0:
            raise ValueError(f"distance must be within [0, 1], got {self.distance}")
        if self.speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {self.speed}")
        if self.frame_size <= 0:
            raise ValueError("frame_size must be positive")

    @property
    def target_width(self) -> float:
        """Apparent target width in pixels, shrinking with distance."""
        scale = FAR_WIDTH_FRACTION + (1.0 - FAR_WIDTH_FRACTION) * (1.0 - self.distance)
        return NEAR_TARGET_WIDTH * scale * (self.frame_size / DEFAULT_FRAME_SIZE)

    @property
    def target_height(self) -> float:
        """Apparent target height in pixels."""
        return self.target_width * TARGET_ASPECT

    def ground_truth_box(self) -> BoundingBox | None:
        """The target's true bounding box, clipped to the frame.

        Returns None when the target is not visible or its box falls
        entirely outside the frame.
        """
        if not self.visible:
            return None
        box = BoundingBox.from_center(self.cx, self.cy, self.target_width, self.target_height)
        clipped = box.clipped(float(self.frame_size), float(self.frame_size))
        if clipped.is_degenerate():
            return None
        return clipped

    def with_position(self, cx: float, cy: float) -> "SceneState":
        """Copy with a new target position."""
        return replace(self, cx=cx, cy=cy)


def _size_term(scene: SceneState) -> float:
    """Smaller apparent targets are harder; saturates for large targets."""
    relative_width = scene.target_width / scene.frame_size
    # Targets spanning >=24% of the frame are trivially easy (term 0); the
    # smallest far targets approach 1.
    return float(min(1.0, max(0.0, 1.0 - relative_width / 0.24)))


def _clutter_term(scene: SceneState) -> float:
    """Busy textures produce distractor responses."""
    return scene.background.complexity


def _camouflage_term(scene: SceneState) -> float:
    """Low brightness gap between target and background hides the target."""
    gap = abs(scene.background.brightness - TARGET_GRAY_LEVEL)
    # Gap of >=0.5 gray levels gives full separation.
    separation = min(1.0, gap / 0.5)
    # Strong texture contrast additionally masks the silhouette.
    masking = 0.35 * scene.background.contrast
    return float(min(1.0, max(0.0, 1.0 - separation + masking)))


def _motion_term(scene: SceneState) -> float:
    """Fast apparent motion blurs the target."""
    combined = scene.speed + 0.5 * abs(scene.drift)
    return float(min(1.0, combined / MOTION_SATURATION_SPEED))


def _edge_term(scene: SceneState) -> float:
    """Targets near the frame edge are partially cropped and harder."""
    half = scene.frame_size / 2.0
    dx = abs(scene.cx - half) / half
    dy = abs(scene.cy - half) / half
    eccentricity = max(dx, dy)
    # Only the outer 25% of travel toward the edge matters.
    return float(min(1.0, max(0.0, (eccentricity - 0.75) / 0.25)))


# Blend weights for the difficulty factors; chosen so distance dominates
# (matching the paper's scenarios, where range drives model choice), with
# background clutter/camouflage next and motion/edge effects as refinements.
DIFFICULTY_WEIGHTS = {
    "size": 0.40,
    "clutter": 0.22,
    "camouflage": 0.22,
    "motion": 0.10,
    "edge": 0.06,
}


def difficulty_components(scene: SceneState) -> dict[str, float]:
    """Per-factor difficulty contributions, each in [0, 1]."""
    return {
        "size": _size_term(scene),
        "clutter": _clutter_term(scene),
        "camouflage": _camouflage_term(scene),
        "motion": _motion_term(scene),
        "edge": _edge_term(scene),
    }


def combine_difficulty(components: dict[str, float]) -> float:
    """The weighted blend of :func:`difficulty_components`, in [0, 1].

    Callers that already hold the components (batched sweeps) combine them
    directly; frames whose target is invisible or fully clipped are
    difficulty 1.0 by definition and must not reach this blend.
    """
    value = sum(DIFFICULTY_WEIGHTS[name] * term for name, term in components.items())
    return float(min(1.0, max(0.0, value)))


def scene_difficulty(scene: SceneState) -> float:
    """Collapse the scene's latent factors into a difficulty in [0, 1].

    0 is an easy frame every model nails (close target, clean contrasted
    background); 1 is a frame where even the largest model struggles.
    An invisible target has difficulty 1 by definition — no detector can
    localize it.
    """
    if not scene.visible or scene.ground_truth_box() is None:
        return 1.0
    return combine_difficulty(difficulty_components(scene))


def approach_profile(start: float, end: float, count: int) -> list[float]:
    """Smooth (cosine-eased) distance profile from ``start`` to ``end``."""
    if count <= 0:
        return []
    if count == 1:
        return [end]
    profile = []
    for i in range(count):
        t = i / (count - 1)
        eased = (1.0 - math.cos(math.pi * t)) / 2.0
        profile.append(start + (end - start) * eased)
    return profile
