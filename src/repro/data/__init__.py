"""Scenario substrate: scenes, backgrounds, scenarios, frames, datasets."""

from .backgrounds import background, background_names, register_background
from .dataset import DEFAULT_VALIDATION_SIZE, Sample, build_validation_set
from .generator import CAMERA_FPS, Frame, generate_frames, render_scenario, scenario_scenes
from .scenario import (
    PATHS,
    Scenario,
    Segment,
    all_scenarios,
    evaluation_scenarios,
    extended_scenarios,
    fog_crossing_scenario,
    long_endurance_patrol_scenario,
    multi_pan_survey_scenario,
    night_watch_scenario,
    path_position,
    scenario_by_name,
)
from .scene import (
    DIFFICULTY_WEIGHTS,
    SceneState,
    approach_profile,
    difficulty_components,
    scene_difficulty,
)

__all__ = [
    "background",
    "background_names",
    "register_background",
    "Sample",
    "build_validation_set",
    "DEFAULT_VALIDATION_SIZE",
    "Frame",
    "generate_frames",
    "render_scenario",
    "scenario_scenes",
    "CAMERA_FPS",
    "Scenario",
    "Segment",
    "evaluation_scenarios",
    "extended_scenarios",
    "all_scenarios",
    "night_watch_scenario",
    "fog_crossing_scenario",
    "multi_pan_survey_scenario",
    "long_endurance_patrol_scenario",
    "scenario_by_name",
    "path_position",
    "PATHS",
    "SceneState",
    "scene_difficulty",
    "difficulty_components",
    "approach_profile",
    "DIFFICULTY_WEIGHTS",
]
