"""Scenario substrate: scenes, backgrounds, scenarios, frames, datasets."""

from .backgrounds import background, background_names, register_background
from .dataset import DEFAULT_VALIDATION_SIZE, Sample, build_validation_set
from .generator import CAMERA_FPS, Frame, generate_frames, render_scenario, scenario_scenes
from .scenario import (
    PATHS,
    Scenario,
    Segment,
    all_scenarios,
    evaluation_scenarios,
    extended_scenarios,
    fog_crossing_scenario,
    long_endurance_patrol_scenario,
    multi_pan_survey_scenario,
    night_watch_scenario,
    path_position,
    register_scenario,
    register_scenario_source,
    registered_scenarios,
    scenario_by_name,
    scenario_names,
)

# Importing the grammar registers the default generated matrix as a lazy
# scenario source, making every ``g_*`` name resolvable by anything that
# imports ``repro.data`` (CLI, experiment context, workers).
from .grammar import (
    DEFAULT_MATRIX,
    FAMILIES,
    GENERATED_PREFIX,
    REGIMES,
    FamilySlot,
    GrammarError,
    Regime,
    ScenarioMatrix,
    ScenarioRecipe,
    SegmentFamily,
    default_matrix,
    family,
    family_names,
    regime,
    split_frames,
)
from .scene import (
    DIFFICULTY_WEIGHTS,
    SceneState,
    approach_profile,
    difficulty_components,
    scene_difficulty,
)

__all__ = [
    "background",
    "background_names",
    "register_background",
    "Sample",
    "build_validation_set",
    "DEFAULT_VALIDATION_SIZE",
    "Frame",
    "generate_frames",
    "render_scenario",
    "scenario_scenes",
    "CAMERA_FPS",
    "Scenario",
    "Segment",
    "evaluation_scenarios",
    "extended_scenarios",
    "all_scenarios",
    "night_watch_scenario",
    "fog_crossing_scenario",
    "multi_pan_survey_scenario",
    "long_endurance_patrol_scenario",
    "scenario_by_name",
    "scenario_names",
    "register_scenario",
    "register_scenario_source",
    "registered_scenarios",
    "path_position",
    "PATHS",
    # grammar
    "DEFAULT_MATRIX",
    "FAMILIES",
    "REGIMES",
    "GENERATED_PREFIX",
    "FamilySlot",
    "GrammarError",
    "Regime",
    "ScenarioMatrix",
    "ScenarioRecipe",
    "SegmentFamily",
    "default_matrix",
    "family",
    "family_names",
    "regime",
    "split_frames",
    # scene
    "SceneState",
    "scene_difficulty",
    "difficulty_components",
    "approach_profile",
    "DIFFICULTY_WEIGHTS",
]
