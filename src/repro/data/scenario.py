"""Scenario definitions: scripted flights of a single UAV target.

A :class:`Scenario` is a sequence of :class:`Segment` s; each segment fixes
a background, a distance profile, and a motion path.  The six evaluation
scenarios mirror the paper's custom dataset: two indoor and four outdoor
videos of 500–2,500 frames in which the drone crosses backgrounds at
varying distances.  Segment boundaries are where the frame context — and
therefore the best model choice — changes.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from collections.abc import Callable, Iterable

from .backgrounds import background

# Motion paths supported by the generator.  Each maps segment progress
# t in [0, 1] to a normalized (x, y) position in [0, 1]^2; positions may
# exceed the unit square for enter/exit paths (the target is then clipped
# or invisible).
PATHS = (
    "hover",
    "sweep_lr",
    "sweep_rl",
    "orbit",
    "weave",
    "enter_left",
    "exit_right",
    "absent",
)


@dataclass(frozen=True)
class Segment:
    """A homogeneous stretch of a scenario.

    ``distance_start``/``distance_end`` give the normalized range profile
    across the segment (eased by the generator); ``path`` selects the
    motion pattern; ``pan`` adds background drift in pixels/frame
    (camera motion), which both the renderer and the difficulty model see.
    """

    name: str
    frames: int
    background_name: str
    distance_start: float
    distance_end: float
    path: str = "hover"
    pan: float = 0.0

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ValueError(f"segment {self.name!r} must have at least 1 frame")
        if self.path not in PATHS:
            raise ValueError(f"unknown path {self.path!r}; expected one of {PATHS}")
        for value, label in ((self.distance_start, "distance_start"), (self.distance_end, "distance_end")):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"segment {self.name!r}: {label} must be within [0, 1], got {value}")
        # Validate eagerly so scenario definitions fail fast on typos.
        background(self.background_name)


@dataclass(frozen=True)
class Scenario:
    """A named, fully deterministic evaluation video."""

    name: str
    description: str
    indoor: bool
    seed: int
    segments: tuple[Segment, ...]
    frame_size: int = 96

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"scenario {self.name!r} needs at least one segment")

    @property
    def total_frames(self) -> int:
        """Total frame count across all segments."""
        return sum(segment.frames for segment in self.segments)

    def fingerprint(self) -> str:
        """Content-addressed identity of this scenario (hex digest).

        Hashes everything detection outcomes depend on: name, seed, frame
        size, and the full segment structure *including* the resolved
        background styles (so re-registering a background under the same
        name changes the fingerprint).  Two scenarios that would produce
        different traces always have different fingerprints; trace caches
        and the on-disk trace store key by this, never by (name, length).
        """
        digest = hashlib.sha256()
        parts = [self.name, str(self.seed), str(self.frame_size), str(int(self.indoor))]
        for segment in self.segments:
            style = background(segment.background_name)
            parts.append(
                "|".join(
                    (
                        segment.name,
                        str(segment.frames),
                        segment.background_name,
                        repr(style),
                        repr(segment.distance_start),
                        repr(segment.distance_end),
                        segment.path,
                        repr(segment.pan),
                    )
                )
            )
        digest.update("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()

    def scaled(self, factor: float) -> "Scenario":
        """Return a shorter copy with each segment scaled by ``factor``.

        Used by tests and quick examples; every segment keeps at least
        two frames so context transitions survive.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        scaled_segments = tuple(
            replace(segment, frames=max(2, int(round(segment.frames * factor))))
            for segment in self.segments
        )
        return replace(self, segments=scaled_segments)

    def segment_boundaries(self) -> list[int]:
        """Frame indices at which a new segment begins (excluding 0)."""
        boundaries = []
        total = 0
        for segment in self.segments[:-1]:
            total += segment.frames
            boundaries.append(total)
        return boundaries


def _scenario_1() -> Scenario:
    """Fig. 3: drone crosses multiple backgrounds at varying distances.

    The paper highlights context changes at frames ~50, ~500, ~1100 and
    ~1650: an easy opening, a push to distant cluttered backgrounds, and a
    return.  The segments below reproduce that arc.
    """
    return Scenario(
        name="s1_multi_background_varying_distance",
        description="Outdoor: multiple backgrounds, distance varies, returns near",
        indoor=False,
        seed=9301,
        segments=(
            Segment("launch_close", 50, "open_sky", 0.05, 0.15, path="hover"),
            Segment("climb_easy", 450, "open_sky", 0.15, 0.45, path="weave"),
            Segment("treeline_far", 600, "tree_line", 0.52, 0.72, path="sweep_lr", pan=0.4),
            Segment("forest_deep", 550, "forest_shade", 0.72, 0.58, path="orbit", pan=0.2),
            Segment("return_close", 150, "cloudy_sky", 0.45, 0.10, path="hover"),
        ),
    )


def _scenario_2() -> Scenario:
    """Fig. 4: horizontal crossing over simpler backgrounds, fixed distance.

    The drone enters the view, sweeps across, and leaves; the paper notes
    detections cease beyond frame ~450 when the target exits.
    """
    return Scenario(
        name="s2_fixed_distance_crossing",
        description="Outdoor: fixed distance, horizontal crossing, target exits",
        indoor=False,
        seed=9302,
        segments=(
            Segment("empty_sky", 60, "cloudy_sky", 0.45, 0.45, path="absent"),
            Segment("enter", 90, "cloudy_sky", 0.45, 0.45, path="enter_left"),
            Segment("cross_sky", 180, "open_sky", 0.45, 0.45, path="sweep_lr"),
            Segment("cross_lot", 120, "parking_lot", 0.45, 0.45, path="sweep_lr", pan=0.3),
            Segment("exit", 80, "parking_lot", 0.45, 0.45, path="exit_right"),
            Segment("gone", 70, "parking_lot", 0.45, 0.45, path="absent"),
        ),
    )


def _scenario_3() -> Scenario:
    """Indoor: close-range hover against a plain wall (easy context)."""
    return Scenario(
        name="s3_indoor_close_wall",
        description="Indoor: close hover against contrasted wall",
        indoor=True,
        seed=9303,
        segments=(
            Segment("hover_wall", 300, "indoor_wall", 0.05, 0.20, path="hover"),
            Segment("drift_wall", 200, "indoor_wall", 0.20, 0.35, path="weave"),
        ),
    )


def _scenario_4() -> Scenario:
    """Indoor: cluttered lab and warehouse shelving (hard indoor context)."""
    return Scenario(
        name="s4_indoor_clutter",
        description="Indoor: cluttered lab then dim warehouse",
        indoor=True,
        seed=9304,
        segments=(
            Segment("lab_mid", 350, "indoor_lab", 0.25, 0.45, path="weave"),
            Segment("warehouse_far", 300, "indoor_warehouse", 0.45, 0.62, path="sweep_rl"),
            Segment("warehouse_return", 150, "indoor_warehouse", 0.58, 0.30, path="orbit"),
        ),
    )


def _scenario_5() -> Scenario:
    """Outdoor: long-range patrol against sky then dusk horizon."""
    return Scenario(
        name="s5_far_patrol",
        description="Outdoor: long-range patrol, sky to dusk horizon",
        indoor=False,
        seed=9305,
        segments=(
            Segment("patrol_sky", 500, "open_sky", 0.45, 0.65, path="sweep_lr"),
            Segment("patrol_turn", 200, "cloudy_sky", 0.65, 0.72, path="orbit"),
            Segment("patrol_dusk", 400, "dusk_horizon", 0.72, 0.55, path="sweep_rl", pan=0.25),
            Segment("patrol_home", 100, "cloudy_sky", 0.50, 0.25, path="hover"),
        ),
    )


def _scenario_6() -> Scenario:
    """Outdoor: fast urban pursuit across facades (motion-heavy context)."""
    return Scenario(
        name="s6_urban_pursuit",
        description="Outdoor: fast pursuit across urban facades",
        indoor=False,
        seed=9306,
        segments=(
            Segment("facade_dash", 300, "urban_facade", 0.30, 0.45, path="sweep_lr", pan=1.2),
            Segment("lot_dash", 250, "parking_lot", 0.40, 0.50, path="sweep_rl", pan=1.0),
            Segment("facade_far", 250, "urban_facade", 0.50, 0.65, path="weave", pan=0.8),
            Segment("close_pass", 100, "parking_lot", 0.35, 0.12, path="orbit"),
        ),
    )


def evaluation_scenarios() -> list[Scenario]:
    """The six evaluation scenarios (2 indoor, 4 outdoor), paper §IV."""
    return [
        _scenario_1(),
        _scenario_2(),
        _scenario_3(),
        _scenario_4(),
        _scenario_5(),
        _scenario_6(),
    ]


# ------------------------------------------------ extended flight library
#
# Procedurally parameterized flights beyond the paper's six videos.  Each
# builder takes knobs (seed, duration, pan intensity, lap count) and
# derives a deterministic scenario, so the experiment runner has diverse
# workloads to fan out over without hand-writing every segment.


def night_watch_scenario(seed: int = 9307, base_frames: int = 400) -> Scenario:
    """Night operations: dark sky and moonlit ground, target barely lit.

    ``base_frames`` scales the whole flight; segments keep the paper's
    arc (easy start, hard middle, return) under near-zero illumination.
    """
    if base_frames < 20:
        raise ValueError("base_frames must be at least 20")
    unit = base_frames // 10
    return Scenario(
        name=f"x_night_watch_{base_frames}f",
        description="Outdoor night: dark sky then moonlit field, low light",
        indoor=False,
        seed=seed,
        segments=(
            Segment("night_launch", 2 * unit, "night_sky", 0.10, 0.30, path="hover"),
            Segment("night_sweep", 3 * unit, "night_sky", 0.30, 0.55, path="sweep_lr"),
            Segment("field_search", 3 * unit, "moonlit_field", 0.55, 0.45, path="weave", pan=0.3),
            Segment("night_return", 2 * unit, "night_sky", 0.45, 0.15, path="hover"),
        ),
    )


def fog_crossing_scenario(seed: int = 9308, density: float = 0.7, base_frames: int = 360) -> Scenario:
    """Fog bank crossing: bright but washed-out, contrast near zero.

    ``density`` in [0, 1] pushes the flight deeper into the fog (longer
    far-range stretches); the scenario name encodes it so distinct
    densities never share a trace.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be within [0, 1], got {density}")
    if base_frames < 20:
        raise ValueError("base_frames must be at least 20")
    unit = base_frames // 9
    deep = 0.45 + 0.35 * density
    return Scenario(
        name=f"x_fog_crossing_d{int(round(density * 100)):03d}_{base_frames}f",
        description="Outdoor fog: low-contrast bank and misted treeline",
        indoor=False,
        seed=seed,
        segments=(
            Segment("fog_entry", 2 * unit, "fog_bank", 0.20, deep * 0.7, path="enter_left"),
            Segment("fog_deep", 3 * unit, "fog_bank", deep * 0.7, deep, path="sweep_lr"),
            Segment("mist_trees", 2 * unit, "fog_treeline", deep, deep * 0.8, path="weave", pan=0.2),
            Segment("fog_exit", 2 * unit, "fog_bank", deep * 0.8, 0.25, path="exit_right"),
        ),
    )


def multi_pan_survey_scenario(
    seed: int = 9309,
    pans: tuple[float, ...] = (0.3, 0.8, 1.5),
    leg_frames: int = 220,
) -> Scenario:
    """Survey legs at escalating camera pan: motion is the difficulty knob.

    One back-and-forth leg per entry in ``pans``; alternating sweep
    directions over mid-complexity backgrounds isolate the effect of
    background drift on detection.
    """
    if not pans:
        raise ValueError("pans must name at least one leg")
    if leg_frames < 4:
        raise ValueError("leg_frames must be at least 4")
    backgrounds = ("parking_lot", "urban_facade", "tree_line")
    segments = []
    for i, pan in enumerate(pans):
        if pan < 0.0:
            raise ValueError(f"pan must be non-negative, got {pan}")
        path = "sweep_lr" if i % 2 == 0 else "sweep_rl"
        segments.append(
            Segment(
                name=f"leg{i + 1}_pan{int(round(pan * 100)):03d}",
                frames=leg_frames,
                background_name=backgrounds[i % len(backgrounds)],
                distance_start=0.35,
                distance_end=0.55,
                path=path,
                pan=pan,
            )
        )
    tag = "-".join(str(int(round(p * 100))) for p in pans)
    return Scenario(
        name=f"x_multi_pan_survey_{tag}",
        description="Outdoor survey: identical legs at escalating camera pan",
        indoor=False,
        seed=seed,
        segments=tuple(segments),
    )


def long_endurance_patrol_scenario(
    seed: int = 9310,
    laps: int = 3,
    lap_frames: int = 600,
) -> Scenario:
    """Long-endurance patrol: ``laps`` identical circuits, day into dusk.

    Each lap is an out-sweep, a far orbit, and a return; the final lap
    descends home.  Stresses long traces (many frames, few context
    changes) — the workload where trace reuse pays off most.
    """
    if laps < 1:
        raise ValueError("laps must be at least 1")
    if lap_frames < 30:
        raise ValueError("lap_frames must be at least 30")
    unit = lap_frames // 6
    segments = []
    for lap in range(1, laps + 1):
        dusk = lap == laps  # the light fades on the final lap
        far_bg = "dusk_horizon" if dusk else "cloudy_sky"
        segments.extend(
            (
                Segment(f"lap{lap}_out", 2 * unit, "open_sky", 0.30, 0.60, path="sweep_lr"),
                Segment(f"lap{lap}_far", 2 * unit, far_bg, 0.60, 0.68, path="orbit", pan=0.15),
                Segment(f"lap{lap}_back", 2 * unit, "open_sky", 0.68, 0.35, path="sweep_rl"),
            )
        )
    segments.append(Segment("patrol_land", max(2, unit), "cloudy_sky", 0.35, 0.08, path="hover"))
    return Scenario(
        name=f"x_long_endurance_{laps}laps_{lap_frames}f",
        description="Outdoor endurance: repeated patrol laps, day into dusk",
        indoor=False,
        seed=seed,
        segments=tuple(segments),
    )


def extended_scenarios() -> list[Scenario]:
    """The extended flight library at default parameters (4 scenarios)."""
    return [
        night_watch_scenario(),
        fog_crossing_scenario(),
        multi_pan_survey_scenario(),
        long_endurance_patrol_scenario(),
    ]


def all_scenarios() -> list[Scenario]:
    """Evaluation scenarios plus the extended library at defaults."""
    return evaluation_scenarios() + extended_scenarios()


# ------------------------------------------------------- scenario registry
#
# Beyond the hand-written library, scenarios can be registered at runtime —
# individually (:func:`register_scenario`) or in bulk through a lazy
# *source* (:func:`register_scenario_source`), a zero-argument callable
# returning scenarios.  Sources are how procedurally generated libraries
# (the grammar's default matrix, custom :class:`ScenarioMatrix` grids)
# become first-class: expansion is deferred until the first name lookup and
# cached, so importing the package never pays for generating hundreds of
# scenarios nobody asked for.  Because sources are pure functions of code
# and seeds, every process resolves the same name to a scenario with the
# same content fingerprint — the property the trace store relies on.

ScenarioSource = Callable[[], Iterable[Scenario]]

_REGISTRY: dict[str, Scenario] = {}
_SOURCES: list[ScenarioSource] = []
_SOURCE_CACHE: dict[int, dict[str, Scenario]] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> None:
    """Register a scenario so :func:`scenario_by_name` can resolve it.

    Names must not shadow the built-in library or a source-generated
    scenario — explicit registrations resolve *before* sources, so a
    shadow would make the same name mean different content (and carry a
    different fingerprint) in processes that never saw the registration.
    ``replace=True`` permits overwriting an earlier *registered* entry
    only.
    """
    if any(s.name == scenario.name for s in all_scenarios()):
        raise ValueError(f"scenario {scenario.name!r} shadows a built-in scenario")
    for source in _SOURCES:
        if scenario.name in _expanded_source(source):
            raise ValueError(
                f"scenario {scenario.name!r} shadows a source-generated scenario"
            )
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario


def register_scenario_source(source: ScenarioSource) -> None:
    """Register a lazy bulk source of scenarios (expanded once, on demand)."""
    if source not in _SOURCES:
        _SOURCES.append(source)


def _expanded_source(source: ScenarioSource) -> dict[str, Scenario]:
    """The name map of one source, expanded at most once per process."""
    cached = _SOURCE_CACHE.get(id(source))
    if cached is None:
        cached = {}
        for scenario in source():
            if scenario.name in cached:
                raise ValueError(
                    f"scenario source yielded duplicate name {scenario.name!r}"
                )
            cached[scenario.name] = scenario
        _SOURCE_CACHE[id(source)] = cached
    return cached


def registered_scenarios() -> list[Scenario]:
    """Every runtime-registered scenario: explicit entries, then sources."""
    scenarios = list(_REGISTRY.values())
    seen = {s.name for s in scenarios}
    for source in _SOURCES:
        for name, scenario in _expanded_source(source).items():
            if name not in seen:
                seen.add(name)
                scenarios.append(scenario)
    return scenarios


def scenario_names() -> list[str]:
    """Every resolvable scenario name: built-in library, then registered."""
    names = [s.name for s in all_scenarios()]
    seen = set(names)
    for scenario in registered_scenarios():
        if scenario.name not in seen:
            seen.add(scenario.name)
            names.append(scenario.name)
    return names


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario by its full name.

    Resolution order: the built-in library (evaluation + extended flights),
    explicitly registered scenarios, then lazy sources (generated
    libraries such as the grammar's default matrix).  An unknown name
    raises a KeyError enumerating **all** registered names, so callers
    never have to guess what exists.
    """
    for scenario in all_scenarios():
        if scenario.name == name:
            return scenario
    registered = _REGISTRY.get(name)
    if registered is not None:
        return registered
    for source in _SOURCES:
        scenario = _expanded_source(source).get(name)
        if scenario is not None:
            return scenario
    known = ", ".join(scenario_names())
    raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")


# --------------------------------------------------------------------------
# Serialization.  Queue job records embed scenarios so worker processes can
# execute jobs from generated matrices (fuzz / loadgen pools) that are never
# registered in their interpreter.  Field sets are pinned in
# analysis/schema_manifest.json; keep the returns literal.


def segment_to_dict(segment: Segment) -> dict:
    """JSON-serializable payload for one segment."""
    return {
        "name": segment.name,
        "frames": segment.frames,
        "background_name": segment.background_name,
        "distance_start": segment.distance_start,
        "distance_end": segment.distance_end,
        "path": segment.path,
        "pan": segment.pan,
    }


def scenario_to_dict(scenario: Scenario) -> dict:
    """JSON-serializable payload for a full scenario."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "indoor": scenario.indoor,
        "seed": scenario.seed,
        "frame_size": scenario.frame_size,
        "segments": [segment_to_dict(segment) for segment in scenario.segments],
    }


def segment_from_dict(payload: dict) -> Segment:
    """Inverse of :func:`segment_to_dict` (validates via ``__post_init__``)."""
    return Segment(
        name=str(payload["name"]),
        frames=int(payload["frames"]),
        background_name=str(payload["background_name"]),
        distance_start=float(payload["distance_start"]),
        distance_end=float(payload["distance_end"]),
        path=str(payload["path"]),
        pan=float(payload["pan"]),
    )


def scenario_from_dict(payload: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict`.

    Round-trips bit-exactly: the rebuilt scenario has the same
    ``fingerprint()`` as the original because every hashed field is
    restored verbatim.
    """
    return Scenario(
        name=str(payload["name"]),
        description=str(payload["description"]),
        indoor=bool(payload["indoor"]),
        seed=int(payload["seed"]),
        frame_size=int(payload["frame_size"]),
        segments=tuple(segment_from_dict(entry) for entry in payload["segments"]),
    )


def path_position(path: str, t: float) -> tuple[float, float]:
    """Normalized (x, y) target position for ``path`` at progress ``t``.

    Coordinates are in units of the frame side; enter/exit paths
    intentionally leave the unit square.
    """
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"progress must be within [0, 1], got {t}")
    if path == "hover":
        return (0.5 + 0.06 * math.sin(6.0 * math.pi * t), 0.45 + 0.05 * math.cos(4.0 * math.pi * t))
    if path == "sweep_lr":
        return (0.08 + 0.84 * t, 0.45 + 0.08 * math.sin(3.0 * math.pi * t))
    if path == "sweep_rl":
        return (0.92 - 0.84 * t, 0.45 + 0.08 * math.sin(3.0 * math.pi * t))
    if path == "orbit":
        angle = 2.0 * math.pi * t
        return (0.5 + 0.28 * math.cos(angle), 0.5 + 0.22 * math.sin(angle))
    if path == "weave":
        return (0.15 + 0.70 * t, 0.5 + 0.18 * math.sin(5.0 * math.pi * t))
    if path == "enter_left":
        return (-0.25 + 0.80 * t, 0.45)
    if path == "exit_right":
        return (0.55 + 0.75 * t, 0.45)
    if path == "absent":
        return (0.5, 0.5)
    raise ValueError(f"unknown path {path!r}")
