"""On-disk persistence for scenario traces.

Trace construction (every zoo model over every frame) dominates wall-clock
for the whole benchmark suite; a built trace is a pure function of the
(scenario, zoo) pair, so it is safe to persist and reuse across processes.
This module mirrors the characterization bundle serialization
(:mod:`repro.characterization.serialization`): plain JSON with a schema
version that fails loudly on mismatch.

Format — one entry per (scenario, zoo) pair, named
``trace-v<algo>-<scenario_fp16>-<zoo_fp12>.col`` (binary columnar, the
default writer — see :mod:`repro.runtime.colfmt`) or ``....json`` (the
fully supported fallback format; force it with ``write_format="json"`` or
``REPRO_STORE_FORMAT=json``).  Loads probe the binary name first and fall
back to JSON, so mixed-format stores are fully served; opening a store
with the binary writer re-encodes existing JSON entries in place (the
same open-time migration discipline PR 5 used for flat→sharded layouts).
Entries are sharded by scenario-fingerprint prefix (``root/<2-hex>/``) with
a per-shard index and advisory-lock–guarded writes — see
:mod:`repro.runtime.shards`; stores written by the old flat layout are
migrated into shards on open.  The logical payload is identical across
formats (the differential checks assert bit-equality).  Fields:

``schema_version``
    Integer; readers reject anything but their own version.
``scenario_name`` / ``scenario_fingerprint`` / ``zoo_fingerprint``
    Identity block.  Fingerprints are the full content digests
    (:meth:`Scenario.fingerprint`, :meth:`ModelZoo.fingerprint`); loads
    re-derive both from the live objects and reject any mismatch, so a
    stale or hand-edited file can never masquerade as the wrong trace.
``frame_count``
    Must equal the live scenario's ``total_frames``.
``outcomes``
    ``{model_name: [row, ...]}`` with one compact row per frame:
    ``[box, confidence, iou, quality, detected, false_positive]`` where
    ``box`` is ``[x1, y1, x2, y2]`` or ``null``.

Frames (rendered pixels + scene states) are *not* stored: rendering is
deterministic, so loads return a **lazy** trace that attaches the persisted
outcomes and defers rendering until someone actually reads ``.frames``.
Outcome-only consumers (tables, metrics, oracle summaries) therefore pay
pure JSON-parse cost on reload; policy runs render on first frame access
through the batched renderer and see a trace indistinguishable from a
fresh build.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..data.scenario import Scenario
from ..models.detector import DetectionOutcome
from ..models.zoo import ModelZoo
from ..util import jsonsafe
from ..vision.bbox import BoundingBox
from . import colfmt, iolayer, maintenance, shards
from .trace import ScenarioTrace

SCHEMA_VERSION = 1

#: Entry formats a store can write; both are always readable.
STORE_FORMATS = ("binary", "json")

#: Environment override for the default writer format.
FORMAT_ENV = "REPRO_STORE_FORMAT"


def resolve_write_format(write_format: str | None) -> str:
    """The entry format new saves use: argument, env override, or binary."""
    resolved = write_format or os.environ.get(FORMAT_ENV) or "binary"
    if resolved not in STORE_FORMATS:
        raise ValueError(f"unknown store format {resolved!r}; expected one of {STORE_FORMATS}")
    return resolved

# Version of the *outcome-producing algorithm* (detector, scene difficulty,
# noise streams).  Fingerprints pin what a trace was built FROM; this pins
# what it was built WITH.  Bump it whenever a change to the simulation
# alters detection outcomes, or persisted traces from before the change
# would silently masquerade as current results.
ALGORITHM_VERSION = 1


class TraceSchemaError(ValueError):
    """Raised when a persisted trace cannot be understood or doesn't match."""


def trace_to_dict(trace: ScenarioTrace, zoo: ModelZoo) -> dict:
    """Plain-dict form of a trace (JSON-compatible, frames omitted)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm_version": ALGORITHM_VERSION,
        "scenario_name": trace.scenario.name,
        "scenario_fingerprint": trace.scenario.fingerprint(),
        "zoo_fingerprint": zoo.fingerprint(),
        "frame_count": trace.frame_count,
        "outcomes": {
            model: [
                [
                    None if o.box is None else [o.box.x1, o.box.y1, o.box.x2, o.box.y2],
                    o.confidence,
                    o.iou,
                    o.quality,
                    o.detected,
                    o.false_positive,
                ]
                for o in per_model
            ]
            for model, per_model in trace.outcomes.items()
        },
    }


def _validate_trace_payload(payload: dict, scenario: Scenario, zoo: ModelZoo) -> None:
    """Identity checks shared by both entry formats (raises :class:`TraceSchemaError`).

    Everything verified here lives in the binary header's ``meta`` block,
    so the columnar load path can validate without decoding any outcome
    columns.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema {version!r}; this build reads version {SCHEMA_VERSION}"
        )
    algorithm = payload.get("algorithm_version")
    if algorithm != ALGORITHM_VERSION:
        raise TraceSchemaError(
            f"trace was built by algorithm version {algorithm!r}; this build produces "
            f"version {ALGORITHM_VERSION} — rebuild (delete the store entry)"
        )
    if payload.get("scenario_fingerprint") != scenario.fingerprint():
        raise TraceSchemaError(
            f"trace was built for a different scenario than {scenario.name!r} "
            "(fingerprint mismatch)"
        )
    if payload.get("zoo_fingerprint") != zoo.fingerprint():
        raise TraceSchemaError("trace was built against a different model zoo (fingerprint mismatch)")
    if payload.get("frame_count") != scenario.total_frames:
        raise TraceSchemaError(
            f"trace covers {payload.get('frame_count')!r} frames but scenario "
            f"{scenario.name!r} has {scenario.total_frames}"
        )


def _outcomes_from_rows(rows_by_model: dict) -> dict[str, list[DetectionOutcome]]:
    """Rebuild per-model :class:`DetectionOutcome` lists from compact rows."""
    try:
        outcomes: dict[str, list[DetectionOutcome]] = {}
        for model, rows in rows_by_model.items():
            outcomes[model] = [
                DetectionOutcome(
                    model_name=model,
                    box=None if row[0] is None else BoundingBox(*row[0]),
                    confidence=row[1],
                    iou=row[2],
                    quality=row[3],
                    detected=row[4],
                    false_positive=row[5],
                )
                for row in rows
            ]
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise TraceSchemaError(f"malformed trace payload: {exc}") from exc
    return outcomes


def trace_from_dict(payload: dict, scenario: Scenario, zoo: ModelZoo) -> ScenarioTrace:
    """Rebuild a trace from its dict form against the live scenario and zoo.

    Validates the schema version and both fingerprints and reattaches the
    persisted outcomes; frames stay lazy (rendered deterministically on
    first access), so outcome-only consumers never pay for pixels.
    """
    _validate_trace_payload(payload, scenario, zoo)
    try:
        rows_by_model = payload["outcomes"]
    except KeyError as exc:
        raise TraceSchemaError("trace payload has no outcomes block") from exc
    outcomes = _outcomes_from_rows(rows_by_model)
    return ScenarioTrace(scenario=scenario, frames=None, outcomes=outcomes)


def _trace_file_name(
    scenario_fingerprint: str, zoo_fingerprint: str, fmt: str = "binary"
) -> str:
    """The entry file name for a (scenario, zoo) pair in the given format.

    The algorithm version is part of the name, so bumping it simply
    orphans stale files (treated as misses and rebuilt) rather than
    erroring on them.
    """
    suffix = colfmt.COL_SUFFIX if fmt == "binary" else ".json"
    return (
        f"trace-v{ALGORITHM_VERSION}-{scenario_fingerprint[:16]}"
        f"-{zoo_fingerprint[:12]}{suffix}"
    )


class TraceStore:
    """A sharded directory of persisted traces, content-addressed by fingerprints.

    Entries live under ``root/<fp-prefix>/`` with a per-shard index and
    advisory-lock–guarded atomic writes (:mod:`repro.runtime.shards`), so
    any number of processes, threads, and service workers can share one
    store.  Every load re-validates identity; an entry that cannot even be
    *parsed* (torn by a crash, truncated disk) is treated exactly like a
    missing one — a miss, counted in :attr:`corrupt_entries` and removed —
    while a parseable entry that does not match is a loud
    :class:`TraceSchemaError`.  The worst outcome is a rebuild, never a
    silently wrong trace.
    """

    #: Globs matching this store's entry files, both formats.
    ENTRY_PATTERNS = ("trace-*.json", "trace-*.col")

    def __init__(self, root: str | Path, *, write_format: str | None = None) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(f"trace store path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        #: Format new saves are written in ("binary" | "json"); both
        #: formats are always *read*.
        self.write_format = resolve_write_format(write_format)
        #: Unreadable entries encountered (and removed) by this instance —
        #: a non-zero value after a sweep means a writer died mid-life or
        #: the disk corrupted an entry; the entry was re-treated as a miss.
        self.corrupt_entries = 0
        #: Abandoned temp files swept at open (crashed writers' leftovers).
        self.stale_temps_cleaned = shards.clean_stale_temps(self.root)
        self._migrate_legacy_entries()
        #: JSON entries re-encoded to the binary format by this open.
        self.format_migrated = 0
        self._migrate_format_entries()

    def _migrate_legacy_entries(self) -> None:
        """Move flat-layout entries (pre-sharding stores) into their shards."""

        def digest_for(path: Path) -> str | None:
            parts = path.stem.split("-")  # trace-v<A>-<fp16>-<zoo12>
            return parts[2] if len(parts) == 4 and len(parts[2]) == 16 else None

        def meta_for(path: Path) -> dict | None:
            try:
                payload = jsonsafe.loads(iolayer.read_text(path, root=self.root))
            except (OSError, json.JSONDecodeError):
                self.corrupt_entries += 1
                return None
            if not isinstance(payload, dict):
                self.corrupt_entries += 1
                return None
            return _index_meta(payload)

        shards.migrate_flat_entries(self.root, "trace-*.json", digest_for, meta_for)

    def _migrate_format_entries(self) -> None:
        """Re-encode existing JSON entries as binary columns (binary writer only).

        Runs under each entry's shard lock; the ``.json`` file is removed
        in the same critical section (``supersedes``), so no logical entry
        ever has two live twins.  Entries that cannot be read or encoded
        are skipped, and a degraded (full) disk aborts the sweep — opening
        a store must never fail because migration could not proceed; the
        JSON reader serves the leftovers either way.
        """
        if self.write_format != "binary":
            return
        for path in list(shards.iter_entry_paths(self.root, "trace-*.json")):
            if path.parent == self.root:
                continue  # legacy flat leftovers: not this migration's job
            shard = path.parent
            try:
                with shards.shard_lock(shard):
                    if not path.exists():  # another opener migrated it first
                        continue
                    try:
                        payload = jsonsafe.loads(iolayer.read_text(path, root=self.root))
                    except (OSError, json.JSONDecodeError):  # repro: allow[exceptions/swallow] unreadable/corrupt entries stay JSON; scrub handles them
                        continue
                    if not isinstance(payload, dict):
                        continue
                    try:
                        data = colfmt.encode_trace(payload)
                    except (KeyError, TypeError, ValueError, IndexError):  # repro: allow[exceptions/swallow] unencodable payloads stay JSON (still servable)
                        continue
                    name = colfmt.entry_stem(path.name) + colfmt.COL_SUFFIX
                    shards.write_entry_locked(
                        shard, name, data, _index_meta(payload), supersedes=(path.name,)
                    )
                    self.format_migrated += 1
            except iolayer.StoreDegraded:
                break

    def path_for(self, scenario: Scenario, zoo: ModelZoo) -> Path:
        """The (sharded) file a (scenario, zoo) trace persists to.

        Prefers whichever format actually exists on disk (binary probed
        first); for a not-yet-saved pair, the write-format name.
        """
        fingerprint = scenario.fingerprint()
        shard = shards.shard_dir(self.root, fingerprint)
        zoo_fingerprint = zoo.fingerprint()
        for fmt in STORE_FORMATS:
            path = shard / _trace_file_name(fingerprint, zoo_fingerprint, fmt)
            if path.exists():
                return path
        return shard / _trace_file_name(fingerprint, zoo_fingerprint, self.write_format)

    def save(self, trace: ScenarioTrace, zoo: ModelZoo) -> Path:
        """Persist a built trace; returns the file written.

        The write is atomic (temp file + rename) and the shard index is
        updated under the shard's advisory lock, so concurrent readers
        never observe a half-written trace and concurrent writers never
        lose each other's index records.  The sibling-format twin (if any)
        is superseded under the same lock, so at most one format serves a
        logical entry.
        """
        payload = trace_to_dict(trace, zoo)
        fingerprint = payload["scenario_fingerprint"]
        zoo_fingerprint = payload["zoo_fingerprint"]
        if self.write_format == "binary":
            data: str | bytes = colfmt.encode_trace(payload)
        else:
            data = jsonsafe.dumps(payload)
        other = "json" if self.write_format == "binary" else "binary"
        return shards.write_entry(
            self.root,
            fingerprint,
            _trace_file_name(fingerprint, zoo_fingerprint, self.write_format),
            data,
            _index_meta(payload),
            supersedes=(_trace_file_name(fingerprint, zoo_fingerprint, other),),
        )

    def load(
        self, scenario: Scenario, zoo: ModelZoo, *, _retry: bool = True
    ) -> ScenarioTrace | None:
        """Load the persisted trace for (scenario, zoo), or None if absent.

        Probes the binary entry first (header-only read: identity checks
        live in the column header, outcome columns decode lazily on first
        ``.outcomes`` access), then the JSON fallback.  A missing entry is
        a miss.  An entry whose *bytes cannot be read* (transient ``EIO``,
        after the seam's bounded retries) is also just a miss — counted in
        ``io_errors``, never quarantined: unavailability is not evidence
        of corruption, and quarantining on it used to destroy valid
        entries.  Only an entry that *parses wrong* is treated as corrupt:
        counted in :attr:`corrupt_entries` and quarantined so it can never
        shadow a future rebuild.
        """
        fingerprint = scenario.fingerprint()
        zoo_fingerprint = zoo.fingerprint()
        shard = shards.shard_dir(self.root, fingerprint)

        binary_path = shard / _trace_file_name(fingerprint, zoo_fingerprint, "binary")
        try:
            header = colfmt.read_header(binary_path, root=self.root)
        except FileNotFoundError:
            header = None  # fall through to the JSON twin
        except OSError:
            return None  # unavailable, not corrupt: a miss, already counted
        except colfmt.ColumnFormatError:
            # Corrupt binary: quarantine it, then retry once — the retry
            # serves the JSON twin if one exists (entries are content-
            # addressed, so any parseable twin is the correct data), or
            # re-reads a concurrently repaired entry.
            self._quarantine(fingerprint, binary_path.name)
            if _retry:
                return self.load(scenario, zoo, _retry=False)
            return None
        if header is not None:
            meta = header.get("meta") if isinstance(header.get("meta"), dict) else {}
            _validate_trace_payload(meta, scenario, zoo)
            root = self.root

            def load_outcomes() -> dict[str, list[DetectionOutcome]]:
                buffer = iolayer.read_bytes(binary_path, root=root, map=True)
                return _outcomes_from_rows(colfmt.decode_trace_outcomes(buffer))

            return ScenarioTrace(
                scenario=scenario, frames=None, outcomes_loader=load_outcomes
            )

        json_path = shard / _trace_file_name(fingerprint, zoo_fingerprint, "json")
        try:
            payload = jsonsafe.loads(iolayer.read_text(json_path, root=self.root))
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unavailable, not corrupt
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            if not self._quarantine(fingerprint, json_path.name) and _retry:
                # A concurrent writer replaced the entry while we looked at
                # it; one retry reads the now-complete file (or misses).
                return self.load(scenario, zoo, _retry=False)
            return None
        return trace_from_dict(payload, scenario, zoo)

    def _quarantine(self, digest: str, name: str) -> bool:
        """Quarantine one corrupt entry; True when it was moved (counted)."""
        try:
            quarantined = shards.quarantine_corrupt_entry(self.root, digest, name)
        except iolayer.StoreDegraded:
            # Quarantine bookkeeping hit a full disk: the entry is still
            # unservable, so this load is a miss either way.
            self.corrupt_entries += 1
            return True
        if quarantined:
            self.corrupt_entries += 1
        return quarantined

    def get(
        self,
        scenario: Scenario,
        zoo: ModelZoo,
        max_workers: int | None = None,
    ) -> ScenarioTrace:
        """Load the trace, building (and persisting) it on a miss."""
        trace = self.load(scenario, zoo)
        if trace is None:
            trace = ScenarioTrace.build(scenario, zoo, max_workers=max_workers)
            self.save(trace, zoo)
        return trace

    def __contains__(self, key: tuple[Scenario, ModelZoo]) -> bool:
        scenario, zoo = key
        return self.path_for(scenario, zoo).exists()

    def __len__(self) -> int:
        return sum(1 for _ in shards.iter_entry_paths(self.root, self.ENTRY_PATTERNS))

    def clear(self) -> int:
        """Delete every persisted trace (both formats); returns how many were removed."""
        removed = 0
        for path in list(shards.iter_entry_paths(self.root, self.ENTRY_PATTERNS)):
            if path.parent == self.root:  # legacy flat file written after open
                path.unlink(missing_ok=True)
                removed += 1
                continue
            digest = path.stem.split("-")[2]
            if shards.remove_entry(self.root, digest, path.name):
                removed += 1
        return removed

    def audit(self) -> tuple[int, list[str]]:
        """Cross-check shard indexes against entry files; see :func:`shards.audit_entries`."""
        return shards.audit_entries(self.root, self.ENTRY_PATTERNS)

    # ------------------------------------------------------------ health

    @property
    def degraded(self) -> bool:
        """True while this store's root is in read-only (capacity) mode."""
        return iolayer.is_degraded(self.root)

    @property
    def io_errors(self) -> int:
        """I/O errors observed under this root (skipped paths included)."""
        return iolayer.io_error_count(self.root)

    # ------------------------------------------------------- maintenance

    def scrub(self) -> maintenance.ScrubReport:
        """Re-verify schema + fingerprints of every indexed trace entry."""
        return maintenance.scrub_entries(
            self.root, self.ENTRY_PATTERNS, _scrub_problem, digest_for=_digest_from_name
        )

    def gc(
        self,
        *,
        ttl_seconds: float = maintenance.DEFAULT_TTL_SECONDS,
        dry_run: bool = True,
        now: float | None = None,
    ) -> maintenance.GcReport:
        """TTL-collect quarantined files and stale temps (dry-run default)."""
        return maintenance.gc_entries(
            self.root, ttl_seconds=ttl_seconds, dry_run=dry_run, now=now
        )

    def repair(self) -> maintenance.RepairReport:
        """Heal index↔disk drift (drop ghosts, re-index parseable orphans)."""
        return maintenance.repair_entries(
            self.root, self.ENTRY_PATTERNS, lambda name, payload: _index_meta(payload)
        )


def _digest_from_name(name: str) -> str | None:
    """The shard digest encoded in a trace entry file name (either format)."""
    stem = colfmt.entry_stem(name)
    parts = stem.split("-") if stem != name else []
    return parts[2] if len(parts) == 4 and len(parts[2]) == 16 else None


def _scrub_problem(name: str, payload: dict) -> str | None:
    """Why a parsed trace entry is unsound, or None when it checks out.

    Scrub has no live scenario/zoo to compare against, so it verifies the
    *internal* identity discipline: schema and algorithm versions, the
    fingerprint prefixes baked into the file name, and the outcome shape.
    Payloads of both formats arrive here fully decoded
    (:func:`repro.runtime.colfmt.load_entry_payload`), so the same checks
    cover JSON and binary entries.
    """
    if payload.get("schema_version") != SCHEMA_VERSION:
        return f"schema_version {payload.get('schema_version')!r} != {SCHEMA_VERSION}"
    parts = colfmt.entry_stem(name).split("-")
    if parts[1] != f"v{payload.get('algorithm_version')}":
        return (
            f"algorithm_version {payload.get('algorithm_version')!r} "
            f"does not match file name {parts[1]}"
        )
    fingerprint = payload.get("scenario_fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint.startswith(parts[2]):
        return "scenario fingerprint does not match file name"
    zoo_fingerprint = payload.get("zoo_fingerprint")
    if not isinstance(zoo_fingerprint, str) or not zoo_fingerprint.startswith(parts[3]):
        return "zoo fingerprint does not match file name"
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, dict):
        return "outcomes block is not an object"
    frames = payload.get("frame_count")
    if not isinstance(frames, int):
        return "frame_count is not an integer"
    for model, rows in outcomes.items():
        if not isinstance(rows, list) or len(rows) != frames:
            return f"outcomes[{model}] does not carry {frames} rows"
    return None


def _index_meta(payload: dict) -> dict:
    """The identity block a shard index records for one trace entry."""
    return {
        "scenario_name": payload.get("scenario_name"),
        "scenario_fingerprint": payload.get("scenario_fingerprint"),
        "zoo_fingerprint": payload.get("zoo_fingerprint"),
        "algorithm_version": payload.get("algorithm_version"),
        "frame_count": payload.get("frame_count"),
    }
