"""On-disk persistence for scenario traces.

Trace construction (every zoo model over every frame) dominates wall-clock
for the whole benchmark suite; a built trace is a pure function of the
(scenario, zoo) pair, so it is safe to persist and reuse across processes.
This module mirrors the characterization bundle serialization
(:mod:`repro.characterization.serialization`): plain JSON with a schema
version that fails loudly on mismatch.

Format — one JSON object per (scenario, zoo) pair, in a file named
``trace-v<algo>-<scenario_fp16>-<zoo_fp12>.json`` under the store root.
Entries are sharded by scenario-fingerprint prefix (``root/<2-hex>/``) with
a per-shard index and advisory-lock–guarded writes — see
:mod:`repro.runtime.shards`; stores written by the old flat layout are
migrated into shards on open.  Fields:

``schema_version``
    Integer; readers reject anything but their own version.
``scenario_name`` / ``scenario_fingerprint`` / ``zoo_fingerprint``
    Identity block.  Fingerprints are the full content digests
    (:meth:`Scenario.fingerprint`, :meth:`ModelZoo.fingerprint`); loads
    re-derive both from the live objects and reject any mismatch, so a
    stale or hand-edited file can never masquerade as the wrong trace.
``frame_count``
    Must equal the live scenario's ``total_frames``.
``outcomes``
    ``{model_name: [row, ...]}`` with one compact row per frame:
    ``[box, confidence, iou, quality, detected, false_positive]`` where
    ``box`` is ``[x1, y1, x2, y2]`` or ``null``.

Frames (rendered pixels + scene states) are *not* stored: rendering is
deterministic, so loads return a **lazy** trace that attaches the persisted
outcomes and defers rendering until someone actually reads ``.frames``.
Outcome-only consumers (tables, metrics, oracle summaries) therefore pay
pure JSON-parse cost on reload; policy runs render on first frame access
through the batched renderer and see a trace indistinguishable from a
fresh build.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..data.scenario import Scenario
from ..models.detector import DetectionOutcome
from ..models.zoo import ModelZoo
from ..vision.bbox import BoundingBox
from . import iolayer, maintenance, shards
from .trace import ScenarioTrace

SCHEMA_VERSION = 1

# Version of the *outcome-producing algorithm* (detector, scene difficulty,
# noise streams).  Fingerprints pin what a trace was built FROM; this pins
# what it was built WITH.  Bump it whenever a change to the simulation
# alters detection outcomes, or persisted traces from before the change
# would silently masquerade as current results.
ALGORITHM_VERSION = 1


class TraceSchemaError(ValueError):
    """Raised when a persisted trace cannot be understood or doesn't match."""


def trace_to_dict(trace: ScenarioTrace, zoo: ModelZoo) -> dict:
    """Plain-dict form of a trace (JSON-compatible, frames omitted)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm_version": ALGORITHM_VERSION,
        "scenario_name": trace.scenario.name,
        "scenario_fingerprint": trace.scenario.fingerprint(),
        "zoo_fingerprint": zoo.fingerprint(),
        "frame_count": trace.frame_count,
        "outcomes": {
            model: [
                [
                    None if o.box is None else [o.box.x1, o.box.y1, o.box.x2, o.box.y2],
                    o.confidence,
                    o.iou,
                    o.quality,
                    o.detected,
                    o.false_positive,
                ]
                for o in per_model
            ]
            for model, per_model in trace.outcomes.items()
        },
    }


def trace_from_dict(payload: dict, scenario: Scenario, zoo: ModelZoo) -> ScenarioTrace:
    """Rebuild a trace from its dict form against the live scenario and zoo.

    Validates the schema version and both fingerprints and reattaches the
    persisted outcomes; frames stay lazy (rendered deterministically on
    first access), so outcome-only consumers never pay for pixels.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema {version!r}; this build reads version {SCHEMA_VERSION}"
        )
    algorithm = payload.get("algorithm_version")
    if algorithm != ALGORITHM_VERSION:
        raise TraceSchemaError(
            f"trace was built by algorithm version {algorithm!r}; this build produces "
            f"version {ALGORITHM_VERSION} — rebuild (delete the store entry)"
        )
    if payload.get("scenario_fingerprint") != scenario.fingerprint():
        raise TraceSchemaError(
            f"trace was built for a different scenario than {scenario.name!r} "
            "(fingerprint mismatch)"
        )
    if payload.get("zoo_fingerprint") != zoo.fingerprint():
        raise TraceSchemaError("trace was built against a different model zoo (fingerprint mismatch)")
    if payload.get("frame_count") != scenario.total_frames:
        raise TraceSchemaError(
            f"trace covers {payload.get('frame_count')!r} frames but scenario "
            f"{scenario.name!r} has {scenario.total_frames}"
        )
    try:
        outcomes: dict[str, list[DetectionOutcome]] = {}
        for model, rows in payload["outcomes"].items():
            outcomes[model] = [
                DetectionOutcome(
                    model_name=model,
                    box=None if row[0] is None else BoundingBox(*row[0]),
                    confidence=row[1],
                    iou=row[2],
                    quality=row[3],
                    detected=row[4],
                    false_positive=row[5],
                )
                for row in rows
            ]
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise TraceSchemaError(f"malformed trace payload: {exc}") from exc
    return ScenarioTrace(scenario=scenario, frames=None, outcomes=outcomes)


def _trace_file_name(scenario_fingerprint: str, zoo_fingerprint: str) -> str:
    """The entry file name for a (scenario, zoo) pair.

    The algorithm version is part of the name, so bumping it simply
    orphans stale files (treated as misses and rebuilt) rather than
    erroring on them.
    """
    return (
        f"trace-v{ALGORITHM_VERSION}-{scenario_fingerprint[:16]}"
        f"-{zoo_fingerprint[:12]}.json"
    )


class TraceStore:
    """A sharded directory of persisted traces, content-addressed by fingerprints.

    Entries live under ``root/<fp-prefix>/`` with a per-shard index and
    advisory-lock–guarded atomic writes (:mod:`repro.runtime.shards`), so
    any number of processes, threads, and service workers can share one
    store.  Every load re-validates identity; an entry that cannot even be
    *parsed* (torn by a crash, truncated disk) is treated exactly like a
    missing one — a miss, counted in :attr:`corrupt_entries` and removed —
    while a parseable entry that does not match is a loud
    :class:`TraceSchemaError`.  The worst outcome is a rebuild, never a
    silently wrong trace.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(f"trace store path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        #: Unreadable entries encountered (and removed) by this instance —
        #: a non-zero value after a sweep means a writer died mid-life or
        #: the disk corrupted an entry; the entry was re-treated as a miss.
        self.corrupt_entries = 0
        #: Abandoned temp files swept at open (crashed writers' leftovers).
        self.stale_temps_cleaned = shards.clean_stale_temps(self.root)
        self._migrate_legacy_entries()

    def _migrate_legacy_entries(self) -> None:
        """Move flat-layout entries (pre-sharding stores) into their shards."""

        def digest_for(path: Path) -> str | None:
            parts = path.stem.split("-")  # trace-v<A>-<fp16>-<zoo12>
            return parts[2] if len(parts) == 4 and len(parts[2]) == 16 else None

        def meta_for(path: Path) -> dict | None:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                self.corrupt_entries += 1
                return None
            if not isinstance(payload, dict):
                self.corrupt_entries += 1
                return None
            return _index_meta(payload)

        shards.migrate_flat_entries(self.root, "trace-*.json", digest_for, meta_for)

    def path_for(self, scenario: Scenario, zoo: ModelZoo) -> Path:
        """The (sharded) file a (scenario, zoo) trace persists to."""
        fingerprint = scenario.fingerprint()
        return shards.shard_dir(self.root, fingerprint) / _trace_file_name(
            fingerprint, zoo.fingerprint()
        )

    def save(self, trace: ScenarioTrace, zoo: ModelZoo) -> Path:
        """Persist a built trace; returns the file written.

        The write is atomic (temp file + rename) and the shard index is
        updated under the shard's advisory lock, so concurrent readers
        never observe a half-written trace and concurrent writers never
        lose each other's index records.
        """
        payload = trace_to_dict(trace, zoo)
        fingerprint = payload["scenario_fingerprint"]
        return shards.write_entry(
            self.root,
            fingerprint,
            _trace_file_name(fingerprint, payload["zoo_fingerprint"]),
            json.dumps(payload),
            _index_meta(payload),
        )

    def load(self, scenario: Scenario, zoo: ModelZoo) -> ScenarioTrace | None:
        """Load the persisted trace for (scenario, zoo), or None if absent.

        A missing entry and an unreadable one are the same thing to the
        caller — a miss; the unreadable file is additionally counted in
        :attr:`corrupt_entries` and removed so it can never shadow a
        future rebuild.
        """
        path = self.path_for(scenario, zoo)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            payload = None
        if not isinstance(payload, dict):
            try:
                quarantined = shards.quarantine_corrupt_entry(
                    self.root, scenario.fingerprint(), path.name
                )
            except iolayer.StoreDegraded:
                # Quarantine bookkeeping hit a full disk: the entry is
                # still unservable, so this load is a miss either way.
                self.corrupt_entries += 1
                return None
            if quarantined:
                self.corrupt_entries += 1
                return None
            # A concurrent writer replaced the entry while we looked at it;
            # one retry reads the now-complete file (or misses cleanly).
            return self.load(scenario, zoo)
        return trace_from_dict(payload, scenario, zoo)

    def get(
        self,
        scenario: Scenario,
        zoo: ModelZoo,
        max_workers: int | None = None,
    ) -> ScenarioTrace:
        """Load the trace, building (and persisting) it on a miss."""
        trace = self.load(scenario, zoo)
        if trace is None:
            trace = ScenarioTrace.build(scenario, zoo, max_workers=max_workers)
            self.save(trace, zoo)
        return trace

    def __contains__(self, key: tuple[Scenario, ModelZoo]) -> bool:
        scenario, zoo = key
        return self.path_for(scenario, zoo).exists()

    def __len__(self) -> int:
        return sum(1 for _ in shards.iter_entry_paths(self.root, "trace-*.json"))

    def clear(self) -> int:
        """Delete every persisted trace; returns how many were removed."""
        removed = 0
        for path in list(shards.iter_entry_paths(self.root, "trace-*.json")):
            if path.parent == self.root:  # legacy flat file written after open
                path.unlink(missing_ok=True)
                removed += 1
                continue
            digest = path.stem.split("-")[2]
            if shards.remove_entry(self.root, digest, path.name):
                removed += 1
        return removed

    def audit(self) -> tuple[int, list[str]]:
        """Cross-check shard indexes against entry files; see :func:`shards.audit_entries`."""
        return shards.audit_entries(self.root, "trace-*.json")

    # ------------------------------------------------------------ health

    @property
    def degraded(self) -> bool:
        """True while this store's root is in read-only (capacity) mode."""
        return iolayer.is_degraded(self.root)

    @property
    def io_errors(self) -> int:
        """I/O errors observed under this root (skipped paths included)."""
        return iolayer.io_error_count(self.root)

    # ------------------------------------------------------- maintenance

    def scrub(self) -> maintenance.ScrubReport:
        """Re-verify schema + fingerprints of every indexed trace entry."""
        return maintenance.scrub_entries(
            self.root, "trace-*.json", _scrub_problem, digest_for=_digest_from_name
        )

    def gc(
        self,
        *,
        ttl_seconds: float = maintenance.DEFAULT_TTL_SECONDS,
        dry_run: bool = True,
        now: float | None = None,
    ) -> maintenance.GcReport:
        """TTL-collect quarantined files and stale temps (dry-run default)."""
        return maintenance.gc_entries(
            self.root, ttl_seconds=ttl_seconds, dry_run=dry_run, now=now
        )

    def repair(self) -> maintenance.RepairReport:
        """Heal index↔disk drift (drop ghosts, re-index parseable orphans)."""
        return maintenance.repair_entries(
            self.root, "trace-*.json", lambda name, payload: _index_meta(payload)
        )


def _digest_from_name(name: str) -> str | None:
    """The shard digest encoded in a trace entry file name, or None."""
    parts = name[: -len(".json")].split("-") if name.endswith(".json") else []
    return parts[2] if len(parts) == 4 and len(parts[2]) == 16 else None


def _scrub_problem(name: str, payload: dict) -> str | None:
    """Why a parsed trace entry is unsound, or None when it checks out.

    Scrub has no live scenario/zoo to compare against, so it verifies the
    *internal* identity discipline: schema and algorithm versions, the
    fingerprint prefixes baked into the file name, and the outcome shape.
    """
    if payload.get("schema_version") != SCHEMA_VERSION:
        return f"schema_version {payload.get('schema_version')!r} != {SCHEMA_VERSION}"
    parts = name[: -len(".json")].split("-")
    if parts[1] != f"v{payload.get('algorithm_version')}":
        return (
            f"algorithm_version {payload.get('algorithm_version')!r} "
            f"does not match file name {parts[1]}"
        )
    fingerprint = payload.get("scenario_fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint.startswith(parts[2]):
        return "scenario fingerprint does not match file name"
    zoo_fingerprint = payload.get("zoo_fingerprint")
    if not isinstance(zoo_fingerprint, str) or not zoo_fingerprint.startswith(parts[3]):
        return "zoo fingerprint does not match file name"
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, dict):
        return "outcomes block is not an object"
    frames = payload.get("frame_count")
    if not isinstance(frames, int):
        return "frame_count is not an integer"
    for model, rows in outcomes.items():
        if not isinstance(rows, list) or len(rows) != frames:
            return f"outcomes[{model}] does not carry {frames} rows"
    return None


def _index_meta(payload: dict) -> dict:
    """The identity block a shard index records for one trace entry."""
    return {
        "scenario_name": payload.get("scenario_name"),
        "scenario_fingerprint": payload.get("scenario_fingerprint"),
        "zoo_fingerprint": payload.get("zoo_fingerprint"),
        "algorithm_version": payload.get("algorithm_version"),
        "frame_count": payload.get("frame_count"),
    }
