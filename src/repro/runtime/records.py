"""Compatibility shim: record types moved to :mod:`repro.core.records`.

:class:`FrameRecord` and :class:`RunResult` are produced by policies
(implemented in ``core`` and ``baselines``, below ``runtime`` in the layer
order), so the definitions live in ``core``; this module re-exports them
for existing ``repro.runtime.records`` importers.
"""

from ..core.records import FrameRecord, RunResult

__all__ = ["FrameRecord", "RunResult"]
