"""Metric aggregation: the numbers the paper's tables report.

The conventions mirror §IV/§V: IoU and success rate are averaged over
frames *with* a ground-truth object (the single-object protocol); time and
energy are averaged over *all* processed frames (the system pays for empty
frames too); "non-GPU" is the share of frames executed off the GPU;
"swaps" counts (model, accelerator) pair changes; "pairs" counts distinct
pairs used.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.records import FrameRecord, RunResult

SUCCESS_IOU_THRESHOLD = 0.5


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one run (one policy on one scenario)."""

    policy_name: str
    scenario_name: str
    frames: int
    mean_iou: float
    success_rate: float
    mean_latency_s: float
    mean_energy_j: float
    total_energy_j: float
    non_gpu_share: float
    swaps: int
    cold_loads: int
    # Distinct pairs in a single run; fractional in cross-scenario averages
    # (the paper reports e.g. "4.3 pairs used").
    pairs_used: float
    mean_overhead_s: float
    detected_share: float

    @property
    def efficiency_iou_per_joule(self) -> float:
        """The paper's Fig. 2 efficiency metric: IoU per joule."""
        if self.total_energy_j <= 0.0:
            return 0.0
        return self.mean_iou * self.frames / self.total_energy_j


def aggregate(result: RunResult) -> RunMetrics:
    """Collapse a run's frame records into :class:`RunMetrics`."""
    records = result.records
    if not records:
        raise ValueError(f"run {result.policy_name!r} has no frame records")

    with_truth = [r for r in records if r.ground_truth_present]
    if with_truth:
        mean_iou = sum(r.iou for r in with_truth) / len(with_truth)
        success = sum(1 for r in with_truth if r.success) / len(with_truth)
    else:
        mean_iou = 0.0
        success = 0.0

    frames = len(records)
    return RunMetrics(
        policy_name=result.policy_name,
        scenario_name=result.scenario_name,
        frames=frames,
        mean_iou=mean_iou,
        success_rate=success,
        mean_latency_s=sum(r.latency_s for r in records) / frames,
        mean_energy_j=sum(r.energy_j for r in records) / frames,
        total_energy_j=sum(r.energy_j for r in records),
        non_gpu_share=sum(1 for r in records if r.non_gpu) / frames,
        swaps=sum(1 for r in records if r.swap),
        cold_loads=sum(1 for r in records if r.cold_load),
        pairs_used=len(result.pairs_used()),
        mean_overhead_s=sum(r.overhead_s for r in records) / frames,
        detected_share=sum(1 for r in records if r.detected) / frames,
    )


def average_metrics(metrics: list[RunMetrics], policy_name: str) -> RunMetrics:
    """Average one policy's metrics across scenarios (Table III rows).

    Scenario averages are weighted equally regardless of length, matching
    how the paper summarizes its six videos; counts (swaps, cold loads)
    are summed, and "pairs used" is averaged (the paper reports e.g. 4.3).
    """
    if not metrics:
        raise ValueError("cannot average zero runs")
    n = len(metrics)
    return RunMetrics(
        policy_name=policy_name,
        scenario_name="average",
        frames=sum(m.frames for m in metrics),
        mean_iou=sum(m.mean_iou for m in metrics) / n,
        success_rate=sum(m.success_rate for m in metrics) / n,
        mean_latency_s=sum(m.mean_latency_s for m in metrics) / n,
        mean_energy_j=sum(m.mean_energy_j for m in metrics) / n,
        total_energy_j=sum(m.total_energy_j for m in metrics),
        non_gpu_share=sum(m.non_gpu_share for m in metrics) / n,
        swaps=sum(m.swaps for m in metrics),
        cold_loads=sum(m.cold_loads for m in metrics),
        pairs_used=round(sum(m.pairs_used for m in metrics) / n, 1),
        mean_overhead_s=sum(m.mean_overhead_s for m in metrics) / n,
        detected_share=sum(m.detected_share for m in metrics) / n,
    )


def efficiency_series(records: list[FrameRecord], window: int = 50) -> list[float]:
    """Windowed IoU-per-joule timeline (Fig. 2/3/4 efficiency curves)."""
    if window <= 0:
        raise ValueError("window must be positive")
    series = []
    for start in range(0, len(records), window):
        chunk = records[start : start + window]
        energy = sum(r.energy_j for r in chunk)
        iou_sum = sum(r.iou for r in chunk if r.ground_truth_present)
        series.append(iou_sum / energy if energy > 0 else 0.0)
    return series
