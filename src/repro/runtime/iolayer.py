"""The injectable I/O seam every store, queue, and export write routes through.

PR 7/8 made the sweep tier survive killed workers and clock skew; this
module makes it survive the *filesystem*.  Three ideas:

**One seam.**  Every durable write in the persistence tier — store
entries, shard indexes, queue records, exported metrics — goes through
:func:`write_text` / :func:`write_bytes` / :func:`write_json` /
:func:`replace` here instead of calling :mod:`repro.util.atomicio` (or
``os.replace``) directly.  The ``locks/io-seam`` lint rule makes that
structural: store-tier modules may not open files for writing themselves.
Directory scans used by maintenance sweeps route through :func:`scan`,
and — since PR 10 — entry *reads* route through :func:`read_text` /
:func:`read_bytes` for the same reason: a transient ``EIO`` on read used
to be indistinguishable from corruption, so a recoverable fault could
quarantine (destroy) a perfectly valid entry.  Behind the seam, reads
retry transient errnos with seeded backoff and re-raise the ``OSError``
on exhaustion; callers treat that as *unavailable* (a miss), never as
*corrupt* (a quarantine).

**Deterministic filesystem faults.**  An :class:`FsFaultPlan` — a seeded,
serializable schedule of ENOSPC / EIO / lost-rename / partial-write /
slow-io events keyed by ``(operation, operation index)`` — can be armed
process-wide (:func:`arm_fault_plan`, or the :func:`fault_plan` context
manager).  Each hook point (``write``, ``fsync``, ``replace``, ``scan``,
``read``) ticks a per-op counter and consults the plan, so a fault
harness can replay the exact same disk failure schedule run after run.  The
``fsfaults`` differential check and ``loadgen --fs-chaos`` build on this.

**Graceful degradation.**  Transient capacity errors (ENOSPC, EDQUOT,
EIO) are retried a bounded number of times with seeded backoff; on
exhaustion the *root* (store / queue directory) is marked degraded and a
typed :exc:`StoreDegraded` is raised instead of a bare ``OSError``.
While degraded, writes make exactly one attempt each (a probe-on-write),
so recovery is automatic the moment space returns — the first write that
succeeds clears the flag.  :func:`probe` offers an explicit recovery
attempt for callers (the job queue) that want to check *before* spending
a lease.  Reads are never blocked: a degraded store keeps serving warm
hits and reports misses as capacity failures instead of crashing.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import mmap
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator

from ..util import jsonsafe
from ..util.atomicio import atomic_write_text, temp_name

#: Schema of serialized fault plans; pinned in analysis/schema_manifest.json.
FS_FAULT_PLAN_SCHEMA_VERSION = 1

#: Hook points a fault event can target.
FS_OPS = ("write", "fsync", "replace", "scan", "read")

#: Injectable failure kinds.
FS_FAULT_KINDS = ("enospc", "eio", "lost_rename", "partial_write", "slow_io")

#: errnos treated as transient capacity pressure: retried, then degraded.
TRANSIENT_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EIO})

#: Bounded-retry policy for transient errors (tests may shrink these).
RETRY_ATTEMPTS = 3
RETRY_BASE = 0.005
RETRY_CAP = 0.05

#: Temp-file name used by :func:`probe`; swept like any other ``*.tmp*``.
PROBE_NAME = ".iolayer-probe"


class StoreError(Exception):
    """Base class for typed persistence-tier failures."""


class StoreDegraded(StoreError):
    """A root ran out of capacity: retries exhausted, now read-only.

    Carries the degraded ``root`` and the ``op`` that failed so service
    layers can map it to capacity responses (HTTP 507 / 503) instead of
    treating it as an internal error.
    """

    def __init__(self, root: str | Path, op: str, cause: str) -> None:
        self.root = str(root)
        self.op = op
        self.cause = cause
        super().__init__(
            f"store {self.root} degraded: {op} failed after bounded retries ({cause})"
        )


# --------------------------------------------------------------- fault plans


@dataclass(frozen=True)
class FsFaultEvent:
    """One scheduled filesystem fault.

    Fires for the ``count`` consecutive operations of kind ``op`` whose
    zero-based per-op index (counted since the plan was armed) falls in
    ``[index, index + count)``.  ``match``, when set, restricts the event
    to files whose *name* matches the glob — and the index then counts
    only matching operations, so a plan can say "tear the 3rd run-entry
    write" regardless of how many index/queue writes interleave.
    ``param`` is kind-specific: the kept fraction of the payload for
    ``partial_write``, the sleep seconds for ``slow_io``; unused
    otherwise.
    """

    op: str
    index: int
    kind: str
    count: int = 1
    param: float | None = None
    match: str | None = None

    def __post_init__(self) -> None:
        if self.op not in FS_OPS:
            raise ValueError(f"unknown fault op {self.op!r}")
        if self.kind not in FS_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "lost_rename" and self.op != "replace":
            raise ValueError("lost_rename only applies to the replace op")
        if self.kind == "partial_write" and self.op != "write":
            raise ValueError("partial_write only applies to the write op")
        if self.index < 0 or self.count < 1:
            raise ValueError("event needs index >= 0 and count >= 1")

    def covers(self, index: int) -> bool:
        return self.index <= index < self.index + self.count

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "index": self.index,
            "kind": self.kind,
            "count": self.count,
            "param": self.param,
            "match": self.match,
        }

    @staticmethod
    def from_dict(payload: dict) -> "FsFaultEvent":
        return FsFaultEvent(
            op=payload["op"],
            index=payload["index"],
            kind=payload["kind"],
            count=payload.get("count", 1),
            param=payload.get("param"),
            match=payload.get("match"),
        )


@dataclass(frozen=True)
class FsFaultPlan:
    """A deterministic, serializable schedule of filesystem faults."""

    events: tuple[FsFaultEvent, ...]
    label: str = ""

    def events_for(self, op: str) -> tuple[FsFaultEvent, ...]:
        return tuple(event for event in self.events if event.op == op)

    def to_dict(self) -> dict:
        return {
            "schema_version": FS_FAULT_PLAN_SCHEMA_VERSION,
            "label": self.label,
            "events": [event.to_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(payload: dict) -> "FsFaultPlan":
        if payload.get("schema_version") != FS_FAULT_PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fault plan schema {payload.get('schema_version')!r}"
            )
        return FsFaultPlan(
            events=tuple(FsFaultEvent.from_dict(e) for e in payload.get("events", [])),
            label=payload.get("label", ""),
        )

    def save(self, path: str | Path) -> Path:
        # Plan files are harness inputs, not store data: the leaf atomic
        # writer is the right tool (routing them through the seam would
        # let an armed plan corrupt its own description).
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False)
        )

    @staticmethod
    def load(path: str | Path) -> "FsFaultPlan":
        return FsFaultPlan.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class _ArmedPlan:
    """An armed plan plus its per-``(op, match)`` operation counters."""

    def __init__(self, plan: FsFaultPlan) -> None:
        self.plan = plan
        self.counters: dict[tuple[str, str], int] = {}
        self.fired = 0


# ------------------------------------------------------------- shared state

# One guard for all module state; enforced by `repro lint`.
_STATE_LOCK = threading.Lock()  # repro: guards[_DEGRADED, _IO_ERRORS, _ARMED]
_DEGRADED: dict[str, str] = {}
_IO_ERRORS: dict[str, int] = {}
_ARMED: _ArmedPlan | None = None


def _root_key(path: Path, root: str | Path | None) -> str:
    return str(Path(root)) if root is not None else str(path.parent)


def is_degraded(root: str | Path) -> bool:
    """True while ``root`` is in degraded (read-only) mode."""
    key = str(Path(root))
    with _STATE_LOCK:
        return key in _DEGRADED


def degraded_reason(root: str | Path) -> str | None:
    """Why ``root`` degraded, or None when healthy."""
    key = str(Path(root))
    with _STATE_LOCK:
        return _DEGRADED.get(key)


def mark_degraded(root: str | Path, reason: str) -> None:
    """Flip ``root`` into degraded mode (first reason wins)."""
    key = str(Path(root))
    with _STATE_LOCK:
        _DEGRADED.setdefault(key, reason)


def clear_degraded(root: str | Path) -> None:
    """Return ``root`` to normal writes (a write or probe succeeded)."""
    key = str(Path(root))
    with _STATE_LOCK:
        _DEGRADED.pop(key, None)


def record_io_error(root: str | Path, count: int = 1) -> None:
    """Count ``count`` I/O errors observed under ``root``."""
    key = str(Path(root))
    with _STATE_LOCK:
        _IO_ERRORS[key] = _IO_ERRORS.get(key, 0) + count


def io_error_count(root: str | Path) -> int:
    """I/O errors observed under ``root`` in this process."""
    key = str(Path(root))
    with _STATE_LOCK:
        return _IO_ERRORS.get(key, 0)


def reset_state(root: str | Path | None = None) -> None:
    """Forget degraded flags and error counts (test isolation)."""
    with _STATE_LOCK:
        if root is None:
            _DEGRADED.clear()
            _IO_ERRORS.clear()
        else:
            key = str(Path(root))
            _DEGRADED.pop(key, None)
            _IO_ERRORS.pop(key, None)


# ----------------------------------------------------------------- arming


def arm_fault_plan(plan: FsFaultPlan) -> None:
    """Arm ``plan`` process-wide (op counters start at zero)."""
    global _ARMED
    with _STATE_LOCK:
        _ARMED = _ArmedPlan(plan)


def disarm_fault_plan() -> int:
    """Disarm any armed plan; how many events fired while armed."""
    global _ARMED
    with _STATE_LOCK:
        fired = _ARMED.fired if _ARMED is not None else 0
        _ARMED = None
    return fired


def fault_plan_armed() -> bool:
    """True while a fault plan is armed in this process."""
    with _STATE_LOCK:
        return _ARMED is not None


@contextmanager
def fault_plan(plan: FsFaultPlan) -> Iterator[None]:
    """Arm ``plan`` for the duration of the block."""
    arm_fault_plan(plan)
    try:
        yield
    finally:
        disarm_fault_plan()


def _consume_fault(op: str, path: Path) -> FsFaultEvent | None:
    """Tick the matching ``op`` counters and return the covering event, if any.

    Each distinct ``(op, match)`` key among the plan's events keeps its
    own counter, ticked once per operation whose file name matches — an
    unmatched glob never consumes an index, so targeted events fire on
    exactly the Nth *relevant* operation.
    """
    with _STATE_LOCK:
        armed = _ARMED
        if armed is None:
            return None
        name = path.name
        hit: FsFaultEvent | None = None
        ticked: set[str] = set()
        for event in armed.plan.events:
            if event.op != op:
                continue
            match = event.match or "*"
            if match not in ticked:
                if event.match is not None and not fnmatch.fnmatch(name, event.match):
                    continue
                ticked.add(match)
                key = (op, match)
                armed.counters[key] = armed.counters.get(key, 0) + 1
            index = armed.counters[(op, match)] - 1
            if event.covers(index):
                armed.fired += 1
                hit = event
                break
        return hit


def _maybe_fault(op: str, path: Path) -> FsFaultEvent | None:
    """Fire any scheduled fault at this hook point.

    Raises the injected ``OSError`` for ``enospc``/``eio``, sleeps for
    ``slow_io``, and returns the event for kinds the caller must act out
    itself (``lost_rename``, ``partial_write``).
    """
    event = _consume_fault(op, path)
    if event is None:
        return None
    if event.kind == "slow_io":
        time.sleep(event.param if event.param is not None else 0.02)
        return None
    if event.kind == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC ({op})", str(path))
    if event.kind == "eio":
        raise OSError(errno.EIO, f"injected EIO ({op})", str(path))
    return event


# ------------------------------------------------------------------ the seam


def _is_transient(exc: OSError) -> bool:
    return exc.errno in TRANSIENT_ERRNOS


def _write_once(path: Path, data: str | bytes, key: str) -> Path:
    """One crash-safe write attempt: temp + replace, with fault hooks.

    ``data`` may be text (JSON entries) or bytes (binary column entries);
    both share the same temp+replace discipline and fault hooks.
    """
    tmp = path.parent / temp_name(path.name)
    binary = isinstance(data, (bytes, bytearray, memoryview))
    try:
        event = _maybe_fault("write", path)
        payload = data
        if event is not None and event.kind == "partial_write":
            keep = event.param if event.param is not None else 0.5
            payload = data[: int(len(data) * keep)]
        # The raw open/replace pair lives HERE and nowhere else in the
        # store tier; everything above routes through this seam.
        mode, encoding = ("wb", None) if binary else ("w", "utf-8")
        with open(tmp, mode, encoding=encoding) as handle:  # repro: allow[locks/raw-write]
            handle.write(payload)
            # Hook point only: the stores are rename-durable by design
            # (a torn final file is impossible; a lost recent write is
            # recomputable), so no real fsync is issued on the hot path.
            _maybe_fault("fsync", path)
        event = _maybe_fault("replace", path)
        if event is not None and event.kind == "lost_rename":
            tmp.unlink(missing_ok=True)
            return path
        os.replace(tmp, path)  # repro: allow[locks/raw-write]
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def _write_with_retry(path: Path, data: str | bytes, root: str | Path | None) -> Path:
    """The shared retry/degrade discipline behind every durable write."""
    key = _root_key(path, root)
    if is_degraded(key):
        try:
            result = _write_once(path, data, key)
        except OSError as exc:
            if _is_transient(exc):
                record_io_error(key)
                raise StoreDegraded(key, "write", str(exc)) from exc
            raise
        clear_degraded(key)
        return result
    rng = random.Random(f"{key}|{path.name}")
    for attempt in range(RETRY_ATTEMPTS):
        try:
            return _write_once(path, data, key)
        except OSError as exc:
            if not _is_transient(exc):
                raise
            record_io_error(key)
            if attempt + 1 >= RETRY_ATTEMPTS:
                mark_degraded(key, f"write {path.name}: {exc}")
                raise StoreDegraded(key, "write", str(exc)) from exc
            delay = min(RETRY_CAP, RETRY_BASE * (2**attempt))
            time.sleep(delay * (0.5 + 0.5 * rng.random()))
    raise AssertionError("unreachable: retry loop returns or raises")


def write_text(path: str | Path, text: str, *, root: str | Path | None = None) -> Path:
    """Crash-safe text write through the seam; the durable-write entry point.

    ``root`` names the store/queue directory whose health this write
    belongs to (defaults to the file's parent).  Transient capacity
    errors are retried ``RETRY_ATTEMPTS`` times with seeded backoff; on
    exhaustion the root degrades and :exc:`StoreDegraded` is raised.
    While degraded, each write makes a single attempt — success clears
    the flag (space returned), failure re-raises :exc:`StoreDegraded`
    without burning retries.
    """
    return _write_with_retry(Path(path), text, root)


def write_bytes(path: str | Path, data: bytes, *, root: str | Path | None = None) -> Path:
    """Crash-safe binary write through the seam (column-format entries).

    Same retry/degrade/fault discipline as :func:`write_text`; the
    ``partial_write`` fault kind truncates the byte payload the same way
    it truncates text, so torn binary entries are injectable too.
    """
    return _write_with_retry(Path(path), data, root)


def write_json(
    path: str | Path, payload: object, *, root: str | Path | None = None, **dumps_kwargs
) -> Path:
    """Serialize ``payload`` and :func:`write_text` it through the seam.

    Serialization goes through :mod:`repro.util.jsonsafe`, so non-finite
    floats become explicit sentinels instead of spec-invalid ``NaN`` /
    ``Infinity`` tokens.
    """
    return write_text(path, jsonsafe.dumps(payload, **dumps_kwargs), root=root)


def _read_once(path: Path, *, binary: bool, count: int | None, use_mmap: bool):
    """One read attempt with the ``read`` fault hook applied."""
    _maybe_fault("read", path)
    if not binary:
        return path.read_text(encoding="utf-8")
    with open(path, "rb") as handle:
        if use_mmap:
            try:
                size = os.fstat(handle.fileno()).st_size
                if size == 0:
                    return b""
                return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # mmap unavailable (odd filesystem): fall back to a copy.
                handle.seek(0)
                return handle.read()
        return handle.read() if count is None else handle.read(count)


def _read_with_retry(
    path: Path, root: str | Path | None, *, binary: bool, count: int | None = None,
    use_mmap: bool = False,
):
    """Bounded-retry read discipline shared by :func:`read_text` / :func:`read_bytes`.

    Reads never degrade a root and a degraded root keeps serving reads
    (single attempt — no point burning the retry budget while capacity is
    known-bad).  A ``FileNotFoundError`` passes straight through (it is
    the caller's miss signal, not an I/O fault); transient errnos are
    retried with seeded backoff, counted in ``io_errors``, and the last
    ``OSError`` is re-raised on exhaustion so callers can treat the entry
    as *unavailable* — never as corrupt.
    """
    key = _root_key(path, root)
    if is_degraded(key):
        try:
            return _read_once(path, binary=binary, count=count, use_mmap=use_mmap)
        except OSError as exc:
            if _is_transient(exc):
                record_io_error(key)
            raise
    rng = random.Random(f"read|{key}|{path.name}")
    last: OSError | None = None
    for attempt in range(RETRY_ATTEMPTS):
        try:
            return _read_once(path, binary=binary, count=count, use_mmap=use_mmap)
        except OSError as exc:
            if not _is_transient(exc):
                raise
            record_io_error(key)
            last = exc
            if attempt + 1 < RETRY_ATTEMPTS:
                delay = min(RETRY_CAP, RETRY_BASE * (2**attempt))
                time.sleep(delay * (0.5 + 0.5 * rng.random()))
    raise last  # type: ignore[misc]  # loop always sets it before falling through


def read_text(path: str | Path, *, root: str | Path | None = None) -> str:
    """Entry read through the seam: bounded retries, ``io_errors`` accounting.

    The read-side twin of :func:`write_text`.  Store load paths call this
    instead of ``Path.read_text`` so a transient ``EIO``/``EDQUOT`` on
    read surfaces as an ``OSError`` (a miss) after retries — it can never
    masquerade as a parse failure and quarantine a valid entry.
    """
    return _read_with_retry(Path(path), root, binary=False)


def read_bytes(
    path: str | Path,
    *,
    root: str | Path | None = None,
    count: int | None = None,
    map: bool = False,
):
    """Binary entry read through the seam.

    ``count`` reads only the first N bytes (how :func:`repro.runtime.colfmt`
    probes a column file's JSON header without touching its payload);
    ``map=True`` returns a read-only ``mmap`` of the whole file so column
    ndarrays can be built zero-copy (falling back to a plain ``bytes``
    read where mapping is unsupported).
    """
    return _read_with_retry(Path(path), root, binary=True, count=count, use_mmap=map)


def replace(src: str | Path, dst: str | Path, *, root: str | Path | None = None) -> None:
    """Atomic same-filesystem rename through the seam (moves, migrations).

    A rename allocates no data blocks, so this is the tool quarantine
    moves use even under ENOSPC; the fault hooks still apply (a plan can
    lose or fail the rename), with the same retry/degrade discipline.
    """
    src = Path(src)
    dst = Path(dst)
    key = _root_key(dst, root)
    for attempt in range(RETRY_ATTEMPTS):
        try:
            event = _maybe_fault("replace", dst)
            if event is not None and event.kind == "lost_rename":
                src.unlink(missing_ok=True)
                return
            os.replace(src, dst)  # repro: allow[locks/raw-write]
            return
        except OSError as exc:
            if not _is_transient(exc):
                raise
            record_io_error(key)
            if attempt + 1 >= RETRY_ATTEMPTS:
                mark_degraded(key, f"replace {dst.name}: {exc}")
                raise StoreDegraded(key, "replace", str(exc)) from exc
            time.sleep(min(RETRY_CAP, RETRY_BASE * (2**attempt)))
    raise AssertionError("unreachable: retry loop returns or raises")


def scan(directory: str | Path, pattern: str, *, root: str | Path | None = None) -> list[Path]:
    """Sorted directory listing through the seam (fault-injectable reads).

    Transient errors are retried; on exhaustion the ``OSError`` is
    re-raised (scans are reads — they never degrade a root, callers skip
    or surface the miss themselves) after counting it in ``io_errors``.
    """
    directory = Path(directory)
    key = _root_key(directory, root)
    last: OSError | None = None
    for _ in range(RETRY_ATTEMPTS):
        try:
            _maybe_fault("scan", directory)
            return sorted(directory.glob(pattern))
        except OSError as exc:
            if not _is_transient(exc):
                raise
            record_io_error(key)
            last = exc
    raise last  # type: ignore[misc]  # loop always sets it before falling through


def open_lock_file(lock_path: str | Path):
    """The raw handle ``fcntl`` latches onto.

    Not a data write — the lock file carries no payload, only an inode —
    so it bypasses the temp+replace discipline by design.
    """
    return open(lock_path, "a+", encoding="utf-8")  # noqa: SIM115  # repro: allow[locks/raw-write]


def probe(root: str | Path) -> bool:
    """One explicit recovery attempt for a degraded root.

    Writes and removes a small probe file through the fault hooks.  True
    when the root is healthy (or just recovered — success clears the
    degraded flag); False when capacity is still exhausted.  The job
    queue calls this before claiming so leases are never burned against
    a store that cannot commit results.
    """
    root = Path(root)
    if not is_degraded(root):
        return True
    tmp = root / PROBE_NAME
    try:
        _write_once(tmp, "probe", str(root))
        tmp.unlink(missing_ok=True)
    except OSError:
        return False
    clear_degraded(root)
    return True
