"""Continuous-detection runtime: traces, stores, policies, runner, metrics."""

from .constraints import ConstraintReport, evaluate_constraints
from .export import (
    load_metrics_dicts,
    metrics_to_dict,
    record_to_dict,
    result_to_dict,
    save_metrics,
)
from .segments import SegmentMetrics, segment_metrics
from .metrics import (
    SUCCESS_IOU_THRESHOLD,
    RunMetrics,
    aggregate,
    average_metrics,
    efficiency_series,
)
from .experiment import ExperimentRunner
from .iolayer import FsFaultEvent, FsFaultPlan, StoreDegraded, StoreError
from .maintenance import GcReport, RepairReport, ScrubReport
from .policy import Policy, RuntimeServices
from .records import FrameRecord, RunResult
from .runner import run_policy, run_policy_on_scenarios
from .runstore import RunKey, RunSchemaError, RunStore, run_from_dict, run_to_dict
from .store import TraceSchemaError, TraceStore, trace_from_dict, trace_to_dict
from .trace import ScenarioTrace, TraceCache

__all__ = [
    "ConstraintReport",
    "evaluate_constraints",
    "SegmentMetrics",
    "segment_metrics",
    "metrics_to_dict",
    "record_to_dict",
    "result_to_dict",
    "save_metrics",
    "load_metrics_dicts",
    "RunMetrics",
    "aggregate",
    "average_metrics",
    "efficiency_series",
    "SUCCESS_IOU_THRESHOLD",
    "FsFaultEvent",
    "FsFaultPlan",
    "StoreError",
    "StoreDegraded",
    "ScrubReport",
    "GcReport",
    "RepairReport",
    "Policy",
    "RuntimeServices",
    "FrameRecord",
    "RunResult",
    "run_policy",
    "run_policy_on_scenarios",
    "ScenarioTrace",
    "TraceCache",
    "ExperimentRunner",
    "TraceStore",
    "TraceSchemaError",
    "trace_to_dict",
    "trace_from_dict",
    "RunStore",
    "RunKey",
    "RunSchemaError",
    "run_to_dict",
    "run_from_dict",
]
