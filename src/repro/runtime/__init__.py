"""Continuous-detection runtime: traces, policies, runner, metrics."""

from .constraints import ConstraintReport, evaluate_constraints
from .export import (
    load_metrics_dicts,
    metrics_to_dict,
    record_to_dict,
    result_to_dict,
    save_metrics,
)
from .segments import SegmentMetrics, segment_metrics
from .metrics import (
    SUCCESS_IOU_THRESHOLD,
    RunMetrics,
    aggregate,
    average_metrics,
    efficiency_series,
)
from .policy import Policy, RuntimeServices
from .records import FrameRecord, RunResult
from .runner import run_policy, run_policy_on_scenarios
from .trace import ScenarioTrace, TraceCache

__all__ = [
    "ConstraintReport",
    "evaluate_constraints",
    "SegmentMetrics",
    "segment_metrics",
    "metrics_to_dict",
    "record_to_dict",
    "result_to_dict",
    "save_metrics",
    "load_metrics_dicts",
    "RunMetrics",
    "aggregate",
    "average_metrics",
    "efficiency_series",
    "SUCCESS_IOU_THRESHOLD",
    "Policy",
    "RuntimeServices",
    "FrameRecord",
    "RunResult",
    "run_policy",
    "run_policy_on_scenarios",
    "ScenarioTrace",
    "TraceCache",
]
