"""Constraint-satisfaction reporting.

SHIFT's pitch is optimizing energy *while satisfying latency constraints*.
Given a per-frame latency deadline (the camera period, or a control-loop
bound) and/or a mission energy budget, this module reports how well a run
satisfied them: deadline hit rate, worst-case latency, and the frame at
which the energy budget would have been exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.records import RunResult


@dataclass(frozen=True)
class ConstraintReport:
    """How one run performed against deadline/budget constraints."""

    deadline_s: float | None
    energy_budget_j: float | None
    frames: int
    deadline_hit_rate: float  # 1.0 when no deadline given
    worst_latency_s: float
    p99_latency_s: float
    total_energy_j: float
    budget_exhausted_at_frame: int | None  # None = budget never exhausted

    @property
    def deadline_met(self) -> bool:
        """True when every frame met the deadline (or none was set)."""
        return self.deadline_hit_rate == 1.0

    @property
    def within_budget(self) -> bool:
        """True when the run never exhausted the energy budget."""
        return self.budget_exhausted_at_frame is None


def evaluate_constraints(
    result: RunResult,
    deadline_s: float | None = None,
    energy_budget_j: float | None = None,
) -> ConstraintReport:
    """Score a run against a latency deadline and/or an energy budget."""
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive when given")
    if energy_budget_j is not None and energy_budget_j <= 0:
        raise ValueError("energy_budget_j must be positive when given")
    records = result.records
    if not records:
        raise ValueError("cannot evaluate constraints on an empty run")

    latencies = sorted(r.latency_s for r in records)
    hit_rate = (
        1.0 if deadline_s is None
        else sum(1 for r in records if r.latency_s <= deadline_s) / len(records)
    )

    exhausted_at = None
    cumulative = 0.0
    for record in records:
        cumulative += record.energy_j
        if energy_budget_j is not None and cumulative > energy_budget_j:
            exhausted_at = record.frame_index
            break
    total_energy = sum(r.energy_j for r in records)

    p99_index = min(len(latencies) - 1, int(0.99 * (len(latencies) - 1) + 0.5))
    return ConstraintReport(
        deadline_s=deadline_s,
        energy_budget_j=energy_budget_j,
        frames=len(records),
        deadline_hit_rate=hit_rate,
        worst_latency_s=latencies[-1],
        p99_latency_s=latencies[p99_index],
        total_energy_j=total_energy,
        budget_exhausted_at_frame=exhausted_at,
    )
