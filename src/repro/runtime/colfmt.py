"""Schema-versioned binary columnar format for trace and run entries.

ROADMAP item 2: JSON entries made the warm path parse-bound — reloading a
trace spent its time in ``json.loads`` plus per-row object rebuild, and a
warm sweep re-parsed every record it had already computed.  This module
packs the bulk per-frame data of an entry into typed, C-contiguous
*columns* (one ndarray per field) appended after a small JSON header, so
a reload is a header parse plus zero-copy ``np.frombuffer`` views over an
``mmap`` — no token stream, no row loop until a caller actually asks for
the rows.

Container layout (little-endian throughout)::

    offset 0   MAGIC            8 bytes   b"RPROCOL1"
    offset 8   header length    u32 LE    byte length of the header JSON
    offset 12  header JSON      utf-8     {"colfmt_version", "kind",
                                           "meta", "columns": [...]}
    ...        padding          zeros     to a 64-byte boundary
    data_start column payload             each column 16-byte aligned,
                                          offsets relative to data_start

The header is ordinary strict JSON (via :mod:`repro.util.jsonsafe`, so a
NaN metric cannot corrupt it) holding everything *small*: schema and
algorithm versions, fingerprints, metrics, vocabularies — exactly the
fields maintenance sweeps and warm metric reads need.  ``meta`` is the
entry's JSON payload minus its bulk field (``outcomes`` for traces,
``records`` for runs), which lives in the columns.  That split is the
whole speed story: :meth:`RunStore.load_metrics` and the trace identity
checks read ≤4 KiB of header and never touch a column byte.

Decoding goes back to *pure Python* values (``.tolist()``), so a decoded
payload is bit-identical to what the JSON writer would have produced —
the property the ``store``/``fastrun`` differential checks assert across
formats.

Like every persistence-tier module, writes and reads route through the
:mod:`repro.runtime.iolayer` seam; this module itself only encodes and
decodes buffers plus offers :func:`load_entry_payload` as the
format-dispatching read used by maintenance/quarantine/audit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..util import jsonsafe
from . import iolayer

#: Version of the container + column schemas; pinned in analysis/schema_manifest.json.
COLFMT_SCHEMA_VERSION = 1

#: File magic: 8 bytes, embeds the container major version.
MAGIC = b"RPROCOL1"

#: Suffix of binary column entries (JSON twins keep ``.json``).
COL_SUFFIX = ".col"

#: Alignment of the data segment start and of each column within it.
_DATA_ALIGN = 64
_COL_ALIGN = 16

#: Bytes read when probing a file for its header; headers are far smaller.
_HEADER_PROBE = 4096


class ColumnFormatError(ValueError):
    """A ``.col`` buffer that cannot be decoded: bad magic, version, bounds."""


#: Exceptions that mean *corrupt entry* (quarantine), as opposed to an
#: ``OSError`` which means *unavailable entry* (miss, never quarantine).
PARSE_ERRORS = (json.JSONDecodeError, ColumnFormatError)


def entry_stem(name: str) -> str:
    """Entry name minus its format suffix; identical for ``.json``/``.col`` twins."""
    for suffix in (".json", COL_SUFFIX):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def column_to_dict(name: str, array: np.ndarray, offset: int) -> dict:
    """Header descriptor for one packed column (field order is pinned)."""
    return {
        "name": name,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "offset": offset,
        "nbytes": array.nbytes,
    }


def _pack(kind: str, meta: dict, columns: list[tuple[str, np.ndarray]]) -> bytes:
    """Assemble the container: header JSON, padding, aligned column payload."""
    descriptors = []
    offset = 0
    for name, array in columns:
        offset = -(-offset // _COL_ALIGN) * _COL_ALIGN
        descriptors.append(column_to_dict(name, array, offset))
        offset += array.nbytes
    header = jsonsafe.dumps(
        {
            "colfmt_version": COLFMT_SCHEMA_VERSION,
            "kind": kind,
            "meta": meta,
            "columns": descriptors,
        },
        sort_keys=True,
    ).encode("utf-8")
    data_start = -(-(len(MAGIC) + 4 + len(header)) // _DATA_ALIGN) * _DATA_ALIGN
    out = bytearray(data_start + offset)
    out[: len(MAGIC)] = MAGIC
    out[len(MAGIC) : len(MAGIC) + 4] = len(header).to_bytes(4, "little")
    out[len(MAGIC) + 4 : len(MAGIC) + 4 + len(header)] = header
    for descriptor, (_, array) in zip(descriptors, columns):
        start = data_start + descriptor["offset"]
        out[start : start + array.nbytes] = np.ascontiguousarray(array).tobytes()
    return bytes(out)


def _parse_header(buffer, *, check_bounds: bool = True) -> tuple[dict, int]:
    """Validate magic/version and return ``(header, data_start)``.

    Raises :class:`ColumnFormatError` for anything that cannot be a valid
    container — truncation, wrong magic, bad version, malformed header
    JSON, or (with ``check_bounds``, i.e. when ``buffer`` is the whole
    file rather than a prefix probe) a column descriptor pointing outside
    the buffer.
    """
    if len(buffer) < len(MAGIC) + 4:
        raise ColumnFormatError(f"buffer too short for container ({len(buffer)} bytes)")
    if bytes(buffer[: len(MAGIC)]) != MAGIC:
        raise ColumnFormatError("bad magic: not a column-format entry")
    header_len = int.from_bytes(bytes(buffer[len(MAGIC) : len(MAGIC) + 4]), "little")
    header_end = len(MAGIC) + 4 + header_len
    if header_len <= 0 or header_end > len(buffer):
        raise ColumnFormatError(f"header length {header_len} exceeds buffer")
    try:
        header = jsonsafe.loads(bytes(buffer[len(MAGIC) + 4 : header_end]).decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ColumnFormatError(f"unparseable header: {exc}") from exc
    if not isinstance(header, dict):
        raise ColumnFormatError("header is not a JSON object")
    if header.get("colfmt_version") != COLFMT_SCHEMA_VERSION:
        raise ColumnFormatError(f"unsupported colfmt_version {header.get('colfmt_version')!r}")
    data_start = -(-header_end // _DATA_ALIGN) * _DATA_ALIGN
    if check_bounds:
        for descriptor in header.get("columns", ()):
            if not isinstance(descriptor, dict):
                raise ColumnFormatError("column descriptor is not an object")
            end = data_start + descriptor.get("offset", 0) + descriptor.get("nbytes", 0)
            if descriptor.get("offset", -1) < 0 or end > len(buffer):
                raise ColumnFormatError(f"column {descriptor.get('name')!r} out of bounds")
    return header, data_start


def column_array(buffer, header: dict, data_start: int, name: str) -> np.ndarray:
    """Zero-copy ndarray view of one column (bounds pre-validated by the parser)."""
    for descriptor in header["columns"]:
        if descriptor["name"] == name:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(descriptor["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            array = np.frombuffer(
                buffer, dtype=dtype, count=count, offset=data_start + descriptor["offset"]
            )
            return array.reshape(shape)
    raise ColumnFormatError(f"missing column {name!r}")


def read_header(path: str | Path, *, root: str | Path | None = None) -> dict:
    """Parse only the JSON header of a ``.col`` file (≤ a few KiB read).

    This is the warm-path primitive: metrics, fingerprints, and identity
    checks live in the header, so the column payload is never read.
    """
    path = Path(path)
    probe = iolayer.read_bytes(path, root=root, count=_HEADER_PROBE)
    if len(probe) >= len(MAGIC) + 4:
        header_len = int.from_bytes(bytes(probe[len(MAGIC) : len(MAGIC) + 4]), "little")
        needed = len(MAGIC) + 4 + header_len
        if 0 < header_len and needed > len(probe) and needed <= 64 * 1024 * 1024:
            probe = iolayer.read_bytes(path, root=root, count=needed)
    header, _ = _parse_header(probe, check_bounds=False)
    return header


# ---------------------------------------------------------------------------
# Trace payloads: {"schema_version", ..., "outcomes": {model: [rows]}}
# Row = [box|None, confidence, iou, quality, detected, false_positive].

def encode_trace(payload: dict) -> bytes:
    """Pack a trace payload (as produced by ``trace_to_dict``) into a container."""
    meta = {key: value for key, value in payload.items() if key != "outcomes"}
    outcomes = payload["outcomes"]
    models = list(outcomes)  # preserve payload order: readers see the zoo's order
    meta["models"] = models
    n_models = len(models)
    n_frames = len(outcomes[models[0]]) if models else 0
    box = np.zeros((n_models, n_frames, 4), dtype=np.float64)
    box_mask = np.zeros((n_models, n_frames), dtype=np.uint8)
    confidence = np.zeros((n_models, n_frames), dtype=np.float64)
    iou = np.zeros((n_models, n_frames), dtype=np.float64)
    quality = np.zeros((n_models, n_frames), dtype=np.float64)
    detected = np.zeros((n_models, n_frames), dtype=np.uint8)
    false_positive = np.zeros((n_models, n_frames), dtype=np.uint8)
    for m, model in enumerate(models):
        rows = outcomes[model]
        if len(rows) != n_frames:
            raise ColumnFormatError(
                f"ragged outcomes: {model!r} has {len(rows)} rows, expected {n_frames}"
            )
        for f, row in enumerate(rows):
            if row[0] is not None:
                box[m, f] = row[0]
                box_mask[m, f] = 1
            confidence[m, f] = row[1]
            iou[m, f] = row[2]
            quality[m, f] = row[3]
            detected[m, f] = bool(row[4])
            false_positive[m, f] = bool(row[5])
    return _pack(
        "trace",
        meta,
        [
            ("box", box),
            ("box_mask", box_mask),
            ("confidence", confidence),
            ("iou", iou),
            ("quality", quality),
            ("detected", detected),
            ("false_positive", false_positive),
        ],
    )


def decode_trace_outcomes(buffer) -> dict:
    """Rebuild the ``outcomes`` mapping (pure Python rows) from a trace container."""
    header, data_start = _parse_header(buffer)
    if header.get("kind") != "trace":
        raise ColumnFormatError(f"expected trace container, got {header.get('kind')!r}")
    models = header["meta"].get("models", [])
    box = column_array(buffer, header, data_start, "box").tolist()
    box_mask = column_array(buffer, header, data_start, "box_mask").tolist()
    confidence = column_array(buffer, header, data_start, "confidence").tolist()
    iou = column_array(buffer, header, data_start, "iou").tolist()
    quality = column_array(buffer, header, data_start, "quality").tolist()
    detected = column_array(buffer, header, data_start, "detected").tolist()
    false_positive = column_array(buffer, header, data_start, "false_positive").tolist()
    outcomes = {}
    for m, model in enumerate(models):
        outcomes[model] = [
            [
                box[m][f] if box_mask[m][f] else None,
                confidence[m][f],
                iou[m][f],
                quality[m][f],
                bool(detected[m][f]),
                bool(false_positive[m][f]),
            ]
            for f in range(len(box_mask[m]))
        ]
    return outcomes


def decode_trace(buffer) -> dict:
    """Full trace payload, bit-identical to what the JSON writer stored."""
    header, _ = _parse_header(buffer)
    if header.get("kind") != "trace":
        raise ColumnFormatError(f"expected trace container, got {header.get('kind')!r}")
    payload = {k: v for k, v in header["meta"].items() if k != "models"}
    payload["outcomes"] = decode_trace_outcomes(buffer)
    return payload


# ---------------------------------------------------------------------------
# Run payloads: {"schema_version", ..., "metrics": {...}, "records": [rows]}
# Record row = the 18-field list produced by runstore._record_row.

_RUN_FLOAT_FIELDS = (
    # (column name, record-row index)
    ("confidence", 4),
    ("iou", 5),
    ("latency_s", 8),
    ("inference_s", 9),
    ("stall_s", 10),
    ("overhead_s", 11),
    ("energy_j", 12),
    ("similarity", 17),
)

_RUN_FLAG_FIELDS = (
    ("ground_truth_present", 6),
    ("detected", 7),
    ("swap", 13),
    ("cold_load", 14),
    ("used_tracker", 15),
    ("rescheduled", 16),
)


def encode_run(payload: dict) -> bytes:
    """Pack a run payload (as produced by ``run_to_dict``) into a container.

    Metrics stay in the header — ``RunStore.load_metrics`` (the warm-sweep
    hot path) decodes ≤4 KiB and never touches the record columns.
    """
    meta = {key: value for key, value in payload.items() if key != "records"}
    records = payload["records"]
    n = len(records)
    model_names = sorted({row[1] for row in records})
    accelerator_names = sorted({row[2] for row in records})
    meta["model_names"] = model_names
    meta["accelerator_names"] = accelerator_names
    model_code = {name: code for code, name in enumerate(model_names)}
    accel_code = {name: code for code, name in enumerate(accelerator_names)}
    frame_index = np.zeros(n, dtype=np.int64)
    models = np.zeros(n, dtype=np.uint16)
    accels = np.zeros(n, dtype=np.uint16)
    box = np.zeros((n, 4), dtype=np.float64)
    box_mask = np.zeros(n, dtype=np.uint8)
    floats = {name: np.zeros(n, dtype=np.float64) for name, _ in _RUN_FLOAT_FIELDS}
    flags = {name: np.zeros(n, dtype=np.uint8) for name, _ in _RUN_FLAG_FIELDS}
    for i, row in enumerate(records):
        frame_index[i] = row[0]
        models[i] = model_code[row[1]]
        accels[i] = accel_code[row[2]]
        if row[3] is not None:
            box[i] = row[3]
            box_mask[i] = 1
        for name, idx in _RUN_FLOAT_FIELDS:
            floats[name][i] = row[idx]
        for name, idx in _RUN_FLAG_FIELDS:
            flags[name][i] = bool(row[idx])
    columns = [
        ("frame_index", frame_index),
        ("model_code", models),
        ("accel_code", accels),
        ("box", box),
        ("box_mask", box_mask),
    ]
    columns += [(name, floats[name]) for name, _ in _RUN_FLOAT_FIELDS]
    columns += [(name, flags[name]) for name, _ in _RUN_FLAG_FIELDS]
    return _pack("run", meta, columns)


def read_run_header(path: str | Path, *, root: str | Path | None = None) -> dict:
    """Run payload minus records: the header ``meta`` with vocab keys stripped."""
    header = read_header(path, root=root)
    if header.get("kind") != "run":
        raise ColumnFormatError(f"expected run container, got {header.get('kind')!r}")
    return {
        k: v
        for k, v in header["meta"].items()
        if k not in ("model_names", "accelerator_names")
    }


def decode_run(buffer) -> dict:
    """Full run payload, bit-identical to what the JSON writer stored."""
    header, data_start = _parse_header(buffer)
    if header.get("kind") != "run":
        raise ColumnFormatError(f"expected run container, got {header.get('kind')!r}")
    meta = header["meta"]
    model_names = meta.get("model_names", [])
    accelerator_names = meta.get("accelerator_names", [])
    frame_index = column_array(buffer, header, data_start, "frame_index").tolist()
    model_code = column_array(buffer, header, data_start, "model_code").tolist()
    accel_code = column_array(buffer, header, data_start, "accel_code").tolist()
    box = column_array(buffer, header, data_start, "box").tolist()
    box_mask = column_array(buffer, header, data_start, "box_mask").tolist()
    floats = {
        name: column_array(buffer, header, data_start, name).tolist()
        for name, _ in _RUN_FLOAT_FIELDS
    }
    flags = {
        name: column_array(buffer, header, data_start, name).tolist()
        for name, _ in _RUN_FLAG_FIELDS
    }
    records = []
    for i in range(len(frame_index)):
        row = [
            frame_index[i],
            model_names[model_code[i]],
            accelerator_names[accel_code[i]],
            box[i] if box_mask[i] else None,
        ]
        row += [floats[name][i] for name, _ in _RUN_FLOAT_FIELDS[:2]]
        row += [bool(flags["ground_truth_present"][i]), bool(flags["detected"][i])]
        row += [floats[name][i] for name, _ in _RUN_FLOAT_FIELDS[2:7]]
        row += [
            bool(flags["swap"][i]),
            bool(flags["cold_load"][i]),
            bool(flags["used_tracker"][i]),
            bool(flags["rescheduled"][i]),
        ]
        row.append(floats["similarity"][i])
        records.append(row)
    payload = {
        k: v for k, v in meta.items() if k not in ("model_names", "accelerator_names")
    }
    payload["records"] = records
    return payload


# ---------------------------------------------------------------------------
# Format-dispatching entry read for maintenance / quarantine / audit.

def load_entry_payload(path: str | Path, *, root: str | Path | None = None) -> dict:
    """Parse an entry of either format into its JSON-shaped payload dict.

    Raises :class:`FileNotFoundError` for a missing entry, one of
    :data:`PARSE_ERRORS` for a corrupt one, and any other ``OSError``
    (post-retry, via the seam) for an *unavailable* one — callers must
    treat only the middle case as quarantinable.
    """
    path = Path(path)
    if path.name.endswith(COL_SUFFIX):
        buffer = iolayer.read_bytes(path, root=root)
        header, _ = _parse_header(buffer)
        kind = header.get("kind")
        if kind == "trace":
            return decode_trace(buffer)
        if kind == "run":
            return decode_run(buffer)
        raise ColumnFormatError(f"unknown container kind {kind!r}")
    payload = jsonsafe.loads(iolayer.read_text(path, root=root))
    if not isinstance(payload, dict):
        raise json.JSONDecodeError("entry is not a JSON object", "", 0)
    return payload
