"""Run policies over scenarios and collect results."""

from __future__ import annotations

from ..data.scenario import Scenario
from ..models.zoo import ModelZoo
from ..sim.engine import ExecutionEngine
from ..sim.soc import SoC, xavier_nx_with_oakd
from .metrics import RunMetrics, aggregate
from .policy import Policy, RuntimeServices
from .records import RunResult
from .trace import ScenarioTrace, TraceCache


def run_policy(
    policy: Policy,
    trace: ScenarioTrace,
    soc: SoC | None = None,
    engine_seed: int = 1234,
) -> RunResult:
    """Run one policy over one traced scenario on a fresh platform.

    A new (or reset) SoC guarantees run isolation: no residual model
    residency, energy, or virtual time leaks between policies.
    """
    if soc is None:
        soc = xavier_nx_with_oakd()
    soc.reset()
    engine = ExecutionEngine(soc, seed=engine_seed)
    services = RuntimeServices(trace=trace, soc=soc, engine=engine)
    policy.begin(services)
    result = RunResult(policy_name=policy.name, scenario_name=trace.scenario.name)
    for frame in trace.frames:
        result.records.append(policy.step(frame))
    return result


def run_policy_on_scenarios(
    policy: Policy,
    scenarios: list[Scenario],
    zoo: ModelZoo,
    cache: TraceCache | None = None,
    engine_seed: int = 1234,
) -> list[RunMetrics]:
    """Run one policy across several scenarios; one metrics row each."""
    if cache is None:
        cache = TraceCache(zoo)
    metrics = []
    for scenario in scenarios:
        trace = cache.get(scenario)
        result = run_policy(policy, trace, engine_seed=engine_seed)
        metrics.append(aggregate(result))
    return metrics
