"""Run policies over scenarios and collect results."""

from __future__ import annotations

from collections.abc import Callable

from ..data.scenario import Scenario
from ..models.zoo import ModelZoo
from ..sim.engine import ExecutionEngine, PlannedExecutionEngine
from ..sim.soc import SoC, xavier_nx_with_oakd
from .metrics import RunMetrics
from ..core.policy import Policy, RuntimeServices
from ..core.records import RunResult
from .trace import ScenarioTrace, TraceCache


def run_policy(
    policy: Policy,
    trace: ScenarioTrace,
    soc: SoC | None = None,
    engine_seed: int = 1234,
    fast: bool = False,
) -> RunResult:
    """Run one policy over one traced scenario on a fresh platform.

    A new (or reset) SoC guarantees run isolation: no residual model
    residency, energy, or virtual time leaks between policies.

    ``fast=True`` selects the fast-run tier: the engine plans its jitter
    stream in segment batches (:class:`PlannedExecutionEngine`) and
    fast-aware policies serve context signals from trace-level caches and
    vectorized scheduling.  Records are bit-identical to the default
    (reference) path — ``repro.verify.differential``'s ``fastrun`` check
    proves it per scenario.
    """
    if soc is None:
        soc = xavier_nx_with_oakd()
    soc.reset()
    engine_cls = PlannedExecutionEngine if fast else ExecutionEngine
    engine = engine_cls(soc, seed=engine_seed)
    services = RuntimeServices(trace=trace, soc=soc, engine=engine, fast=fast)
    policy.begin(services)
    result = RunResult(policy_name=policy.name, scenario_name=trace.scenario.name)
    for frame in trace.frames:
        result.records.append(policy.step(frame))
    return result


def run_policy_on_scenarios(
    policy: Policy,
    scenarios: list[Scenario],
    zoo: ModelZoo,
    cache: TraceCache | None = None,
    engine_seed: int = 1234,
    soc: SoC | Callable[[], SoC] | None = None,
    max_workers: int | None = None,
) -> list[RunMetrics]:
    """Run one policy across several scenarios; one metrics row each.

    ``soc`` may be a platform instance (reset before every run) or a
    zero-argument factory; without it every run gets a fresh default
    Xavier-NX+OAK-D.  ``max_workers`` > 1 builds missing traces across
    worker processes.  Thin wrapper over
    :class:`~repro.runtime.experiment.ExperimentRunner` — use that
    directly for multi-policy sweeps and persistent trace stores.
    """
    from .experiment import ExperimentRunner  # local import: avoids a cycle

    runner = ExperimentRunner(
        cache=cache if cache is not None else TraceCache(zoo, max_workers=max_workers),
        max_workers=max_workers,
        engine_seed=engine_seed,
        soc=soc,
    )
    return runner.run_policy_on_scenarios(policy, scenarios)
