"""Scenario traces: precomputed detection outcomes for every model.

A :class:`ScenarioTrace` materializes a scenario's frames once and runs
every model of the zoo on every frame.  Detection outcomes are pure
functions of (model, frame) — accelerators change timing and energy, never
boxes — so the trace lets oracle baselines (which need *all* models' results
per frame) and repeated policy runs share the expensive part.  Policies
only *observe* the outcomes of inferences they actually execute and pay
for; the trace is a cache, not an information leak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.generator import Frame, render_scenario
from ..data.scenario import Scenario
from ..models.detector import DetectionOutcome, detect
from ..models.zoo import ModelZoo


@dataclass
class ScenarioTrace:
    """Frames of one scenario plus per-model detection outcomes."""

    scenario: Scenario
    frames: list[Frame]
    outcomes: dict[str, list[DetectionOutcome]]

    @classmethod
    def build(cls, scenario: Scenario, zoo: ModelZoo) -> "ScenarioTrace":
        """Render the scenario and run every model on every frame."""
        frames = render_scenario(scenario)
        outcomes: dict[str, list[DetectionOutcome]] = {}
        for spec in zoo:
            outcomes[spec.name] = [
                detect(spec, frame.scene, (scenario.seed, frame.index)) for frame in frames
            ]
        return cls(scenario=scenario, frames=frames, outcomes=outcomes)

    def outcome(self, model_name: str, frame_index: int) -> DetectionOutcome:
        """The outcome ``model_name`` produces on frame ``frame_index``."""
        try:
            per_model = self.outcomes[model_name]
        except KeyError:
            known = ", ".join(sorted(self.outcomes))
            raise KeyError(f"no trace for model {model_name!r}; traced: {known}") from None
        return per_model[frame_index]

    def model_names(self) -> list[str]:
        """Models covered by this trace."""
        return list(self.outcomes)

    @property
    def frame_count(self) -> int:
        """Number of frames in the scenario."""
        return len(self.frames)


class TraceCache:
    """Process-level cache of built traces, keyed by scenario identity."""

    def __init__(self, zoo: ModelZoo) -> None:
        self.zoo = zoo
        self._traces: dict[tuple[str, int], ScenarioTrace] = {}

    def get(self, scenario: Scenario) -> ScenarioTrace:
        """Build (or reuse) the trace for ``scenario``."""
        key = (scenario.name, scenario.total_frames)
        if key not in self._traces:
            self._traces[key] = ScenarioTrace.build(scenario, self.zoo)
        return self._traces[key]

    def __len__(self) -> int:
        return len(self._traces)
