"""Scenario traces: precomputed detection outcomes for every model.

A :class:`ScenarioTrace` materializes a scenario's frames once and runs
every model of the zoo on every frame.  Detection outcomes are pure
functions of (model, frame) — accelerators change timing and energy, never
boxes — so the trace lets oracle baselines (which need *all* models' results
per frame) and repeated policy runs share the expensive part.  Policies
only *observe* the outcomes of inferences they actually execute and pay
for; the trace is a cache, not an information leak.

Building a trace is the repo's hottest path (every model on every frame,
thousands of frames per scenario).  Two engines keep it fast:

* the **batched detection kernel** (:class:`~repro.models.detector.SceneBatch`
  + :func:`~repro.models.detector.detect_batch`) materializes every model's
  noise/quality/confidence streams as arrays across all frames, bit-identical
  to scalar :func:`~repro.models.detector.detect`;
* the **segment-batched renderer** behind
  :func:`~repro.data.generator.render_scenario` stacks each segment's
  pixels in one pass.

Because outcomes depend only on the latent scene state — never on rendered
pixels — the model sweep can additionally fan out across worker processes
while the parent renders frames: pass ``max_workers`` to
:meth:`ScenarioTrace.build` or :class:`TraceCache`.  Workers only pay off
once each carries enough model-frames to amortize process startup and
scene pickling; below :data:`MIN_MODEL_FRAMES_PER_WORKER` per worker the
build silently falls back to fewer workers (or serial), so a parallel
build is never slower than a serial one.

Frames are **lazy**: a trace loaded from the on-disk store (or a worker
that only reads outcomes) never renders pixels; the first ``.frames``
access renders on demand.  :class:`TraceCache` keys by the scenario's
content fingerprint (never by name/length, which collide) and can back
onto an on-disk :class:`~repro.runtime.store.TraceStore` so repeated
invocations skip the build entirely.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from ..data.generator import Frame, render_scenario, scenario_scenes
from ..data.scenario import Scenario
from ..data.scene import SceneState
from ..models.detector import DetectionOutcome, SceneBatch, detect_batch
from ..models.spec import ModelSpec
from ..models.zoo import ModelZoo
from ..vision.ncc import box_ncc, stacked_ncc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .store import TraceStore

# Fewer model-frames per worker than this and process startup + scene
# pickling outweigh the batched sweep itself; the build then uses fewer
# workers (possibly one).  Calibrated on the trace-build micro-benchmark:
# a worker clears ~25k model-frames/s, so 6000 model-frames ≈ 0.25 s of
# compute against ~0.1 s of fixed per-worker overhead.
MIN_MODEL_FRAMES_PER_WORKER = 6000


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _effective_workers(requested: int | None, task_cap: int, model_frames: int) -> int:
    """How many workers a trace-build fan-out should actually use.

    Caps the requested worker count by ``task_cap`` — the finest possible
    task granularity (models for one build; models x scenarios for a
    multi-scenario warm-up) — by the total ``model_frames`` volume, so
    each worker keeps at least :data:`MIN_MODEL_FRAMES_PER_WORKER`
    model-frames and small builds never fragment the batched sweep across
    a pool that costs more than it saves, and by the CPUs actually
    available (on a one-core host, worker processes only time-slice the
    serial path and lose).
    """
    if requested is None or requested <= 1:
        return 1
    by_volume = model_frames // MIN_MODEL_FRAMES_PER_WORKER
    return max(1, min(requested, task_cap, by_volume, _available_cpus()))


def _outcomes_for_specs(
    scenario_seed: int, scenes: list[SceneState], specs: list[ModelSpec]
) -> dict[str, list[DetectionOutcome]]:
    """Batched detection outcomes of ``specs`` over the given scene states.

    Module-level so worker processes can unpickle it.  Scene states are
    computed once in the parent and shipped (they are small — no pixels),
    which keeps workers independent of parent-process state like
    runtime-registered backgrounds (a spawn-start worker would not see
    those if it re-derived scenes from the scenario itself).  One
    :class:`SceneBatch` per call amortizes the shared per-frame precompute
    (truth boxes, difficulty, shared scene noise) across the whole chunk.
    """
    batch = SceneBatch(scenes, scenario_seed)
    return {spec.name: detect_batch(spec, batch) for spec in specs}


def _spec_chunks(specs: list[ModelSpec], chunk_count: int) -> list[list[ModelSpec]]:
    """Split specs into at most ``chunk_count`` balanced, order-preserving chunks."""
    chunk_count = max(1, min(chunk_count, len(specs)))
    chunks: list[list[ModelSpec]] = [[] for _ in range(chunk_count)]
    for i, spec in enumerate(specs):
        chunks[i % chunk_count].append(spec)
    return chunks


class ScenarioTrace:
    """Frames of one scenario plus per-model detection outcomes.

    ``frames`` may be ``None``: outcome-only consumers (metrics, tables,
    oracle baselines reading persisted traces) then never pay for
    rendering; the first ``.frames`` access renders lazily and caches.

    ``outcomes`` may likewise be deferred: pass ``outcomes_loader`` (a
    zero-argument callable) instead and the per-model outcome lists are
    materialized on first ``.outcomes`` access.  That is what makes the
    binary column store fast to open — loading a trace parses a few-KiB
    header for identity checks; the column payload is only decoded into
    :class:`~repro.models.detector.DetectionOutcome` rows if something
    actually consumes them.
    """

    def __init__(
        self,
        scenario: Scenario,
        frames: list[Frame] | None = None,
        outcomes: dict[str, list[DetectionOutcome]] | None = None,
        outcomes_loader: "callable | None" = None,
    ) -> None:
        if outcomes is None and outcomes_loader is None:
            raise ValueError("a trace needs per-model outcomes (or a loader for them)")
        self.scenario = scenario
        self._outcomes = outcomes
        self._outcomes_loader = outcomes_loader
        self._frames = frames
        self._frame_ncc: np.ndarray | None = None
        self._box_ncc: dict[tuple[str, int], float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = "rendered" if self._frames is not None else "lazy"
        if self._outcomes is None:
            models = "outcomes lazy"
        else:
            models = f"{len(self._outcomes)} models"
        return (
            f"ScenarioTrace({self.scenario.name!r}, {self.frame_count} frames "
            f"[{rendered}], {models})"
        )

    @property
    def outcomes(self) -> dict[str, list[DetectionOutcome]]:
        """Per-model outcome lists, materialized on first access."""
        if self._outcomes is None:
            self._outcomes = self._outcomes_loader()
        return self._outcomes

    @property
    def outcomes_materialized(self) -> bool:
        """True once outcomes have been decoded (or were supplied at build)."""
        return self._outcomes is not None

    @classmethod
    def build(
        cls,
        scenario: Scenario,
        zoo: ModelZoo,
        max_workers: int | None = None,
    ) -> "ScenarioTrace":
        """Render the scenario and run every model on every frame.

        With ``max_workers`` > 1 the per-model detection sweeps run in
        worker processes while the parent renders frames; results are
        bit-identical to the serial path (detection is deterministic and
        independent of rendering).  Small builds ignore the worker request
        (see :func:`_effective_workers`) rather than paying pool overhead
        that exceeds the sweep itself.
        """
        workers = _effective_workers(max_workers, len(zoo), len(zoo) * scenario.total_frames)
        if workers > 1:
            specs = zoo.specs()
            chunks = _spec_chunks(specs, workers)
            scenes = scenario_scenes(scenario)
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(_outcomes_for_specs, scenario.seed, scenes, chunk)
                    for chunk in chunks
                ]
                # Overlap the (serial) rendering with the workers' sweeps.
                frames = render_scenario(scenario)
                merged: dict[str, list[DetectionOutcome]] = {}
                for future in futures:
                    merged.update(future.result())
            # Preserve zoo registration order regardless of chunk layout.
            outcomes = {spec.name: merged[spec.name] for spec in specs}
            return cls(scenario=scenario, frames=frames, outcomes=outcomes)

        frames = render_scenario(scenario)
        batch = SceneBatch(
            [frame.scene for frame in frames],
            scenario.seed,
            truths=[frame.ground_truth for frame in frames],
            difficulties=[frame.difficulty for frame in frames],
        )
        outcomes = {spec.name: detect_batch(spec, batch) for spec in zoo}
        return cls(scenario=scenario, frames=frames, outcomes=outcomes)

    @property
    def frames(self) -> list[Frame]:
        """The rendered frames, materialized on first access."""
        if self._frames is None:
            self._frames = render_scenario(self.scenario)
        return self._frames

    @property
    def frames_materialized(self) -> bool:
        """True once pixels have been rendered (or were supplied at build)."""
        return self._frames is not None

    def consecutive_frame_ncc(self) -> np.ndarray:
        """Full-frame NCC between consecutive frames, computed once.

        The policy-independent half of the context-similarity signal (the
        box-local half depends on each policy's detections), served from
        the stacked NCC kernel and cached on the trace so repeated
        consumers — the scheduler-overhead benchmark, analyses over the
        same trace — pay for it once.
        """
        if self._frame_ncc is None:
            self._frame_ncc = stacked_ncc([frame.image for frame in self.frames])
        return self._frame_ncc

    def box_context_ncc(self, model_name: str, frame_index: int) -> float:
        """Box-local context similarity of one model's detection, memoized.

        The SHIFT context signal's box half compares the crop of the
        *previous* frame's detection box in that frame against the same
        box region in the next frame.  Because detection outcomes are pure
        functions of (model, frame), so is this value: it only depends on
        ``outcome(model_name, frame_index).box`` and frames
        ``frame_index``/``frame_index + 1`` — never on which policy asked.
        Memoizing it on the trace lets every run, policy variant, and
        sweep over the same trace share the crop/resize/NCC work, exactly
        as :meth:`consecutive_frame_ncc` shares the full-frame half.

        Bit-identical to :func:`repro.vision.ncc.box_ncc` on the same
        inputs (it *is* that call, cached).
        """
        key = (model_name, frame_index)
        value = self._box_ncc.get(key)
        if value is None:
            frames = self.frames
            box = self.outcome(model_name, frame_index).box
            value = box_ncc(
                frames[frame_index].image, box, frames[frame_index + 1].image, box
            )
            self._box_ncc[key] = value
        return value

    def outcome(self, model_name: str, frame_index: int) -> DetectionOutcome:
        """The outcome ``model_name`` produces on frame ``frame_index``."""
        try:
            per_model = self.outcomes[model_name]
        except KeyError:
            known = ", ".join(sorted(self.outcomes))
            raise KeyError(f"no trace for model {model_name!r}; traced: {known}") from None
        return per_model[frame_index]

    def model_names(self) -> list[str]:
        """Models covered by this trace."""
        return list(self.outcomes)

    @property
    def frame_count(self) -> int:
        """Number of frames in the scenario (available without rendering)."""
        if self._frames is not None:
            return len(self._frames)
        return self.scenario.total_frames


class TraceCache:
    """Cache of built traces, keyed by scenario content fingerprint.

    Keys are :meth:`~repro.data.scenario.Scenario.fingerprint` digests —
    two scenarios that merely share a name and frame count never collide.
    An optional :class:`~repro.runtime.store.TraceStore` adds an on-disk
    tier: misses load from disk before building, and fresh builds persist
    for the next process.  ``builds`` counts actual (expensive) builds, so
    callers can verify reuse.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        store: "TraceStore | None" = None,
        max_workers: int | None = None,
    ) -> None:
        self.zoo = zoo
        self.store = store
        self.max_workers = max_workers
        self.builds = 0
        self._traces: dict[str, ScenarioTrace] = {}

    def get(self, scenario: Scenario) -> ScenarioTrace:
        """Return the trace for ``scenario``: memory, then disk, then build."""
        key = scenario.fingerprint()
        trace = self._traces.get(key)
        if trace is None:
            if self.store is not None:
                trace = self.store.load(scenario, self.zoo)
            if trace is None:
                trace = ScenarioTrace.build(scenario, self.zoo, max_workers=self.max_workers)
                self.builds += 1
                if self.store is not None:
                    self.store.save(trace, self.zoo)
            self._traces[key] = trace
        return trace

    def put(self, trace: ScenarioTrace, persist: bool = True) -> None:
        """Insert an externally built trace.

        ``persist=False`` skips the store write — for traces that were
        just *loaded* from the store, where re-saving would pointlessly
        rewrite the file they came from.
        """
        key = trace.scenario.fingerprint()
        self._traces[key] = trace
        if persist and self.store is not None:
            self.store.save(trace, self.zoo)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario.fingerprint() in self._traces

    def __len__(self) -> int:
        return len(self._traces)
