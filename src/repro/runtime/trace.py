"""Scenario traces: precomputed detection outcomes for every model.

A :class:`ScenarioTrace` materializes a scenario's frames once and runs
every model of the zoo on every frame.  Detection outcomes are pure
functions of (model, frame) — accelerators change timing and energy, never
boxes — so the trace lets oracle baselines (which need *all* models' results
per frame) and repeated policy runs share the expensive part.  Policies
only *observe* the outcomes of inferences they actually execute and pay
for; the trace is a cache, not an information leak.

Building a trace is the repo's hottest path (every model on every frame,
thousands of frames per scenario).  Because outcomes depend only on the
latent scene state — never on rendered pixels — the model sweep can fan
out across worker processes while the parent renders frames: pass
``max_workers`` to :meth:`ScenarioTrace.build` or :class:`TraceCache`.
:class:`TraceCache` keys by the scenario's content fingerprint (never by
name/length, which collide) and can back onto an on-disk
:class:`~repro.runtime.store.TraceStore` so repeated invocations skip the
build entirely.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..data.generator import Frame, render_scenario, scenario_scenes
from ..data.scenario import Scenario
from ..data.scene import SceneState
from ..models.detector import DetectionOutcome, detect
from ..models.spec import ModelSpec
from ..models.zoo import ModelZoo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .store import TraceStore


def _outcomes_for_specs(
    scenario_seed: int, scenes: list[SceneState], specs: list[ModelSpec]
) -> dict[str, list[DetectionOutcome]]:
    """Detection outcomes of ``specs`` over the given scene states.

    Module-level so worker processes can unpickle it.  Scene states are
    computed once in the parent and shipped (they are small — no pixels),
    which keeps workers independent of parent-process state like
    runtime-registered backgrounds (a spawn-start worker would not see
    those if it re-derived scenes from the scenario itself).
    """
    return {
        spec.name: [detect(spec, scene, (scenario_seed, i)) for i, scene in enumerate(scenes)]
        for spec in specs
    }


def _spec_chunks(specs: list[ModelSpec], chunk_count: int) -> list[list[ModelSpec]]:
    """Split specs into at most ``chunk_count`` balanced, order-preserving chunks."""
    chunk_count = max(1, min(chunk_count, len(specs)))
    chunks: list[list[ModelSpec]] = [[] for _ in range(chunk_count)]
    for i, spec in enumerate(specs):
        chunks[i % chunk_count].append(spec)
    return chunks


@dataclass
class ScenarioTrace:
    """Frames of one scenario plus per-model detection outcomes."""

    scenario: Scenario
    frames: list[Frame]
    outcomes: dict[str, list[DetectionOutcome]]

    @classmethod
    def build(
        cls,
        scenario: Scenario,
        zoo: ModelZoo,
        max_workers: int | None = None,
    ) -> "ScenarioTrace":
        """Render the scenario and run every model on every frame.

        With ``max_workers`` > 1 the per-model detection sweeps run in
        worker processes while the parent renders frames; results are
        bit-identical to the serial path (detection is deterministic and
        independent of rendering).
        """
        if max_workers is not None and max_workers > 1 and len(zoo) > 1:
            specs = zoo.specs()
            chunks = _spec_chunks(specs, max_workers)
            scenes = scenario_scenes(scenario)
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(_outcomes_for_specs, scenario.seed, scenes, chunk)
                    for chunk in chunks
                ]
                # Overlap the (serial) rendering with the workers' sweeps.
                frames = render_scenario(scenario)
                merged: dict[str, list[DetectionOutcome]] = {}
                for future in futures:
                    merged.update(future.result())
            # Preserve zoo registration order regardless of chunk layout.
            outcomes = {spec.name: merged[spec.name] for spec in specs}
            return cls(scenario=scenario, frames=frames, outcomes=outcomes)

        frames = render_scenario(scenario)
        outcomes = {}
        for spec in zoo:
            outcomes[spec.name] = [
                detect(spec, frame.scene, (scenario.seed, frame.index)) for frame in frames
            ]
        return cls(scenario=scenario, frames=frames, outcomes=outcomes)

    def outcome(self, model_name: str, frame_index: int) -> DetectionOutcome:
        """The outcome ``model_name`` produces on frame ``frame_index``."""
        try:
            per_model = self.outcomes[model_name]
        except KeyError:
            known = ", ".join(sorted(self.outcomes))
            raise KeyError(f"no trace for model {model_name!r}; traced: {known}") from None
        return per_model[frame_index]

    def model_names(self) -> list[str]:
        """Models covered by this trace."""
        return list(self.outcomes)

    @property
    def frame_count(self) -> int:
        """Number of frames in the scenario."""
        return len(self.frames)


class TraceCache:
    """Cache of built traces, keyed by scenario content fingerprint.

    Keys are :meth:`~repro.data.scenario.Scenario.fingerprint` digests —
    two scenarios that merely share a name and frame count never collide.
    An optional :class:`~repro.runtime.store.TraceStore` adds an on-disk
    tier: misses load from disk before building, and fresh builds persist
    for the next process.  ``builds`` counts actual (expensive) builds, so
    callers can verify reuse.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        store: "TraceStore | None" = None,
        max_workers: int | None = None,
    ) -> None:
        self.zoo = zoo
        self.store = store
        self.max_workers = max_workers
        self.builds = 0
        self._traces: dict[str, ScenarioTrace] = {}

    def get(self, scenario: Scenario) -> ScenarioTrace:
        """Return the trace for ``scenario``: memory, then disk, then build."""
        key = scenario.fingerprint()
        trace = self._traces.get(key)
        if trace is None:
            if self.store is not None:
                trace = self.store.load(scenario, self.zoo)
            if trace is None:
                trace = ScenarioTrace.build(scenario, self.zoo, max_workers=self.max_workers)
                self.builds += 1
                if self.store is not None:
                    self.store.save(trace, self.zoo)
            self._traces[key] = trace
        return trace

    def put(self, trace: ScenarioTrace, persist: bool = True) -> None:
        """Insert an externally built trace.

        ``persist=False`` skips the store write — for traces that were
        just *loaded* from the store, where re-saving would pointlessly
        rewrite the file they came from.
        """
        key = trace.scenario.fingerprint()
        self._traces[key] = trace
        if persist and self.store is not None:
            self.store.save(trace, self.zoo)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario.fingerprint() in self._traces

    def __len__(self) -> int:
        return len(self._traces)
