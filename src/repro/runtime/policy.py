"""Compatibility shim: the policy protocol moved to :mod:`repro.core.policy`.

The ``Policy`` ABC and :class:`RuntimeServices` are implemented by ``core``
and ``baselines``, both of which sit *below* ``runtime`` in the layer
order — so the definitions live in ``core`` and this module just
re-exports them for existing ``repro.runtime.policy`` importers.
"""

from ..core.policy import Policy, RuntimeServices

__all__ = ["Policy", "RuntimeServices"]
