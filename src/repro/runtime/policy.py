"""Policy protocol: how continuous-detection strategies plug into the runner.

A policy processes frames one at a time against a set of runtime services
(the SoC, its execution engine, and the scenario trace that stands in for
real camera frames + real inference).  SHIFT, the single-model baselines,
Marlin, and the Oracles all implement this interface, so the runner and the
metric pipeline treat them identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..data.generator import Frame
from ..sim.engine import ExecutionEngine
from ..sim.soc import SoC
from .records import FrameRecord
from .trace import ScenarioTrace


@dataclass
class RuntimeServices:
    """Everything a policy may touch while running a scenario."""

    trace: ScenarioTrace
    soc: SoC
    engine: ExecutionEngine


class Policy(ABC):
    """A continuous object-detection strategy."""

    #: Human-readable policy name used in tables and plots.
    name: str = "policy"

    @abstractmethod
    def begin(self, services: RuntimeServices) -> None:
        """Reset internal state for a fresh run over one scenario."""

    @abstractmethod
    def step(self, frame: Frame) -> FrameRecord:
        """Process one frame and account for its time and energy."""
