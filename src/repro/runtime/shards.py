"""Sharded store layout: fingerprint-prefix shards, indexes, advisory locks.

The service tier (:mod:`repro.service`) points N worker threads and M
concurrent requests at one :class:`~repro.runtime.store.TraceStore` /
:class:`~repro.runtime.runstore.RunStore` pair, and CI points several
*processes* at the same directories.  A single flat directory survives
that only by luck: every writer renames into one namespace, every ``len``
scans every entry, and a crashed writer's temp file sits around forever.
This module gives both stores one shared on-disk discipline:

**Shards.**  Every entry lives under ``root/<prefix>/`` where ``prefix``
is the first :data:`SHARD_PREFIX_CHARS` hex chars of the entry's content
digest (scenario fingerprint for traces, run-key digest for runs).
Contention and directory size split 256 ways; a shard is the unit of
locking.

**Per-shard index.**  Each shard carries an ``index.json`` mapping entry
file names to their identity block (the fingerprints the entry was keyed
by).  Tools can enumerate a store's contents — and audit that every
indexed entry still parses — without opening every payload.

**Advisory locks.**  All mutations (entry writes, removals, stale-temp
cleanup, legacy migration) happen under an ``fcntl`` advisory lock on the
shard's ``.lock`` file, so concurrent writers serialize per shard and an
index update can never lose a racing writer's entry.  Readers never need
the lock: entry writes stay atomic (temp file + ``os.replace``), so a
reader sees either the old complete file or the new complete one.

**Crash consistency.**  A writer killed mid-write leaves ``*.tmp*`` files
behind; :func:`clean_stale_temps` removes them under the shard locks at
store open.  Temp files can never be served as hits (lookups only probe
the final name), and because cleanup holds the same lock writers hold, a
*live* writer's temp file is never swept — anything visible under the
lock is by definition abandoned.

**Fault discipline.**  Every durable write and rename here routes through
:mod:`repro.runtime.iolayer` (the ``locks/io-seam`` lint rule enforces
it), which retries transient capacity errors, raises a typed
:exc:`~repro.runtime.iolayer.StoreDegraded` once a root is out of space,
and hosts the deterministic fault plan the ``fsfaults`` check arms.
Corrupt entries are moved into ``root/_quarantine/`` (a rename needs no
data blocks, so quarantine works even on a full disk) rather than
deleted, so torn bytes stay inspectable; skipped paths and read errors
are counted per root in ``iolayer.io_error_count`` instead of being
silently dropped.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator

from ..util import jsonsafe
from . import colfmt, iolayer

# Re-exported here for lower-tier sharing (characterization); store-tier
# code routes writes through `iolayer` instead (the io-seam rule flags
# direct calls in this package).
from ..util.atomicio import atomic_write_json as atomic_write_json
from ..util.atomicio import atomic_write_text as atomic_write_text

try:  # pragma: no cover - always available on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: in-process only
    fcntl = None

# Hex chars of the content digest that name an entry's shard (256 shards).
SHARD_PREFIX_CHARS = 2

INDEX_NAME = "index.json"
INDEX_SCHEMA_VERSION = 1

#: Corrupt entries are moved here (under the store root), never deleted:
#: torn bytes are evidence, and a rename works even on a full disk.
QUARANTINE_DIR = "_quarantine"

# One process-local mutex per lock file: fcntl locks are held per process
# (re-acquiring in another thread of the same process would succeed), so
# thread-level serialization needs its own layer.
_THREAD_LOCKS: dict[str, threading.Lock] = {}
_THREAD_LOCKS_GUARD = threading.Lock()  # repro: guards[_THREAD_LOCKS]


def shard_prefix(digest: str) -> str:
    """The shard an entry with ``digest`` belongs to."""
    if len(digest) < SHARD_PREFIX_CHARS:
        raise ValueError(f"digest {digest!r} is too short to shard")
    return digest[:SHARD_PREFIX_CHARS]


def shard_dir(root: Path, digest: str) -> Path:
    """The shard directory for ``digest`` under ``root`` (not created)."""
    return root / shard_prefix(digest)


def shard_dirs(root: Path) -> list[Path]:
    """Every existing shard directory under ``root``, sorted."""
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.is_dir() and len(p.name) == SHARD_PREFIX_CHARS
        and all(c in "0123456789abcdef" for c in p.name)
    )


def _thread_lock_for(path: Path) -> threading.Lock:
    key = str(path)
    with _THREAD_LOCKS_GUARD:
        lock = _THREAD_LOCKS.get(key)
        if lock is None:
            lock = _THREAD_LOCKS[key] = threading.Lock()
        return lock


@contextmanager
def shard_lock(shard: Path) -> Iterator[None]:
    """Hold the shard's advisory lock (exclusive, blocking).

    Serializes against other *processes* via ``fcntl.flock`` on the
    shard's ``.lock`` file and against other *threads* of this process
    via a per-path mutex (POSIX locks are per-process, not per-thread).
    The shard directory is created on first use.
    """
    shard.mkdir(parents=True, exist_ok=True)
    lock_path = shard / ".lock"
    with _thread_lock_for(lock_path):
        handle = iolayer.open_lock_file(lock_path)
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()


def _replace_atomically(shard: Path, name: str, data: str | bytes) -> Path:
    # `shard.parent` IS the store root: shards are its direct children,
    # so degraded-mode accounting lands on the store, not the shard.
    if isinstance(data, (bytes, bytearray, memoryview)):
        return iolayer.write_bytes(shard / name, bytes(data), root=shard.parent)
    return iolayer.write_text(shard / name, data, root=shard.parent)


def _patterns(pattern: str | tuple[str, ...]) -> tuple[str, ...]:
    """Normalize the single-glob / glob-tuple pattern argument."""
    return (pattern,) if isinstance(pattern, str) else tuple(pattern)


def read_index(shard: Path) -> dict[str, dict]:
    """The shard's index entries (``{}`` for a missing or unreadable index).

    An unreadable index never blocks the store — entry files are the
    ground truth; the index is regenerated entry-by-entry as writes land.
    """
    path = shard / INDEX_NAME
    try:
        payload = json.loads(iolayer.read_text(path, root=shard.parent))
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(payload, dict) or payload.get("schema_version") != INDEX_SCHEMA_VERSION:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _write_index(shard: Path, entries: dict[str, dict]) -> None:
    text = jsonsafe.dumps(
        {"schema_version": INDEX_SCHEMA_VERSION, "entries": entries},
        sort_keys=True,
    )
    _replace_atomically(shard, INDEX_NAME, text)


def write_index_locked(shard: Path, entries: dict[str, dict]) -> None:
    """Rewrite a shard's index wholesale (callers hold the shard lock).

    The maintenance tier's primitive: repair passes rebuild the entry map
    and commit it in one atomic write.
    """
    _write_index(shard, entries)


def write_entry(
    root: Path,
    digest: str,
    name: str,
    data: str | bytes,
    meta: dict,
    *,
    supersedes: tuple[str, ...] = (),
) -> Path:
    """Atomically persist one entry and record it in the shard index.

    Runs entirely under the shard lock: the entry write is temp +
    ``os.replace`` (readers never see a torn file even without the lock),
    and the index read-modify-write is protected against concurrent
    writers of *other* entries in the same shard.  ``supersedes`` names
    sibling files this write replaces — the same logical entry under its
    other format's name — removed under the same lock acquisition so a
    store can never serve a stale twin.
    """
    shard = shard_dir(root, digest)
    with shard_lock(shard):
        return write_entry_locked(shard, name, data, meta, supersedes=supersedes)


def write_entry_locked(
    shard: Path,
    name: str,
    data: str | bytes,
    meta: dict,
    *,
    supersedes: tuple[str, ...] = (),
) -> Path:
    """Entry write + index update for callers already holding the shard lock.

    The job queue's claim sweep mutates several entries per shard under
    one lock acquisition; re-entering :func:`shard_lock` per entry would
    deadlock on the per-path thread mutex (it is not reentrant), so the
    multi-entry paths compose this primitive instead.
    """
    path = _replace_atomically(shard, name, data)
    entries = read_index(shard)
    entries[name] = meta
    for stale in supersedes:
        if stale == name:
            continue
        try:
            (shard / stale).unlink(missing_ok=True)
        except OSError:
            # The new entry is durable regardless; the surviving twin is
            # de-indexed below so repair can reclaim it as an orphan.
            iolayer.record_io_error(shard.parent)
        entries.pop(stale, None)
    _write_index(shard, entries)
    return path


def update_entry(
    root: Path, digest: str, name: str, mutate: "callable"
) -> dict | None:
    """Read-modify-write one entry atomically under the shard lock.

    Loads the current payload (``None`` when the entry is missing or
    unparseable), passes it to ``mutate(payload) -> dict | None``, and —
    when ``mutate`` returns a dict — writes it back atomically and
    refreshes the index record's existing metadata.  Returning ``None``
    from ``mutate`` leaves the entry untouched (compare-and-swap failure).
    Returns whatever ``mutate`` returned.  The whole cycle holds the shard
    lock, so two concurrent updates serialize and neither loses a write.
    """
    shard = shard_dir(root, digest)
    with shard_lock(shard):
        path = shard / name
        try:
            payload = json.loads(iolayer.read_text(path, root=root))
            if not isinstance(payload, dict):
                payload = None
        except (OSError, json.JSONDecodeError):
            payload = None
        updated = mutate(payload)
        if updated is None:
            return None
        _replace_atomically(shard, name, jsonsafe.dumps(updated, sort_keys=True))
        entries = read_index(shard)
        if name not in entries:
            entries[name] = {}
        _write_index(shard, entries)
        return updated


def remove_entry(root: Path, digest: str, name: str) -> bool:
    """Delete one entry (file + index record); True if the file existed."""
    shard = shard_dir(root, digest)
    with shard_lock(shard):
        return remove_entry_locked(shard, name)


def remove_entry_locked(shard: Path, name: str) -> bool:
    path = shard / name
    existed = path.exists()
    if existed:
        path.unlink()
    entries = read_index(shard)
    if name in entries:
        del entries[name]
        _write_index(shard, entries)
    return existed


def quarantine_corrupt_entry(root: Path, digest: str, name: str) -> bool:
    """Quarantine an entry that failed to parse — unless a writer fixed it.

    Returns True when the entry was (still) corrupt and has been moved to
    ``root/_quarantine`` (its torn bytes preserved for inspection, never
    again servable), False when a concurrent writer replaced it with a
    parseable payload in the meantime (the caller should then retry its
    load).  Runs under the shard lock so the check-and-move cannot race a
    live writer.

    Only genuine *parse* failures (of either format) quarantine.  An
    ``OSError`` out of the re-read means the entry is *unavailable*, not
    provably corrupt — quarantining on that evidence is how a transient
    ``EIO`` used to destroy valid entries — so it is counted and reported
    as False (the caller already treated its own read error as a miss).
    """
    shard = shard_dir(root, digest)
    with shard_lock(shard):
        path = shard / name
        corrupt = False
        try:
            payload = colfmt.load_entry_payload(path, root=root)
            corrupt = not isinstance(payload, dict)
        except FileNotFoundError:
            return False  # already gone: someone else cleaned it
        except colfmt.PARSE_ERRORS:
            corrupt = True  # unparseable is exactly the state to remove
        except OSError:
            # Unreadable ≠ corrupt: the seam already counted the retries;
            # leave the entry for a later read to vindicate or convict.
            return False
        if not corrupt:
            return False  # repaired behind our back — not corrupt anymore
        quarantine_entry_locked(root, shard, name)
        return True


def quarantine_entry_locked(root: Path, shard: Path, name: str) -> bool:
    """Move one entry into ``root/_quarantine`` and drop its index record.

    For callers already holding the shard lock.  The move is a same-
    filesystem rename (allocates no data blocks, so it works under
    ENOSPC); if even that fails the file is unlinked instead — serving
    corrupt bytes is the one unacceptable outcome.  True when the entry
    file existed.
    """
    path = shard / name
    existed = path.exists()
    if existed:
        target_dir = root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            iolayer.replace(path, target_dir / f"{shard.name}-{name}", root=root)
        except (OSError, iolayer.StoreError):
            iolayer.record_io_error(root)
            path.unlink(missing_ok=True)
    entries = read_index(shard)
    if name in entries:
        del entries[name]
        _write_index(shard, entries)
    return existed


def clean_stale_temps(root: Path) -> int:
    """Remove abandoned ``*.tmp*`` files left by killed writers.

    Sweeps the root (legacy flat layout) and every shard, taking each
    shard's lock first: a temp file observed *while holding the lock*
    cannot belong to a live writer, so everything swept is a crash
    leftover.  Returns how many files were removed.  Paths that cannot
    be scanned or unlinked are *not* silently dropped: each failure is
    counted in ``iolayer.io_error_count(root)`` and the sweep moves on —
    a stale temp is cosmetic, an uncounted I/O error is not.
    """
    removed = 0
    if not root.is_dir():
        return 0
    for stale in _scan_or_count(root, "*.tmp*", root):
        removed += _unlink_or_count(stale, root)
    for shard in shard_dirs(root):
        with shard_lock(shard):
            for stale in _scan_or_count(shard, "*.tmp*", root):
                removed += _unlink_or_count(stale, root)
    return removed


def _scan_or_count(directory: Path, pattern: str, root: Path) -> list[Path]:
    """A seam scan that degrades to an empty listing, counting the error."""
    try:
        return iolayer.scan(directory, pattern, root=root)
    except OSError:
        # Already counted by the seam's retry loop; an unscannable
        # directory just contributes nothing to this sweep.
        return []


def _unlink_or_count(stale: Path, root: Path) -> int:
    """Unlink one stale temp; 1 when removed, 0 (counted) when skipped."""
    try:
        stale.unlink(missing_ok=True)
    except OSError:
        iolayer.record_io_error(root)
        return 0
    return 1


def migrate_flat_entries(
    root: Path, pattern: str, digest_for: "callable", meta_for: "callable"
) -> int:
    """Move legacy flat-layout entries into their shards; returns the count.

    ``digest_for(path) -> str | None`` names the shard digest for a legacy
    file (None skips it); ``meta_for(path) -> dict | None`` supplies its
    index record (None marks the file unreadable — it is removed rather
    than migrated, since a flat corrupt file would otherwise survive every
    later audit).  Idempotent and concurrency-safe: the actual move runs
    under the target shard's lock and tolerates the file having been
    migrated by another opener meanwhile.
    """
    migrated = 0
    if not root.is_dir():
        return 0
    for path in sorted(root.glob(pattern)):
        if not path.is_file() or ".tmp" in path.name:
            continue
        digest = digest_for(path)
        if digest is None:
            continue
        shard = shard_dir(root, digest)
        with shard_lock(shard):
            if not path.exists():  # another opener migrated it first
                continue
            meta = meta_for(path)
            if meta is None:
                path.unlink()
                continue
            target = shard / path.name
            # The legacy file is already fully written, so moving it into
            # its shard needs no temp — the seam's rename is enough.
            iolayer.replace(path, target, root=root)
            entries = read_index(shard)
            entries[path.name] = meta
            _write_index(shard, entries)
            migrated += 1
    return migrated


def iter_entry_paths(root: Path, pattern: str | tuple[str, ...]) -> Iterator[Path]:
    """Every entry file matching ``pattern`` (shards first, then legacy root).

    ``pattern`` may be a tuple of globs — entries come in two formats
    (``.json`` / ``.col``) and a bare ``prefix-*`` glob would also match
    in-flight ``*.tmp*`` files.
    """
    patterns = _patterns(pattern)
    for shard in shard_dirs(root):
        yield from sorted({p for glob in patterns for p in shard.glob(glob)})
    if root.is_dir():
        yield from sorted(
            {p for glob in patterns for p in root.glob(glob) if p.is_file()}
        )


def audit_entries(root: Path, pattern: str | tuple[str, ...]) -> tuple[int, list[str]]:
    """Audit a store: every indexed entry must exist and parse in its format.

    Returns ``(entries_checked, problems)`` where ``problems`` is a list of
    human-readable findings: indexed-but-missing files, unparseable
    payloads, and files present on disk but absent from their shard index.
    A clean store returns ``(n, [])``.  Both entry formats are parsed via
    :func:`repro.runtime.colfmt.load_entry_payload`.
    """
    patterns = _patterns(pattern)
    problems: list[str] = []
    checked = 0
    for shard in shard_dirs(root):
        indexed = read_index(shard)
        on_disk = {
            p.name
            for glob in patterns
            for p in shard.glob(glob)
            if ".tmp" not in p.name
        }
        for name in sorted(indexed):
            checked += 1
            path = shard / name
            if name not in on_disk:
                problems.append(f"{shard.name}/{name}: indexed but missing on disk")
                continue
            try:
                payload = colfmt.load_entry_payload(path, root=root)
            except (OSError, *colfmt.PARSE_ERRORS) as exc:
                problems.append(f"{shard.name}/{name}: unreadable ({exc})")
                continue
            if not isinstance(payload, dict):
                problems.append(f"{shard.name}/{name}: not a JSON object")
        for name in sorted(on_disk - set(indexed)):
            problems.append(f"{shard.name}/{name}: on disk but not indexed")
    return checked, problems
