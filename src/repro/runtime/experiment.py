"""Persistent, parallel experiment runner.

Everything that reruns policies over scenarios — the paper tables and
figures, the CLI, the benchmark harness — funnels through
:class:`ExperimentRunner`.  It owns the trace tier (a fingerprint-keyed
:class:`~repro.runtime.trace.TraceCache`, optionally backed by an on-disk
:class:`~repro.runtime.store.TraceStore`) and the process pool, so callers
get three things for free:

* **reuse** — a second invocation with the same store rebuilds nothing;
* **parallelism** — trace builds fan out per (scenario, model-chunk), and
  sweeps can run whole (policy, scenario) pairs in worker processes;
* **determinism** — results are bit-identical to the serial path (every
  stochastic draw is seeded by content, never by scheduling).

A sweep's platform comes from ``soc``: a zero-argument factory (fresh SoC
per run — required for parallel runs, which execute in other processes) or
a single :class:`~repro.sim.soc.SoC` instance reset before each run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from ..data.generator import render_scenario, scenario_scenes
from ..data.scenario import Scenario
from ..models.zoo import ModelZoo, default_zoo
from ..sim.soc import SoC
from .metrics import RunMetrics, aggregate
from .policy import Policy
from .records import RunResult
from .runner import run_policy
from .store import TraceStore
from .trace import (
    ScenarioTrace,
    TraceCache,
    _effective_workers,
    _outcomes_for_specs,
    _spec_chunks,
)

SocLike = SoC | Callable[[], SoC] | None


# Per-worker-process trace memo: a worker that runs several (policy,
# scenario) pairs for the same scenario loads/renders the trace once, not
# once per pair.  Keyed by (store root, scenario, zoo) fingerprints.
_WORKER_TRACES: dict[tuple[str, str, str], ScenarioTrace] = {}


def _run_pair_in_worker(
    policy: Policy,
    scenario: Scenario,
    zoo: ModelZoo,
    store_root: str,
    engine_seed: int,
    soc_factory: Callable[[], SoC] | None,
) -> RunMetrics:
    """Run one (policy, scenario) pair in a worker process.

    The trace comes from the shared store (guaranteed warm — the parent
    builds all traces before dispatching pairs), so workers never repeat
    the zoo sweep; module-level for picklability.
    """
    key = (store_root, scenario.fingerprint(), zoo.fingerprint())
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        trace = TraceStore(store_root).get(scenario, zoo)
        _WORKER_TRACES[key] = trace
    soc = soc_factory() if soc_factory is not None else None
    return aggregate(run_policy(policy, trace, soc=soc, engine_seed=engine_seed))


class ExperimentRunner:
    """Builds traces (in parallel, persistently) and sweeps policies over them.

    Parameters mirror the trace tier: ``store`` persists traces across
    processes, ``max_workers`` bounds the process pool (None or 1 = serial),
    ``engine_seed`` seeds every run's execution engine, and ``soc`` supplies
    the platform (factory or instance; default is a fresh Xavier-NX+OAK-D
    per run).  An existing :class:`TraceCache` can be passed instead of a
    zoo to share warm traces with other components.
    """

    def __init__(
        self,
        zoo: ModelZoo | None = None,
        *,
        cache: TraceCache | None = None,
        store: TraceStore | None = None,
        max_workers: int | None = None,
        engine_seed: int = 1234,
        soc: SocLike = None,
    ) -> None:
        if cache is None:
            cache = TraceCache(zoo if zoo is not None else default_zoo(), store=store,
                               max_workers=max_workers)
        else:
            if zoo is not None and zoo is not cache.zoo:
                raise ValueError("pass either a zoo or a cache built from it, not both")
            if store is not None and store is not cache.store:
                raise ValueError(
                    "pass either a store or a cache built on it, not both "
                    "(the cache's store is the one that would be used)"
                )
        self.cache = cache
        self.max_workers = max_workers if max_workers is not None else cache.max_workers
        self.engine_seed = engine_seed
        self.soc = soc

    @property
    def zoo(self) -> ModelZoo:
        """The model zoo traces are built against."""
        return self.cache.zoo

    @property
    def store(self) -> TraceStore | None:
        """The on-disk trace tier, if any."""
        return self.cache.store

    def _fresh_soc(self) -> SoC | None:
        if callable(self.soc):
            return self.soc()
        return self.soc  # an instance (reset by run_policy) or None

    # ------------------------------------------------------------ traces

    def trace(self, scenario: Scenario) -> ScenarioTrace:
        """The trace for one scenario (memory → store → build)."""
        return self.cache.get(scenario)

    def build_traces(self, scenarios: Sequence[Scenario]) -> list[ScenarioTrace]:
        """Warm the cache for every scenario, fanning builds across workers.

        Tasks are (scenario, model-chunk) detection sweeps — fine-grained
        enough to balance scenarios of very different lengths — while the
        parent renders frames.  Scenarios already in memory or on disk are
        skipped entirely.
        """
        missing = []
        seen: set[str] = set()
        for scenario in scenarios:
            if scenario.fingerprint() in seen or scenario in self.cache:
                continue
            if self.store is not None:
                loaded = self.store.load(scenario, self.zoo)
                if loaded is not None:
                    self.cache.put(loaded, persist=False)
                    continue
            seen.add(scenario.fingerprint())
            missing.append(scenario)

        specs = self.zoo.specs()
        # The same guards as ScenarioTrace.build; tasks can span
        # scenarios, so the granularity cap is models x missing scenarios.
        pending_model_frames = len(specs) * sum(s.total_frames for s in missing)
        workers = _effective_workers(
            self.max_workers, len(specs) * len(missing), pending_model_frames
        )
        if missing and workers > 1:
            # Aim for at least one task per worker overall: with S missing
            # scenarios, split the zoo into ceil(W / S) chunks each — but
            # never chunk a scenario finer than its volume can amortize
            # (fragmenting the batched sweep was a net slowdown).
            base_chunks = -(-workers // len(missing))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for scenario in missing:
                    chunk_count = min(
                        base_chunks,
                        _effective_workers(
                            workers, len(specs), len(specs) * scenario.total_frames
                        ),
                    )
                    chunks = _spec_chunks(specs, chunk_count)
                    scenes = scenario_scenes(scenario)
                    futures[scenario.fingerprint()] = [
                        pool.submit(_outcomes_for_specs, scenario.seed, scenes, chunk)
                        for chunk in chunks
                    ]
                for scenario in missing:
                    frames = render_scenario(scenario)
                    merged: dict = {}
                    for future in futures[scenario.fingerprint()]:
                        merged.update(future.result())
                    outcomes = {spec.name: merged[spec.name] for spec in specs}
                    self.cache.put(
                        ScenarioTrace(scenario=scenario, frames=frames, outcomes=outcomes)
                    )
                    self.cache.builds += 1
        else:
            for scenario in missing:
                self.cache.get(scenario)
        return [self.cache.get(scenario) for scenario in scenarios]

    # ------------------------------------------------------------- sweeps

    def run(self, policy: Policy, scenario: Scenario) -> RunResult:
        """Run one policy over one scenario on a fresh/reset platform."""
        return run_policy(
            policy, self.trace(scenario), soc=self._fresh_soc(), engine_seed=self.engine_seed
        )

    def run_policy_on_scenarios(
        self, policy: Policy, scenarios: Sequence[Scenario]
    ) -> list[RunMetrics]:
        """One metrics row per scenario, traces built concurrently."""
        self.build_traces(scenarios)
        return [aggregate(self.run(policy, scenario)) for scenario in scenarios]

    def sweep(
        self,
        policies: Sequence[Policy],
        scenarios: Sequence[Scenario],
        parallel_runs: bool = False,
    ) -> dict[str, list[RunMetrics]]:
        """Every policy over every scenario: ``{policy_name: [metrics...]}``.

        Traces always build concurrently (given ``max_workers``).  With
        ``parallel_runs=True`` the (policy, scenario) runs themselves also
        fan out — this requires an on-disk store (workers reload traces
        from it) and picklable policies, and produces metrics identical to
        the serial path.  Note: run workers re-render frames from the
        scenario script, so scenarios whose backgrounds were registered at
        runtime need a fork start method (the default on Linux) for the
        registration to be visible in workers.
        """
        workers = self.max_workers or 1
        if parallel_runs and workers > 1:
            # Validate before building: trace construction is the expensive
            # part, and a usage error after it would throw that work away.
            if self.store is None:
                raise ValueError("parallel_runs requires a TraceStore-backed runner")
            if self.soc is not None and not callable(self.soc):
                raise ValueError("parallel_runs requires a SoC factory, not an instance")
        self.build_traces(scenarios)
        if parallel_runs and workers > 1:
            pairs = [(policy, scenario) for policy in policies for scenario in scenarios]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _run_pair_in_worker,
                        policy,
                        scenario,
                        self.zoo,
                        str(self.store.root),
                        self.engine_seed,
                        self.soc,
                    )
                    for policy, scenario in pairs
                ]
                results = [future.result() for future in futures]
            sweep_result: dict[str, list[RunMetrics]] = {}
            for (policy, _), metrics in zip(pairs, results):
                sweep_result.setdefault(policy.name, []).append(metrics)
            return sweep_result

        return {
            policy.name: [aggregate(self.run(policy, scenario)) for scenario in scenarios]
            for policy in policies
        }
