"""Persistent, parallel experiment runner.

Everything that reruns policies over scenarios — the paper tables and
figures, the CLI, the benchmark harness — funnels through
:class:`ExperimentRunner`.  It owns the trace tier (a fingerprint-keyed
:class:`~repro.runtime.trace.TraceCache`, optionally backed by an on-disk
:class:`~repro.runtime.store.TraceStore`) and the process pool, so callers
get three things for free:

* **reuse** — a second invocation with the same store rebuilds nothing,
  and with a :class:`~repro.runtime.runstore.RunStore` attached a repeat
  sweep doesn't even *run*: persisted metrics come back keyed by (policy,
  trace, SoC, seed) fingerprints;
* **parallelism** — trace builds fan out per (scenario, model-chunk), and
  sweeps can run whole (policy, scenario) pairs in worker processes;
* **determinism** — results are bit-identical to the serial path and to
  the scalar reference run loop (every stochastic draw is seeded by
  content, never by scheduling; the fast run tier replays the reference
  engine's draw order exactly).

A sweep's platform comes from ``soc``: a zero-argument factory (fresh SoC
per run — required for parallel runs, which execute in other processes) or
a single :class:`~repro.sim.soc.SoC` instance reset before each run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Sequence

from ..data.generator import render_scenario, scenario_scenes
from ..data.scenario import Scenario
from ..models.zoo import ModelZoo, default_zoo
from ..sim.soc import SoC, xavier_nx_with_oakd
from .metrics import RunMetrics, aggregate
from ..core.policy import Policy
from ..core.records import RunResult
from .runner import run_policy
from .runstore import RunKey, RunStore
from .store import TraceStore
from .trace import (
    ScenarioTrace,
    TraceCache,
    _effective_workers,
    _outcomes_for_specs,
    _spec_chunks,
)

SocLike = SoC | Callable[[], SoC] | None


def _policy_fingerprint(policy: Policy) -> str | None:
    """A policy's run-store identity, or None when it defines none."""
    try:
        return policy.fingerprint()
    except NotImplementedError:
        return None


# Per-worker-process trace memo: a worker that runs several (policy,
# scenario) pairs for the same scenario loads/renders the trace once, not
# once per pair.  Keyed by (store root, scenario, zoo) fingerprints.
_WORKER_TRACES: dict[tuple[str, str, str], ScenarioTrace] = {}


def _run_pair_in_worker(
    policy: Policy,
    scenario: Scenario,
    zoo: ModelZoo,
    store_root: str,
    engine_seed: int,
    soc_factory: Callable[[], SoC] | None,
    fast: bool = False,
    run_store_root: str | None = None,
    soc_fingerprint: str | None = None,
) -> RunMetrics:
    """Run one (policy, scenario) pair in a worker process.

    The trace comes from the shared store (guaranteed warm — the parent
    builds all traces before dispatching pairs), so workers never repeat
    the zoo sweep; module-level for picklability.  The parent resolves
    run-store *hits* before dispatching, so workers only see misses; with
    ``run_store_root`` each worker persists its finished run (atomic
    writes make concurrent workers safe).
    """
    key = (store_root, scenario.fingerprint(), zoo.fingerprint())
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        trace = TraceStore(store_root).get(scenario, zoo)
        _WORKER_TRACES[key] = trace
    soc = soc_factory() if soc_factory is not None else None
    result = run_policy(policy, trace, soc=soc, engine_seed=engine_seed, fast=fast)
    if run_store_root is not None and soc_fingerprint is not None:
        fingerprint = _policy_fingerprint(policy)
        if fingerprint is not None:
            RunStore(run_store_root).save(
                result,
                RunKey(
                    policy_name=policy.name,
                    policy_fingerprint=fingerprint,
                    scenario_fingerprint=scenario.fingerprint(),
                    zoo_fingerprint=zoo.fingerprint(),
                    soc_fingerprint=soc_fingerprint,
                    engine_seed=engine_seed,
                ),
            )
    return aggregate(result)


class ExperimentRunner:
    """Builds traces (in parallel, persistently) and sweeps policies over them.

    Parameters mirror the trace tier: ``store`` persists traces across
    processes, ``max_workers`` bounds the process pool (None or 1 = serial),
    ``engine_seed`` seeds every run's execution engine, and ``soc`` supplies
    the platform (factory or instance; default is a fresh Xavier-NX+OAK-D
    per run).  An existing :class:`TraceCache` can be passed instead of a
    zoo to share warm traces with other components.
    """

    def __init__(
        self,
        zoo: ModelZoo | None = None,
        *,
        cache: TraceCache | None = None,
        store: TraceStore | None = None,
        max_workers: int | None = None,
        engine_seed: int = 1234,
        soc: SocLike = None,
        run_store: RunStore | None = None,
        fast: bool = True,
    ) -> None:
        if cache is None:
            cache = TraceCache(zoo if zoo is not None else default_zoo(), store=store,
                               max_workers=max_workers)
        else:
            if zoo is not None and zoo is not cache.zoo:
                raise ValueError("pass either a zoo or a cache built from it, not both")
            if store is not None and store is not cache.store:
                raise ValueError(
                    "pass either a store or a cache built on it, not both "
                    "(the cache's store is the one that would be used)"
                )
        self.cache = cache
        self.max_workers = max_workers if max_workers is not None else cache.max_workers
        self.engine_seed = engine_seed
        self.soc = soc
        # Run tier: ``fast`` selects the bit-identical fast-run engine
        # (planned jitter, cached context signals, vectorized scheduling);
        # ``run_store`` persists finished runs so repeat sweeps are
        # near-free.  ``run_store_hits``/``runs_executed`` let callers
        # verify reuse, mirroring ``cache.builds`` on the trace tier.
        self.run_store = run_store
        self.fast = fast
        self.run_store_hits = 0
        self.runs_executed = 0
        self._soc_fp: str | None = None

    @property
    def zoo(self) -> ModelZoo:
        """The model zoo traces are built against."""
        return self.cache.zoo

    @property
    def store(self) -> TraceStore | None:
        """The on-disk trace tier, if any."""
        return self.cache.store

    def _fresh_soc(self) -> SoC | None:
        if callable(self.soc):
            return self.soc()
        return self.soc  # an instance (reset by run_policy) or None

    # ------------------------------------------------------------ traces

    def trace(self, scenario: Scenario) -> ScenarioTrace:
        """The trace for one scenario (memory → store → build)."""
        return self.cache.get(scenario)

    def build_traces(self, scenarios: Sequence[Scenario]) -> list[ScenarioTrace]:
        """Warm the cache for every scenario, fanning builds across workers.

        Tasks are (scenario, model-chunk) detection sweeps — fine-grained
        enough to balance scenarios of very different lengths — while the
        parent renders frames.  Scenarios already in memory or on disk are
        skipped entirely.
        """
        missing = []
        seen: set[str] = set()
        for scenario in scenarios:
            if scenario.fingerprint() in seen or scenario in self.cache:
                continue
            if self.store is not None:
                loaded = self.store.load(scenario, self.zoo)
                if loaded is not None:
                    self.cache.put(loaded, persist=False)
                    continue
            seen.add(scenario.fingerprint())
            missing.append(scenario)

        specs = self.zoo.specs()
        # The same guards as ScenarioTrace.build; tasks can span
        # scenarios, so the granularity cap is models x missing scenarios.
        pending_model_frames = len(specs) * sum(s.total_frames for s in missing)
        workers = _effective_workers(
            self.max_workers, len(specs) * len(missing), pending_model_frames
        )
        if missing and workers > 1:
            # Aim for at least one task per worker overall: with S missing
            # scenarios, split the zoo into ceil(W / S) chunks each — but
            # never chunk a scenario finer than its volume can amortize
            # (fragmenting the batched sweep was a net slowdown).
            base_chunks = -(-workers // len(missing))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for scenario in missing:
                    chunk_count = min(
                        base_chunks,
                        _effective_workers(
                            workers, len(specs), len(specs) * scenario.total_frames
                        ),
                    )
                    chunks = _spec_chunks(specs, chunk_count)
                    scenes = scenario_scenes(scenario)
                    futures[scenario.fingerprint()] = [
                        pool.submit(_outcomes_for_specs, scenario.seed, scenes, chunk)
                        for chunk in chunks
                    ]
                for scenario in missing:
                    frames = render_scenario(scenario)
                    merged: dict = {}
                    for future in futures[scenario.fingerprint()]:
                        merged.update(future.result())
                    outcomes = {spec.name: merged[spec.name] for spec in specs}
                    self.cache.put(
                        ScenarioTrace(scenario=scenario, frames=frames, outcomes=outcomes)
                    )
                    self.cache.builds += 1
        else:
            for scenario in missing:
                self.cache.get(scenario)
        return [self.cache.get(scenario) for scenario in scenarios]

    # ---------------------------------------------------------- run store

    def _soc_fingerprint(self) -> str:
        """The platform fingerprint runs are keyed by (computed once).

        A SoC factory is assumed to be deterministic in *configuration*
        (every call builds an equally shaped platform) — the factory
        contract parallel runs already rely on.
        """
        if self._soc_fp is None:
            if callable(self.soc):
                self._soc_fp = self.soc().fingerprint()
            elif self.soc is not None:
                self._soc_fp = self.soc.fingerprint()
            else:
                self._soc_fp = xavier_nx_with_oakd().fingerprint()
        return self._soc_fp

    def _run_key(self, policy: Policy, scenario: Scenario) -> RunKey | None:
        """The run-store key for one (policy, scenario) pair, if cacheable."""
        if self.run_store is None:
            return None
        fingerprint = _policy_fingerprint(policy)
        if fingerprint is None:
            return None  # policies without an identity are never cached
        return RunKey(
            policy_name=policy.name,
            policy_fingerprint=fingerprint,
            scenario_fingerprint=scenario.fingerprint(),
            zoo_fingerprint=self.zoo.fingerprint(),
            soc_fingerprint=self._soc_fingerprint(),
            engine_seed=self.engine_seed,
        )

    def _execute(self, policy: Policy, scenario: Scenario, key: RunKey | None) -> RunResult:
        """Run a (guaranteed) store miss and persist the result."""
        result = run_policy(
            policy,
            self.trace(scenario),
            soc=self._fresh_soc(),
            engine_seed=self.engine_seed,
            fast=self.fast,
        )
        self.runs_executed += 1
        if key is not None and self.run_store is not None:
            self.run_store.save(result, key)
        return result

    # ------------------------------------------------------------- sweeps

    def run(self, policy: Policy, scenario: Scenario) -> RunResult:
        """Run one policy over one scenario on a fresh/reset platform.

        With a run store attached, a previously persisted run for the
        same (policy, trace, SoC, seed) key is returned without executing
        anything.
        """
        key = self._run_key(policy, scenario)
        if key is not None and self.run_store is not None:
            cached = self.run_store.load(key)
            if cached is not None:
                self.run_store_hits += 1
                return cached
        return self._execute(policy, scenario, key)

    def run_policy_on_scenarios(
        self, policy: Policy, scenarios: Sequence[Scenario]
    ) -> list[RunMetrics]:
        """One metrics row per scenario, traces built concurrently."""
        return self.sweep([policy], scenarios)[policy.name]

    def sweep(
        self,
        policies: Sequence[Policy],
        scenarios: Sequence[Scenario],
        parallel_runs: bool = False,
    ) -> dict[str, list[RunMetrics]]:
        """Every policy over every scenario: ``{policy_name: [metrics...]}``.

        Run-store hits are resolved first: a fully warm sweep returns
        persisted metrics without building, loading, or rendering a
        single trace.  Remaining misses build their traces concurrently
        (given ``max_workers``) and run on the fast tier.  With
        ``parallel_runs=True`` the missing (policy, scenario) runs also
        fan out — this requires an on-disk trace store (workers reload
        traces from it) and picklable policies, and produces metrics
        identical to the serial path.  Note: run workers re-render frames
        from the scenario script, so scenarios whose backgrounds were
        registered at runtime need a fork start method (the default on
        Linux) for the registration to be visible in workers.
        """
        workers = self.max_workers or 1
        if parallel_runs and workers > 1:
            # Validate before building: trace construction is the expensive
            # part, and a usage error after it would throw that work away.
            if self.store is None:
                raise ValueError("parallel_runs requires a TraceStore-backed runner")
            if self.soc is not None and not callable(self.soc):
                raise ValueError("parallel_runs requires a SoC factory, not an instance")

        pairs = [(policy, scenario) for policy in policies for scenario in scenarios]
        resolved: dict[int, RunMetrics] = {}
        misses: list[tuple[int, RunKey | None]] = []
        for index, (policy, scenario) in enumerate(pairs):
            key = self._run_key(policy, scenario)
            cached = (
                self.run_store.load_metrics(key)
                if key is not None and self.run_store is not None
                else None
            )
            if cached is not None:
                self.run_store_hits += 1
                resolved[index] = cached
            else:
                misses.append((index, key))

        if misses:
            # Only scenarios that actually miss need a trace.
            missing_scenarios: list[Scenario] = []
            seen: set[str] = set()
            for index, _ in misses:
                scenario = pairs[index][1]
                if scenario.fingerprint() not in seen:
                    seen.add(scenario.fingerprint())
                    missing_scenarios.append(scenario)
            self.build_traces(missing_scenarios)

            if parallel_runs and workers > 1:
                run_store_root = (
                    str(self.run_store.root) if self.run_store is not None else None
                )
                soc_fp = self._soc_fingerprint() if self.run_store is not None else None
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(
                            _run_pair_in_worker,
                            pairs[index][0],
                            pairs[index][1],
                            self.zoo,
                            str(self.store.root),
                            self.engine_seed,
                            self.soc,
                            self.fast,
                            run_store_root,
                            soc_fp,
                        )
                        for index, _ in misses
                    }
                    for index, future in futures.items():
                        resolved[index] = future.result()
                        self.runs_executed += 1
            else:
                # The pre-resolution loop proved these are misses; reuse
                # its keys instead of re-deriving and re-querying.
                for index, key in misses:
                    policy, scenario = pairs[index]
                    resolved[index] = aggregate(self._execute(policy, scenario, key))

        count = len(scenarios)
        sweep_result: dict[str, list[RunMetrics]] = {}
        for p, policy in enumerate(policies):
            # Policies sharing a name concatenate their rows in policy
            # order (scenario-major within each policy) — every executed
            # run is returned, never silently dropped.
            sweep_result.setdefault(policy.name, []).extend(
                resolved[p * count + s] for s in range(count)
            )
        return sweep_result
