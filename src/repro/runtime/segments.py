"""Per-segment metric breakdown.

Scenario segments are the ground-truth context regimes; a policy's
behaviour *within* each segment (which models it ran, what it achieved,
what it spent) is the most direct way to see context adaptation — it is
the data behind the paper's Fig. 3/4 discussion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..data.generator import Frame
from ..core.records import FrameRecord, RunResult


@dataclass(frozen=True)
class SegmentMetrics:
    """One policy's aggregate behaviour inside one scenario segment."""

    segment: str
    frames: int
    mean_iou: float
    success_rate: float
    mean_energy_j: float
    mean_latency_s: float
    swaps: int
    model_shares: dict[str, float]  # model -> fraction of segment frames

    def dominant_model(self) -> str:
        """The model that served the largest share of the segment."""
        return max(self.model_shares, key=lambda m: (self.model_shares[m], m))


def segment_metrics(result: RunResult, frames: list[Frame]) -> list[SegmentMetrics]:
    """Break a run down by scenario segment, in stream order.

    ``frames`` must be the same frame sequence the policy processed (the
    trace's frames); records and frames are zipped positionally.
    """
    if len(result.records) != len(frames):
        raise ValueError(
            f"record/frame count mismatch: {len(result.records)} records, "
            f"{len(frames)} frames"
        )
    ordered_segments: list[str] = []
    grouped: dict[str, list[FrameRecord]] = {}
    for record, frame in zip(result.records, frames, strict=True):
        if frame.segment not in grouped:
            ordered_segments.append(frame.segment)
            grouped[frame.segment] = []
        grouped[frame.segment].append(record)

    breakdown = []
    for segment in ordered_segments:
        records = grouped[segment]
        with_truth = [r for r in records if r.ground_truth_present]
        if with_truth:
            mean_iou = sum(r.iou for r in with_truth) / len(with_truth)
            success = sum(1 for r in with_truth if r.success) / len(with_truth)
        else:
            mean_iou = 0.0
            success = 0.0
        counts = Counter(r.model_name for r in records)
        breakdown.append(
            SegmentMetrics(
                segment=segment,
                frames=len(records),
                mean_iou=mean_iou,
                success_rate=success,
                mean_energy_j=sum(r.energy_j for r in records) / len(records),
                mean_latency_s=sum(r.latency_s for r in records) / len(records),
                swaps=sum(1 for r in records if r.swap),
                model_shares={
                    model: count / len(records) for model, count in counts.items()
                },
            )
        )
    return breakdown
