"""Export run results and metrics as plain data.

Experiment pipelines (dashboards, regression tracking, the EXPERIMENTS.md
tooling) consume runs as JSON; this module flattens
:class:`~repro.runtime.metrics.RunMetrics` and per-frame records into
dictionaries with stable keys.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.records import FrameRecord, RunResult
from ..util import jsonsafe
from . import iolayer
from .metrics import RunMetrics


class MetricsReadResult(list):
    """The rows of a metrics file, plus whether the read was partial.

    ``partial`` is True when the file's final line was torn (no trailing
    newline and unparseable — the signature of a writer killed mid-line):
    the complete rows are still returned, the torn tail is dropped, and
    the caller can decide whether partial data is acceptable.
    """

    def __init__(self, rows: list[dict], partial: bool = False) -> None:
        super().__init__(rows)
        self.partial = partial


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flat dict form of one run's aggregate metrics."""
    return {
        "policy": metrics.policy_name,
        "scenario": metrics.scenario_name,
        "frames": metrics.frames,
        "mean_iou": metrics.mean_iou,
        "success_rate": metrics.success_rate,
        "mean_latency_s": metrics.mean_latency_s,
        "mean_energy_j": metrics.mean_energy_j,
        "total_energy_j": metrics.total_energy_j,
        "non_gpu_share": metrics.non_gpu_share,
        "swaps": metrics.swaps,
        "cold_loads": metrics.cold_loads,
        "pairs_used": metrics.pairs_used,
        "mean_overhead_s": metrics.mean_overhead_s,
        "detected_share": metrics.detected_share,
        "efficiency_iou_per_joule": metrics.efficiency_iou_per_joule,
    }


def record_to_dict(record: FrameRecord) -> dict:
    """Flat dict form of one frame record (box as a 4-tuple or None)."""
    return {
        "frame": record.frame_index,
        "model": record.model_name,
        "accelerator": record.accelerator_name,
        "box": list(record.box.as_tuple()) if record.box is not None else None,
        "confidence": record.confidence,
        "iou": record.iou,
        "ground_truth_present": record.ground_truth_present,
        "detected": record.detected,
        "latency_s": record.latency_s,
        "energy_j": record.energy_j,
        "swap": record.swap,
        "cold_load": record.cold_load,
        "used_tracker": record.used_tracker,
        "rescheduled": record.rescheduled,
    }


def result_to_dict(result: RunResult) -> dict:
    """Full run (metadata + per-frame records) as a dict."""
    return {
        "policy": result.policy_name,
        "scenario": result.scenario_name,
        "records": [record_to_dict(record) for record in result.records],
    }


def save_metrics(metrics_list: list[RunMetrics], path: str | Path) -> None:
    """Write a list of run metrics as JSON lines (one run per line).

    Routed through the I/O seam like every other durable write, so an
    export target on a full disk degrades with a typed
    :exc:`~repro.runtime.iolayer.StoreDegraded` instead of a bare
    ``OSError`` mid-file.
    """
    lines = [jsonsafe.dumps(metrics_to_dict(m)) for m in metrics_list]
    iolayer.write_text(path, "\n".join(lines) + "\n")


def load_metrics_dicts(path: str | Path) -> MetricsReadResult:
    """Read back the dict rows written by :func:`save_metrics`.

    Reads through the I/O seam (bounded retries on transient errors,
    ``io_errors`` accounting).  A torn *final* line — no trailing newline,
    the file ends mid-JSON because the writer was killed — is dropped and
    reported via :attr:`MetricsReadResult.partial` instead of raising; a
    malformed line anywhere *else* still raises
    :class:`json.JSONDecodeError`, because that is corruption, not a torn
    tail.
    """
    text = iolayer.read_text(Path(path))
    lines = text.splitlines()
    complete = text.endswith("\n")
    rows = []
    partial = False
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rows.append(jsonsafe.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not complete:
                partial = True  # torn tail from a killed writer: report, don't raise
                break
            raise
    return MetricsReadResult(rows, partial)
