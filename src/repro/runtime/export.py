"""Export run results and metrics as plain data.

Experiment pipelines (dashboards, regression tracking, the EXPERIMENTS.md
tooling) consume runs as JSON; this module flattens
:class:`~repro.runtime.metrics.RunMetrics` and per-frame records into
dictionaries with stable keys.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.records import FrameRecord, RunResult
from . import iolayer
from .metrics import RunMetrics


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flat dict form of one run's aggregate metrics."""
    return {
        "policy": metrics.policy_name,
        "scenario": metrics.scenario_name,
        "frames": metrics.frames,
        "mean_iou": metrics.mean_iou,
        "success_rate": metrics.success_rate,
        "mean_latency_s": metrics.mean_latency_s,
        "mean_energy_j": metrics.mean_energy_j,
        "total_energy_j": metrics.total_energy_j,
        "non_gpu_share": metrics.non_gpu_share,
        "swaps": metrics.swaps,
        "cold_loads": metrics.cold_loads,
        "pairs_used": metrics.pairs_used,
        "mean_overhead_s": metrics.mean_overhead_s,
        "detected_share": metrics.detected_share,
        "efficiency_iou_per_joule": metrics.efficiency_iou_per_joule,
    }


def record_to_dict(record: FrameRecord) -> dict:
    """Flat dict form of one frame record (box as a 4-tuple or None)."""
    return {
        "frame": record.frame_index,
        "model": record.model_name,
        "accelerator": record.accelerator_name,
        "box": list(record.box.as_tuple()) if record.box is not None else None,
        "confidence": record.confidence,
        "iou": record.iou,
        "ground_truth_present": record.ground_truth_present,
        "detected": record.detected,
        "latency_s": record.latency_s,
        "energy_j": record.energy_j,
        "swap": record.swap,
        "cold_load": record.cold_load,
        "used_tracker": record.used_tracker,
        "rescheduled": record.rescheduled,
    }


def result_to_dict(result: RunResult) -> dict:
    """Full run (metadata + per-frame records) as a dict."""
    return {
        "policy": result.policy_name,
        "scenario": result.scenario_name,
        "records": [record_to_dict(record) for record in result.records],
    }


def save_metrics(metrics_list: list[RunMetrics], path: str | Path) -> None:
    """Write a list of run metrics as JSON lines (one run per line).

    Routed through the I/O seam like every other durable write, so an
    export target on a full disk degrades with a typed
    :exc:`~repro.runtime.iolayer.StoreDegraded` instead of a bare
    ``OSError`` mid-file.
    """
    lines = [json.dumps(metrics_to_dict(m)) for m in metrics_list]
    iolayer.write_text(path, "\n".join(lines) + "\n")


def load_metrics_dicts(path: str | Path) -> list[dict]:
    """Read back the dict rows written by :func:`save_metrics`."""
    rows = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows
