"""Self-healing store maintenance: scrub, GC, and index repair.

Quarantined entries, dead-letter jobs, and stale temp files are all
*evidence* the moment they appear — and garbage a week later.  This
module is the generic maintenance engine the trace store, run store, and
job queue all wire up (``repro store scrub|gc|repair`` on the CLI):

``scrub`` — :func:`scrub_entries`
    Re-verify every *indexed* entry under its shard lock: it must exist,
    parse as a JSON object, live in the shard its digest names, and pass
    the store's own identity validation (schema version, fingerprints
    matching the file name, payload shape).  Anything that fails is
    quarantined (moved to ``root/_quarantine``, index record dropped) —
    exactly what the lazy load path would eventually do, done eagerly.

``gc`` — :func:`gc_entries`
    Apply TTLs (file mtime) to the artifacts that only accumulate:
    quarantined files, abandoned ``*.tmp*`` files, and — via the caller's
    ``collect`` predicate — terminal entries like dead-letter jobs.
    Dry-run by default, with byte accounting either way, so operators see
    what a real pass would reclaim before deleting anything.

``repair`` — :func:`repair_entries`
    Heal index↔disk drift in both directions: drop *ghosts* (indexed but
    missing on disk — e.g. a lost rename that was still indexed) and
    re-index *orphans* (on disk but not indexed — e.g. an entry whose
    index write hit a full disk), quarantining orphans that do not parse.

All three are metamorphic no-ops for servable data: a scrub+gc+repair
pass leaves every entry a reader could successfully load bit-identical
(the test suite proves this).  They only touch corrupt, expired, or
drifted artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable

from . import colfmt, iolayer, shards

#: Default age before quarantine/temp/dead-letter artifacts are collected.
DEFAULT_TTL_SECONDS = 7 * 24 * 3600.0


@dataclass
class ScrubReport:
    """What one scrub pass checked and quarantined."""

    root: str
    entries_checked: int = 0
    quarantined: int = 0
    problems: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"scrub {self.root}: {self.entries_checked} entries checked, "
            f"{len(self.problems)} problems, {self.quarantined} quarantined"
        )


@dataclass
class GcReport:
    """What one GC pass reclaimed (or would reclaim, when ``dry_run``)."""

    root: str
    dry_run: bool = True
    quarantine_removed: int = 0
    temps_removed: int = 0
    entries_removed: int = 0
    skipped_young: int = 0
    bytes_reclaimed: int = 0
    paths: list[str] = field(default_factory=list)

    def summary(self) -> str:
        verb = "would reclaim" if self.dry_run else "reclaimed"
        return (
            f"gc {self.root}: {verb} {self.bytes_reclaimed} bytes "
            f"({self.quarantine_removed} quarantined, {self.temps_removed} temps, "
            f"{self.entries_removed} entries); {self.skipped_young} younger than TTL"
        )


@dataclass
class RepairReport:
    """What one repair pass healed."""

    root: str
    ghosts_dropped: int = 0
    orphans_indexed: int = 0
    quarantined: int = 0

    def summary(self) -> str:
        return (
            f"repair {self.root}: {self.ghosts_dropped} ghost index records dropped, "
            f"{self.orphans_indexed} orphan entries re-indexed, "
            f"{self.quarantined} unparseable orphans quarantined"
        )


def scrub_entries(
    root: Path,
    pattern: str | tuple[str, ...],
    validate: Callable[[str, dict], str | None],
    *,
    digest_for: Callable[[str], str | None] | None = None,
) -> ScrubReport:
    """Re-verify every indexed entry under its shard lock; quarantine failures.

    ``validate(name, payload)`` returns a problem string (entry is
    quarantined) or None (entry is sound); ``digest_for(name)`` — when
    given — recovers the shard digest from the file name so misfiled
    entries are caught too.  Missing-on-disk entries are reported and
    their ghost index records dropped (the quarantine move is a no-op for
    a file that is not there).  Entries whose bytes cannot be *read*
    (transient I/O failure, after the seam's retries) are reported but
    **not** quarantined — unavailability is not evidence of corruption.
    """
    report = ScrubReport(root=str(root))
    for shard in shards.shard_dirs(root):
        with shards.shard_lock(shard):
            for name in sorted(shards.read_index(shard)):
                report.entries_checked += 1
                problem, quarantinable = _entry_problem(shard, name, validate, digest_for)
                if problem is None:
                    continue
                report.problems.append(f"{shard.name}/{name}: {problem}")
                if quarantinable and shards.quarantine_entry_locked(root, shard, name):
                    report.quarantined += 1
    return report


def _entry_problem(
    shard: Path,
    name: str,
    validate: Callable[[str, dict], str | None],
    digest_for: Callable[[str], str | None] | None,
) -> tuple[str | None, bool]:
    """``(problem, quarantinable)`` for one indexed entry.

    ``problem`` is None when the entry checks out.  ``quarantinable`` is
    False exactly for read-I/O failures: the entry may be perfectly valid
    on a disk that is briefly unhappy, so scrub reports it and leaves it
    for a later pass to vindicate or convict.  Both entry formats parse
    via :func:`repro.runtime.colfmt.load_entry_payload`.
    """
    path = shard / name
    try:
        payload = colfmt.load_entry_payload(path, root=shard.parent)
    except FileNotFoundError:
        return "indexed but missing on disk", True
    except colfmt.PARSE_ERRORS as exc:
        return f"unparseable ({exc})", True
    except OSError as exc:
        return f"unreadable ({exc}) — left in place", False
    if not isinstance(payload, dict):
        return "not a JSON object", True
    if digest_for is not None:
        digest = digest_for(name)
        if digest is None:
            return "file name does not parse as an entry name", True
        if shards.shard_prefix(digest) != shard.name:
            return f"entry filed in shard {shard.name} but digest names {digest[:2]}", True
    return validate(name, payload), True


def gc_entries(
    root: Path,
    *,
    ttl_seconds: float = DEFAULT_TTL_SECONDS,
    dry_run: bool = True,
    now: float | None = None,
    pattern: str | tuple[str, ...] | None = None,
    collect: Callable[[dict], bool] | None = None,
) -> GcReport:
    """TTL sweep over quarantine, stale temps, and optional terminal entries.

    Removes (or, by default, only reports — ``dry_run``) every file under
    ``root/_quarantine`` and every ``*.tmp*`` file whose mtime is older
    than ``ttl_seconds``.  When ``pattern`` and ``collect`` are given,
    entries matching the pattern whose parsed payload satisfies
    ``collect(payload)`` are removed too once past the TTL — how the job
    queue expires dead-letter records.  Byte counts are accumulated in
    either mode so a dry run prices the real one.
    """
    clock = time.time() if now is None else now
    report = GcReport(root=str(root), dry_run=dry_run)
    quarantine = root / shards.QUARANTINE_DIR
    if quarantine.is_dir():
        for path in _safe_scan(quarantine, "*", root):
            if _collect_file(path, report, clock, ttl_seconds, dry_run, root):
                report.quarantine_removed += 1
    if root.is_dir():
        for path in _safe_scan(root, "*.tmp*", root):
            if _collect_file(path, report, clock, ttl_seconds, dry_run, root):
                report.temps_removed += 1
    for shard in shards.shard_dirs(root):
        with shards.shard_lock(shard):
            for path in _safe_scan(shard, "*.tmp*", root):
                if _collect_file(path, report, clock, ttl_seconds, dry_run, root):
                    report.temps_removed += 1
            if pattern is None or collect is None:
                continue
            for path in _safe_scan(shard, pattern, root):
                if ".tmp" in path.name:
                    continue
                if not _collect_entry_locked(
                    root, shard, path, report, clock, ttl_seconds, dry_run, collect
                ):
                    continue
                report.entries_removed += 1
    return report


def _safe_scan(directory: Path, pattern: str | tuple[str, ...], root: Path) -> list[Path]:
    patterns = (pattern,) if isinstance(pattern, str) else pattern
    found: list[Path] = []
    for glob in patterns:
        try:
            found.extend(iolayer.scan(directory, glob, root=root))
        except OSError:  # repro: allow[exceptions/swallow] counted by the seam; unscannable dir yields nothing
            continue
    return sorted(set(found)) if len(patterns) > 1 else found


def _age_and_size(path: Path, root: Path) -> tuple[float, int] | None:
    try:
        stat = path.stat()
    except OSError:
        iolayer.record_io_error(root)
        return None
    return stat.st_mtime, stat.st_size


def _collect_file(
    path: Path, report: GcReport, now: float, ttl: float, dry_run: bool, root: Path
) -> bool:
    """Reclaim one quarantine/temp file past its TTL; True when counted."""
    probed = _age_and_size(path, root)
    if probed is None:
        return False
    mtime, size = probed
    if now - mtime < ttl:
        report.skipped_young += 1
        return False
    if not dry_run:
        try:
            path.unlink(missing_ok=True)
        except OSError:
            iolayer.record_io_error(root)
            return False
    report.bytes_reclaimed += size
    report.paths.append(str(path.relative_to(root)))
    return True


def _collect_entry_locked(
    root: Path,
    shard: Path,
    path: Path,
    report: GcReport,
    now: float,
    ttl: float,
    dry_run: bool,
    collect: Callable[[dict], bool],
) -> bool:
    """Reclaim one terminal entry (payload satisfies ``collect``) past TTL."""
    probed = _age_and_size(path, root)
    if probed is None:
        return False
    mtime, size = probed
    try:
        payload = colfmt.load_entry_payload(path, root=root)
    except (OSError, *colfmt.PARSE_ERRORS):
        return False  # scrub/repair territory, not GC's
    if not isinstance(payload, dict) or not collect(payload):
        return False
    if now - mtime < ttl:
        report.skipped_young += 1
        return False
    if not dry_run:
        shards.remove_entry_locked(shard, path.name)
    report.bytes_reclaimed += size
    report.paths.append(str(path.relative_to(root)))
    return True


def repair_entries(
    root: Path,
    pattern: str | tuple[str, ...],
    meta_for: Callable[[str, dict], dict],
) -> RepairReport:
    """Heal index↔disk drift: drop ghosts, re-index orphans, quarantine junk.

    ``meta_for(name, payload)`` supplies the index identity block for a
    re-indexed orphan (each store's own ``_index_meta``).  Runs shard by
    shard under the shard lock, rewriting each index at most once.
    Orphans that fail to *parse* are quarantined; orphans that fail to
    *read* (transient I/O) are skipped for a later pass — repair must not
    destroy an entry on the evidence of a flaky disk.
    """
    report = RepairReport(root=str(root))
    for shard in shards.shard_dirs(root):
        with shards.shard_lock(shard):
            indexed = shards.read_index(shard)
            on_disk = {
                p.name for p in _safe_scan(shard, pattern, root) if ".tmp" not in p.name
            }
            changed = False
            for name in sorted(set(indexed) - on_disk):
                del indexed[name]
                report.ghosts_dropped += 1
                changed = True
            for name in sorted(on_disk - set(indexed)):
                try:
                    payload = colfmt.load_entry_payload(shard / name, root=root)
                except colfmt.PARSE_ERRORS:
                    payload = None
                except OSError:  # repro: allow[exceptions/swallow] unavailable is not provably corrupt: skip for a later pass
                    continue
                if not isinstance(payload, dict):
                    shards.quarantine_entry_locked(root, shard, name)
                    report.quarantined += 1
                    continue
                indexed[name] = meta_for(name, payload)
                report.orphans_indexed += 1
                changed = True
            if changed:
                shards.write_index_locked(shard, indexed)
    return report
