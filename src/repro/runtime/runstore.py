"""On-disk persistence for finished policy runs.

PR 2 made building traces cheap and reloading them near-free; after that
the suite's dominant cost became the run tier itself — every table,
figure, sensitivity point, and fuzz sweep replays ``run_policy`` from
scratch, and nothing remembers a finished run across processes.  This
module is the run tier's analogue of :class:`~repro.runtime.store.TraceStore`:
schema-validated entries (binary columnar by default, JSON as the fully
supported fallback format — see :mod:`repro.runtime.colfmt`),
content-addressed, atomic writes.

**Cache key.**  A run's frame records are a pure function of four inputs,
so a persisted run is keyed by the tuple of their content fingerprints
(plus the policy's display name, which labels the persisted rows):

``policy_fingerprint``
    :meth:`~repro.runtime.policy.Policy.fingerprint` — the policy's full
    configuration (for SHIFT: config knobs + characterization bundle +
    confidence graph content).  Retuning any knob changes the digest.
``scenario_fingerprint`` / ``zoo_fingerprint``
    together they identify the *trace* the policy ran over (the same pair
    of digests the trace store keys by): scenario script + every model's
    parameterization.
``soc_fingerprint``
    :meth:`~repro.sim.soc.SoC.fingerprint` — the platform configuration
    (accelerators, memory budgets, power rails, schedulability).
``engine_seed``
    the execution engine's jitter stream seed.

Change any one of the five and the key misses; nothing is ever
invalidated in place.  :data:`RUN_ALGORITHM_VERSION` additionally pins the
run-producing code itself (scheduler semantics, engine jitter model):
bumping it orphans stale files, which are then treated as misses.

**Payload.**  Each file stores the full per-frame record rows *and* the
pre-aggregated :class:`~repro.runtime.metrics.RunMetrics` dict.  Sweeps
that only need metrics (tables, figures, fuzz drivers) hit
:meth:`RunStore.load_metrics`, which skips rebuilding
:class:`~repro.runtime.records.FrameRecord` objects entirely — that is
what makes a warm sweep as cheap as a trace reload.  Floats survive the
JSON round-trip exactly (shortest-round-trip repr), so a warm sweep is
bit-identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..util import jsonsafe
from ..vision.bbox import BoundingBox
from . import colfmt, iolayer, maintenance, shards
from .metrics import RunMetrics, aggregate
from .store import STORE_FORMATS, resolve_write_format
from ..core.records import FrameRecord, RunResult

SCHEMA_VERSION = 1

# Version of the run-producing algorithm (scheduler heuristics, engine
# jitter model, loader policy).  Fingerprints pin what a run was built
# FROM; this pins what it was built WITH.  Bump whenever a code change
# alters frame records, or stale runs would masquerade as current.
RUN_ALGORITHM_VERSION = 1


class RunSchemaError(ValueError):
    """Raised when a persisted run cannot be understood or doesn't match."""


@dataclass(frozen=True)
class RunKey:
    """The content address of one policy run.

    ``policy_name`` is part of the key even though it never changes frame
    records: the name is baked into the persisted result/metrics rows, so
    an identically configured policy under a different display name must
    miss rather than return rows labelled with the stale name.
    """

    policy_name: str
    policy_fingerprint: str
    scenario_fingerprint: str
    zoo_fingerprint: str
    soc_fingerprint: str
    engine_seed: int

    def __post_init__(self) -> None:
        for label in ("policy_name", "policy_fingerprint", "scenario_fingerprint",
                      "zoo_fingerprint", "soc_fingerprint"):
            if not getattr(self, label):
                raise ValueError(f"run key needs a non-empty {label}")

    def digest(self) -> str:
        """Combined digest used for the on-disk file name."""
        return hashlib.sha256(
            "|".join(
                (
                    self.policy_name,
                    self.policy_fingerprint,
                    self.scenario_fingerprint,
                    self.zoo_fingerprint,
                    self.soc_fingerprint,
                    str(self.engine_seed),
                )
            ).encode("utf-8")
        ).hexdigest()


def _record_row(record: FrameRecord) -> list:
    """One compact JSON row per frame record (field order is the schema)."""
    return [
        record.frame_index,
        record.model_name,
        record.accelerator_name,
        None if record.box is None else [record.box.x1, record.box.y1,
                                         record.box.x2, record.box.y2],
        record.confidence,
        record.iou,
        record.ground_truth_present,
        record.detected,
        record.latency_s,
        record.inference_s,
        record.stall_s,
        record.overhead_s,
        record.energy_j,
        record.swap,
        record.cold_load,
        record.used_tracker,
        record.rescheduled,
        record.similarity,
    ]


def _record_from_row(row: list) -> FrameRecord:
    return FrameRecord(
        frame_index=row[0],
        model_name=row[1],
        accelerator_name=row[2],
        box=None if row[3] is None else BoundingBox(*row[3]),
        confidence=row[4],
        iou=row[5],
        ground_truth_present=row[6],
        detected=row[7],
        latency_s=row[8],
        inference_s=row[9],
        stall_s=row[10],
        overhead_s=row[11],
        energy_j=row[12],
        swap=row[13],
        cold_load=row[14],
        used_tracker=row[15],
        rescheduled=row[16],
        similarity=row[17],
    )


def _metrics_row(metrics: RunMetrics) -> dict:
    """RunMetrics as a flat dict keyed by its own field names."""
    return {
        "policy_name": metrics.policy_name,
        "scenario_name": metrics.scenario_name,
        "frames": metrics.frames,
        "mean_iou": metrics.mean_iou,
        "success_rate": metrics.success_rate,
        "mean_latency_s": metrics.mean_latency_s,
        "mean_energy_j": metrics.mean_energy_j,
        "total_energy_j": metrics.total_energy_j,
        "non_gpu_share": metrics.non_gpu_share,
        "swaps": metrics.swaps,
        "cold_loads": metrics.cold_loads,
        "pairs_used": metrics.pairs_used,
        "mean_overhead_s": metrics.mean_overhead_s,
        "detected_share": metrics.detected_share,
    }


def run_to_dict(result: RunResult, key: RunKey) -> dict:
    """Plain-dict form of a finished run (JSON-compatible)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm_version": RUN_ALGORITHM_VERSION,
        "policy_name": result.policy_name,
        "scenario_name": result.scenario_name,
        "policy_fingerprint": key.policy_fingerprint,
        "scenario_fingerprint": key.scenario_fingerprint,
        "zoo_fingerprint": key.zoo_fingerprint,
        "soc_fingerprint": key.soc_fingerprint,
        "engine_seed": key.engine_seed,
        "frame_count": result.frame_count,
        "metrics": _metrics_row(aggregate(result)),
        "records": [_record_row(record) for record in result.records],
    }


def _validate_identity(payload: dict, key: RunKey) -> None:
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise RunSchemaError(
            f"unsupported run schema {version!r}; this build reads version {SCHEMA_VERSION}"
        )
    algorithm = payload.get("algorithm_version")
    if algorithm != RUN_ALGORITHM_VERSION:
        raise RunSchemaError(
            f"run was produced by algorithm version {algorithm!r}; this build produces "
            f"version {RUN_ALGORITHM_VERSION} — rerun (delete the store entry)"
        )
    for label in ("policy_name", "policy_fingerprint", "scenario_fingerprint",
                  "zoo_fingerprint", "soc_fingerprint"):
        if payload.get(label) != getattr(key, label):
            raise RunSchemaError(f"persisted run has a different {label} (key mismatch)")
    if payload.get("engine_seed") != key.engine_seed:
        raise RunSchemaError("persisted run used a different engine seed (key mismatch)")


def run_from_dict(payload: dict, key: RunKey) -> RunResult:
    """Rebuild a run from its dict form, validating identity and shape."""
    _validate_identity(payload, key)
    try:
        records = [_record_from_row(row) for row in payload["records"]]
        result = RunResult(
            policy_name=payload["policy_name"],
            scenario_name=payload["scenario_name"],
            records=records,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise RunSchemaError(f"malformed run payload: {exc}") from exc
    if payload.get("frame_count") != result.frame_count:
        raise RunSchemaError(
            f"run payload declares {payload.get('frame_count')!r} frames but carries "
            f"{result.frame_count} records"
        )
    return result


def metrics_from_dict(payload: dict, key: RunKey) -> RunMetrics:
    """The pre-aggregated metrics block of a persisted run."""
    _validate_identity(payload, key)
    try:
        return RunMetrics(**payload["metrics"])
    except (KeyError, TypeError) as exc:
        raise RunSchemaError(f"malformed run metrics: {exc}") from exc


def _run_file_name(digest: str, fmt: str = "binary") -> str:
    """The entry file name for one run-key digest in the given format.

    The algorithm version is part of the name, so bumping it orphans
    stale files (treated as misses) rather than erroring on them.
    """
    suffix = colfmt.COL_SUFFIX if fmt == "binary" else ".json"
    return f"run-v{RUN_ALGORITHM_VERSION}-{digest[:32]}{suffix}"


def _index_meta(payload: dict) -> dict:
    """The identity block a shard index records for one run entry."""
    return {
        "policy_name": payload.get("policy_name"),
        "scenario_name": payload.get("scenario_name"),
        "policy_fingerprint": payload.get("policy_fingerprint"),
        "scenario_fingerprint": payload.get("scenario_fingerprint"),
        "engine_seed": payload.get("engine_seed"),
        "algorithm_version": payload.get("algorithm_version"),
    }


class RunStore:
    """A sharded directory of persisted policy runs, content-addressed by run key.

    Mirrors :class:`~repro.runtime.store.TraceStore`: entries shard by
    run-key-digest prefix under ``root/<2-hex>/``, each shard carries an
    index, and all writes are atomic (temp + ``os.replace``) under the
    shard's advisory lock (:mod:`repro.runtime.shards`) — so service
    worker threads, parallel sweep workers, and whole separate processes
    can race on the same keys and only ever leave complete files behind.
    Loads re-validate the full identity block.  An entry that cannot even
    be parsed is the same as a missing one — a miss, counted in
    :attr:`corrupt_entries` and removed; a parseable entry that does not
    match its key is a loud :class:`RunSchemaError`.  Never a silently
    wrong run.
    """

    #: Globs matching this store's entry files, both formats.
    ENTRY_PATTERNS = ("run-*.json", "run-*.col")

    def __init__(self, root: str | Path, *, write_format: str | None = None) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(f"run store path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        #: Format new saves are written in ("binary" | "json"); both
        #: formats are always *read*.
        self.write_format = resolve_write_format(write_format)
        #: Unreadable entries encountered (and removed) by this instance.
        self.corrupt_entries = 0
        #: Abandoned temp files swept at open (crashed writers' leftovers).
        self.stale_temps_cleaned = shards.clean_stale_temps(self.root)
        self._migrate_legacy_entries()
        #: JSON entries re-encoded to the binary format by this open.
        self.format_migrated = 0
        self._migrate_format_entries()

    def _migrate_legacy_entries(self) -> None:
        """Move flat-layout entries (pre-sharding stores) into their shards."""

        def digest_for(path: Path) -> str | None:
            parts = path.stem.split("-")  # run-v<A>-<digest32>
            return parts[2] if len(parts) == 3 and len(parts[2]) == 32 else None

        def meta_for(path: Path) -> dict | None:
            try:
                payload = jsonsafe.loads(iolayer.read_text(path, root=self.root))
            except (OSError, json.JSONDecodeError):
                self.corrupt_entries += 1
                return None
            if not isinstance(payload, dict):
                self.corrupt_entries += 1
                return None
            return _index_meta(payload)

        shards.migrate_flat_entries(self.root, "run-*.json", digest_for, meta_for)

    def _migrate_format_entries(self) -> None:
        """Re-encode existing JSON entries as binary columns (binary writer only).

        Same discipline as :meth:`TraceStore._migrate_format_entries`:
        per-entry shard locking, the ``.json`` twin superseded in the same
        critical section, unreadable/unencodable entries skipped, and a
        degraded disk aborts the sweep rather than failing the open.
        """
        if self.write_format != "binary":
            return
        for path in list(shards.iter_entry_paths(self.root, "run-*.json")):
            if path.parent == self.root:
                continue  # legacy flat leftovers: not this migration's job
            shard = path.parent
            try:
                with shards.shard_lock(shard):
                    if not path.exists():  # another opener migrated it first
                        continue
                    try:
                        payload = jsonsafe.loads(iolayer.read_text(path, root=self.root))
                    except (OSError, json.JSONDecodeError):  # repro: allow[exceptions/swallow] unreadable/corrupt entries stay JSON; scrub handles them
                        continue
                    if not isinstance(payload, dict):
                        continue
                    try:
                        data = colfmt.encode_run(payload)
                    except (KeyError, TypeError, ValueError, IndexError):  # repro: allow[exceptions/swallow] unencodable payloads stay JSON (still servable)
                        continue
                    name = colfmt.entry_stem(path.name) + colfmt.COL_SUFFIX
                    shards.write_entry_locked(
                        shard, name, data, _index_meta(payload), supersedes=(path.name,)
                    )
                    self.format_migrated += 1
            except iolayer.StoreDegraded:
                break

    def path_for(self, key: RunKey) -> Path:
        """The (sharded) file a run persists to.

        Prefers whichever format actually exists on disk (binary probed
        first); for a not-yet-saved key, the write-format name.
        """
        digest = key.digest()
        shard = shards.shard_dir(self.root, digest)
        for fmt in STORE_FORMATS:
            path = shard / _run_file_name(digest, fmt)
            if path.exists():
                return path
        return shard / _run_file_name(digest, self.write_format)

    def save(self, result: RunResult, key: RunKey) -> Path:
        """Persist a finished run; returns the file written.

        The sibling-format twin (if any) is superseded under the same
        shard lock, so at most one format serves a logical entry.
        """
        digest = key.digest()
        payload = run_to_dict(result, key)
        if self.write_format == "binary":
            data: str | bytes = colfmt.encode_run(payload)
        else:
            data = jsonsafe.dumps(payload)
        other = "json" if self.write_format == "binary" else "binary"
        return shards.write_entry(
            self.root,
            digest,
            _run_file_name(digest, self.write_format),
            data,
            _index_meta(payload),
            supersedes=(_run_file_name(digest, other),),
        )

    def commit(self, result: RunResult, key: RunKey) -> tuple[Path, bool]:
        """Idempotently persist a run: ``(path, True)`` only for the first commit.

        The at-most-once-in-effect primitive for crash-safe execution: a
        re-executed job (lease expired, worker killed after ``save`` but
        before acknowledging) produces bit-identical content, so a second
        commit observes the existing readable entry and writes nothing.
        A torn entry left by a crashed writer is quarantined by the
        ``load_metrics`` probe and then overwritten — corrupt bytes are
        never served and never block a retry.
        """
        if self.load_metrics(key) is not None:
            return self.path_for(key), False
        return self.save(result, key), True

    def _payload(
        self, key: RunKey, *, header_only: bool = False, _retry: bool = True
    ) -> dict | None:
        """The decoded payload for ``key`` from either format, or None.

        ``header_only`` skips the record columns of a binary entry — the
        identity block and pre-aggregated metrics live in its JSON header,
        so :meth:`load_metrics` (the warm-sweep hot path) reads a few KiB
        regardless of run length.  JSON entries always parse fully.

        A read ``OSError`` (post-retry, through the seam) is a plain miss:
        the entry is *unavailable*, not corrupt, and must never be
        quarantined for it.  Only a genuine parse failure quarantines.
        """
        digest = key.digest()
        shard = shards.shard_dir(self.root, digest)
        binary_path = shard / _run_file_name(digest, "binary")
        payload: dict | None
        try:
            if header_only:
                payload = colfmt.read_run_header(binary_path, root=self.root)
            else:
                buffer = iolayer.read_bytes(binary_path, root=self.root, map=True)
                payload = colfmt.decode_run(buffer)
        except FileNotFoundError:
            payload = None  # fall through to the JSON twin
        except OSError:
            return None  # unavailable, not corrupt: a miss, already counted
        except colfmt.ColumnFormatError:
            # Corrupt binary: quarantine, then retry once — serving the
            # JSON twin (same content address) or a repaired entry.
            self._quarantine(digest, binary_path.name)
            if _retry:
                return self._payload(key, header_only=header_only, _retry=False)
            return None
        if payload is not None:
            return payload

        json_path = shard / _run_file_name(digest, "json")
        try:
            payload = jsonsafe.loads(iolayer.read_text(json_path, root=self.root))
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unavailable, not corrupt
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            if not self._quarantine(digest, json_path.name) and _retry:
                # A concurrent writer replaced the entry mid-read; retry
                # once against the now-complete file.
                return self._payload(key, header_only=header_only, _retry=False)
            return None
        return payload

    def _quarantine(self, digest: str, name: str) -> bool:
        """Quarantine one corrupt entry; True when it was moved (counted)."""
        try:
            quarantined = shards.quarantine_corrupt_entry(self.root, digest, name)
        except iolayer.StoreDegraded:
            # Quarantine bookkeeping hit a full disk: the entry is still
            # unservable, so this load is a miss either way.
            self.corrupt_entries += 1
            return True
        if quarantined:
            self.corrupt_entries += 1
        return quarantined

    def load(self, key: RunKey) -> RunResult | None:
        """Load the persisted run for ``key``, or None if absent.

        Unreadable entries (torn by a crash) are misses too — counted in
        :attr:`corrupt_entries` and removed, never served.
        """
        payload = self._payload(key)
        if payload is None:
            return None
        return run_from_dict(payload, key)

    def load_metrics(self, key: RunKey) -> RunMetrics | None:
        """Load only the pre-aggregated metrics of a persisted run.

        The warm-sweep fast path: a binary entry serves this from its
        few-KiB column header (record columns never read); a JSON entry
        costs one parse + one dataclass construction.
        """
        payload = self._payload(key, header_only=True)
        if payload is None:
            return None
        return metrics_from_dict(payload, key)

    def __contains__(self, key: RunKey) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in shards.iter_entry_paths(self.root, self.ENTRY_PATTERNS))

    def clear(self) -> int:
        """Delete every persisted run (both formats); returns how many were removed."""
        removed = 0
        for path in list(shards.iter_entry_paths(self.root, self.ENTRY_PATTERNS)):
            if path.parent == self.root:  # legacy flat file written after open
                path.unlink(missing_ok=True)
                removed += 1
                continue
            if shards.remove_entry(self.root, path.stem.split("-")[2], path.name):
                removed += 1
        return removed

    def audit(self) -> tuple[int, list[str]]:
        """Cross-check shard indexes against entry files; see :func:`shards.audit_entries`."""
        return shards.audit_entries(self.root, self.ENTRY_PATTERNS)

    # ------------------------------------------------------------ health

    @property
    def degraded(self) -> bool:
        """True while this store's root is in read-only (capacity) mode."""
        return iolayer.is_degraded(self.root)

    @property
    def io_errors(self) -> int:
        """I/O errors observed under this root (skipped paths included)."""
        return iolayer.io_error_count(self.root)

    # ------------------------------------------------------- maintenance

    def scrub(self) -> maintenance.ScrubReport:
        """Re-verify schema + recomputed run-key digest of every entry."""
        return maintenance.scrub_entries(
            self.root, self.ENTRY_PATTERNS, _scrub_problem, digest_for=_digest_from_name
        )

    def gc(
        self,
        *,
        ttl_seconds: float = maintenance.DEFAULT_TTL_SECONDS,
        dry_run: bool = True,
        now: float | None = None,
    ) -> maintenance.GcReport:
        """TTL-collect quarantined files and stale temps (dry-run default)."""
        return maintenance.gc_entries(
            self.root, ttl_seconds=ttl_seconds, dry_run=dry_run, now=now
        )

    def repair(self) -> maintenance.RepairReport:
        """Heal index↔disk drift (drop ghosts, re-index parseable orphans)."""
        return maintenance.repair_entries(
            self.root, self.ENTRY_PATTERNS, lambda name, payload: _index_meta(payload)
        )


def _digest_from_name(name: str) -> str | None:
    """The shard digest encoded in a run entry file name (either format)."""
    stem = colfmt.entry_stem(name)
    parts = stem.split("-") if stem != name else []
    return parts[2] if len(parts) == 3 and len(parts[2]) == 32 else None


def _scrub_problem(name: str, payload: dict) -> str | None:
    """Why a parsed run entry is unsound, or None when it checks out.

    The strongest check a scrub can make without replaying the run:
    rebuild the :class:`RunKey` from the payload's identity block and
    require its digest to reproduce the file name — a payload whose
    fingerprints were tampered with (or torn into another entry's slot)
    cannot pass.
    """
    if payload.get("schema_version") != SCHEMA_VERSION:
        return f"schema_version {payload.get('schema_version')!r} != {SCHEMA_VERSION}"
    if payload.get("algorithm_version") != RUN_ALGORITHM_VERSION:
        return (
            f"algorithm_version {payload.get('algorithm_version')!r} "
            f"!= {RUN_ALGORITHM_VERSION}"
        )
    try:
        key = RunKey(
            policy_name=payload["policy_name"],
            policy_fingerprint=payload["policy_fingerprint"],
            scenario_fingerprint=payload["scenario_fingerprint"],
            zoo_fingerprint=payload["zoo_fingerprint"],
            soc_fingerprint=payload["soc_fingerprint"],
            engine_seed=payload["engine_seed"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        return f"identity block incomplete ({exc})"
    digest = _digest_from_name(name)
    if digest is not None and not key.digest().startswith(digest):
        return "recomputed run-key digest does not match file name"
    records = payload.get("records")
    if not isinstance(records, list):
        return "records block is not a list"
    if payload.get("frame_count") != len(records):
        return (
            f"frame_count {payload.get('frame_count')!r} does not match "
            f"{len(records)} records"
        )
    if not isinstance(payload.get("metrics"), dict):
        return "metrics block is not an object"
    return None
