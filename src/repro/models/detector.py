"""Simulated object detection: scene in, scored bounding boxes out.

Given a :class:`~repro.models.spec.ModelSpec` and the latent
:class:`~repro.data.scene.SceneState` of a frame, the detector produces the
outcome a real network would: a set of candidate boxes (the true target
response plus clutter distractors), reduced by NMS, with a reported
confidence score.  Misses emerge naturally — when the calibrated confidence
of the target response falls below the NMS confidence threshold the
detection is dropped, exactly how a deployed YOLO head loses a target.

Determinism: every stochastic draw comes from an RNG seeded by
``(context_id, model)``, with a *shared* scene-noise component common to
all models on the same frame.  That shared component is what makes
different models' confidence scores co-vary — the statistical structure
the confidence graph mines.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..data.scene import SceneState, combine_difficulty, difficulty_components, scene_difficulty
from ..vision.bbox import BoundingBox, iou as box_iou
from ..vision.nms import DEFAULT_CONFIDENCE_THRESHOLD, ScoredBox, best_detection
from .fastrng import DrawPool, pcg64_state_words
from .spec import ModelSpec

# Salt that namespaces this simulator's RNG streams.
_STREAM_SALT = 0x5E1F7

# Standard deviation of the shared per-frame context noise.
SCENE_NOISE_SIGMA = 0.045

# Temporal correlation of the noise streams: video noise is smooth, not
# iid — a model that barely clears the detection threshold on frame t
# usually clears it on frame t+1 too.  Quality noise is a blend of a
# slowly varying component (cosine-interpolated between Gaussian knots
# every _SLOW_PERIOD frames) and an iid component.
_SLOW_PERIOD = 22.0
_SLOW_FRACTION = 0.8  # fraction of the noise *variance* in the slow part

ContextId = tuple[int, int]


@dataclass(frozen=True)
class DetectionOutcome:
    """What one model reported on one frame.

    ``confidence`` is the model's reported score: the surviving detection's
    score when there is one, otherwise the strongest sub-threshold candidate
    response (real runtimes observe those too).  ``quality`` is the latent
    detection quality — visible to the simulator and to oracle baselines,
    never to SHIFT.
    """

    model_name: str
    box: BoundingBox | None
    confidence: float
    iou: float
    quality: float
    detected: bool
    false_positive: bool


def _model_rng(context_id: ContextId, spec: ModelSpec) -> np.random.Generator:
    return np.random.default_rng((_STREAM_SALT, context_id[0], context_id[1], spec.salt))


def _knot(stream: int, salt: int, index: int, sigma: float) -> float:
    rng = np.random.default_rng((_STREAM_SALT, stream, salt, index))
    return float(rng.normal(0.0, sigma))


def _smooth_noise(stream: int, salt: int, t: float, sigma: float) -> float:
    """Cosine-interpolated Gaussian knot noise: smooth in ``t``, var sigma^2."""
    position = t / _SLOW_PERIOD
    index = int(np.floor(position))
    frac = position - index
    weight = (1.0 - np.cos(np.pi * frac)) / 2.0
    a = _knot(stream, salt, index, sigma)
    b = _knot(stream, salt, index + 1, sigma)
    return float(a * (1.0 - weight) + b * weight)


def _correlated_noise(stream: int, salt: int, context_id: ContextId, sigma: float) -> float:
    """Blend of slow (temporally smooth) and iid noise with total std sigma."""
    slow_sigma = sigma * np.sqrt(_SLOW_FRACTION)
    iid_sigma = sigma * np.sqrt(1.0 - _SLOW_FRACTION)
    slow = _smooth_noise(stream, salt, float(context_id[1]), slow_sigma)
    iid_rng = np.random.default_rng((_STREAM_SALT, stream, salt, context_id[0], context_id[1]))
    return slow + float(iid_rng.normal(0.0, iid_sigma))


def shared_scene_noise(context_id: ContextId) -> float:
    """The per-frame context noise common to every model.

    Smooth over frame index within one stream (``context_id[0]`` selects
    the stream), so consecutive frames see similar conditions.
    """
    return _correlated_noise(0, context_id[0], context_id, SCENE_NOISE_SIGMA)


def _perturbed_target_box(
    truth: BoundingBox,
    quality: float,
    scene: SceneState,
    spec: ModelSpec,
    context_id: ContextId,
) -> BoundingBox:
    """The model's localization of the target: error grows as quality drops.

    The error components are temporally smooth (correlated noise streams):
    a real detector's box drifts around the target over consecutive frames
    rather than teleporting, which keeps per-model IoU stable within a
    scene segment — the stability the Oracle baselines and the momentum
    buffer rely on.
    """
    slack = 1.0 - quality
    offset_sigma = 0.22 * slack * max(truth.width, 2.0)
    dx = _correlated_noise(spec.salt + 1, context_id[0], context_id, offset_sigma)
    dy = _correlated_noise(spec.salt + 2, context_id[0], context_id, offset_sigma)
    log_scale = _correlated_noise(spec.salt + 3, context_id[0], context_id, 0.16 * slack)
    scale = float(np.exp(log_scale))
    cx, cy = truth.center
    box = BoundingBox.from_center(cx + dx, cy + dy, truth.width * scale, truth.height * scale)
    return box.clipped(float(scene.frame_size), float(scene.frame_size))


def _distractor_boxes(
    spec: ModelSpec,
    scene: SceneState,
    clutter: float,
    camouflage: float,
    rng: np.random.Generator,
) -> list[ScoredBox]:
    """Clutter responses: spurious candidates on busy backgrounds."""
    intensity = spec.false_positive_rate * (0.8 * clutter + 0.4 * camouflage)
    count = int(rng.poisson(intensity))
    size = float(scene.frame_size)
    distractors = []
    for _ in range(count):
        w = float(rng.uniform(0.04, 0.22)) * size
        h = w * float(rng.uniform(0.5, 1.1))
        cx = float(rng.uniform(0.1, 0.9)) * size
        cy = float(rng.uniform(0.1, 0.9)) * size
        # Distractor scores concentrate low but overconfident families push
        # them higher — the bias term leaks into clutter responses too.
        score = float(
            np.clip(rng.uniform(0.05, 0.30) + 0.6 * spec.calibration.bias * clutter, 0.0, 0.95)
        )
        box = BoundingBox.from_center(cx, cy, w, h).clipped(size, size)
        if not box.is_degenerate():
            distractors.append(ScoredBox(box=box, score=score))
    return distractors


def detect(spec: ModelSpec, scene: SceneState, context_id: ContextId) -> DetectionOutcome:
    """Run one simulated inference of ``spec`` on the frame ``context_id``.

    ``context_id`` identifies the frame globally — typically
    ``(scenario_seed, frame_index)`` — and fully determines the outcome
    together with the model name, so traces are reproducible and two
    policies that run the same model on the same frame observe identical
    results.
    """
    rng = _model_rng(context_id, spec)
    truth = scene.ground_truth_box()
    components = difficulty_components(scene)
    clutter = components["clutter"]
    camouflage = components["camouflage"]

    # Latent quality: skill at this difficulty, shifted by shared scene
    # noise (common across models) and private model noise; both are
    # temporally smooth within a stream.
    difficulty = scene_difficulty(scene)
    shared = shared_scene_noise(context_id) * spec.scene_sensitivity
    private = _correlated_noise(spec.salt, context_id[0], context_id, spec.model_noise)
    quality = float(np.clip(spec.skill.quality(difficulty) + shared + private, 0.0, 1.0))

    candidates = _distractor_boxes(spec, scene, clutter, camouflage, rng)
    true_candidate: ScoredBox | None = None
    if truth is not None and quality >= spec.no_response_floor:
        predicted = _perturbed_target_box(truth, quality, scene, spec, context_id)
        if not predicted.is_degenerate():
            conf = spec.calibration.scale * quality + spec.calibration.bias
            conf += _correlated_noise(spec.salt + 4, context_id[0], context_id, spec.calibration.noise)
            conf = float(np.clip(conf, 0.0, 1.0))
            true_candidate = ScoredBox(box=predicted, score=conf)
            candidates.append(true_candidate)

    best = best_detection(candidates)
    if best is None:
        # Nothing crossed the confidence threshold: report the strongest
        # sub-threshold response as the model's score.
        top_score = max((c.score for c in candidates), default=0.02)
        return DetectionOutcome(
            model_name=spec.name,
            box=None,
            confidence=float(top_score),
            iou=0.0,
            quality=quality,
            detected=False,
            false_positive=False,
        )

    achieved_iou = box_iou(best.box, truth) if truth is not None else 0.0
    is_false_positive = truth is None or (
        true_candidate is not None and best.box is not true_candidate.box and achieved_iou < 0.1
    ) or (truth is not None and true_candidate is None)
    return DetectionOutcome(
        model_name=spec.name,
        box=best.box,
        confidence=best.score,
        iou=float(achieved_iou),
        quality=quality,
        detected=True,
        false_positive=bool(is_false_positive),
    )


# --------------------------------------------------------------- batched


class SceneBatch:
    """Shared per-scenario precompute for batched detection sweeps.

    Everything :func:`detect` derives from the frames alone — ground-truth
    boxes, difficulty components, the shared scene noise, and the smooth
    noise scaffolding (knot indices, cosine weights, knot draws) — is
    computed once here and reused by every model's :func:`detect_batch`
    sweep.  The cosine weights are evaluated with the same scalar ``np.cos``
    calls :func:`_smooth_noise` makes (one per frame, cached for all
    streams), so the batch can never diverge from the scalar path on
    platforms where NumPy's vectorized transcendentals differ from the
    scalar ones; everything else is plain ``+ - * /`` arithmetic, which is
    IEEE-exact elementwise.

    ``frame_indices`` defaults to ``0..n-1`` (a scenario's frames) but may
    be any per-scene frame identities — the characterization profiler
    passes validation-sample indices.
    """

    def __init__(
        self,
        scenes: Sequence[SceneState],
        stream_seed: int,
        frame_indices: Sequence[int] | np.ndarray | None = None,
        truths: Sequence[BoundingBox | None] | None = None,
        difficulties: Sequence[float] | None = None,
    ) -> None:
        self.scenes = list(scenes)
        self.seed = int(stream_seed)
        count = len(self.scenes)
        if frame_indices is None:
            self.frame_indices = np.arange(count, dtype=np.int64)
        else:
            self.frame_indices = np.asarray(frame_indices, dtype=np.int64)
            if len(self.frame_indices) != count:
                raise ValueError("frame_indices must align with scenes")
        self._pool = DrawPool()
        # Ground-truth boxes and difficulties are pure functions of the
        # scenes; callers that already hold them (rendered frames, samples)
        # pass them in rather than re-deriving.
        if truths is None:
            truths = [scene.ground_truth_box() for scene in self.scenes]
        elif len(truths) != count:
            raise ValueError("truths must align with scenes")
        self.truths = list(truths)
        self.components = [difficulty_components(scene) for scene in self.scenes]
        if difficulties is None:
            # Same blend as scene_difficulty, reusing the components
            # already computed above (a missing truth box means invisible
            # or fully clipped — difficulty 1.0 by definition).
            difficulties = [
                1.0 if truth is None else combine_difficulty(components)
                for truth, components in zip(self.truths, self.components, strict=True)
            ]
        elif len(difficulties) != count:
            raise ValueError("difficulties must align with scenes")
        self.difficulties = list(difficulties)
        position = self.frame_indices.astype(np.float64) / _SLOW_PERIOD
        index = np.floor(position)
        frac = position - index
        self.knot_index = index.astype(np.int64)
        self.knot_weight = np.array(
            [(1.0 - np.cos(np.pi * f)) / 2.0 for f in frac], dtype=np.float64
        )
        self._knot_z: dict[int, np.ndarray] = {}
        self._shared_noise: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.scenes)

    def _knot_draws(self, stream: int) -> np.ndarray:
        """Standard-normal knot values ``z`` for one noise stream.

        ``_knot(stream, seed, index, sigma)`` equals ``sigma * z[index]``
        (NumPy evaluates ``normal(0, sigma)`` as ``loc + scale * z``), so
        per-frame sigmas can scale a shared z array.
        """
        draws = self._knot_z.get(stream)
        if draws is None:
            top = int(self.knot_index.max()) + 2 if len(self.knot_index) else 0
            words = pcg64_state_words(
                [_STREAM_SALT, stream, self.seed, np.arange(top, dtype=np.int64)],
                count=top,
            )
            draws = self._pool.first_normals(words)
            self._knot_z[stream] = draws
        return draws

    def correlated_noise(
        self,
        stream: int,
        sigma: float | np.ndarray,
        select: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :func:`_correlated_noise` for one stream.

        ``sigma`` is a scalar or an array aligned with ``select`` (frame
        positions into this batch); returns one value per selected frame,
        bit-identical to the scalar calls.
        """
        z = self._knot_draws(stream)
        if select is None:
            index, weight, frames = self.knot_index, self.knot_weight, self.frame_indices
        else:
            index = self.knot_index[select]
            weight = self.knot_weight[select]
            frames = self.frame_indices[select]
        slow_sigma = sigma * np.sqrt(_SLOW_FRACTION)
        a = slow_sigma * z[index]
        b = slow_sigma * z[index + 1]
        slow = a * (1.0 - weight) + b * weight
        # Each entropy row depends only on its own frame index, so hash
        # seed words for the selected frames alone.
        words = pcg64_state_words(
            [_STREAM_SALT, stream, self.seed, self.seed, frames], count=len(frames)
        )
        iid_sigma = sigma * np.sqrt(1.0 - _SLOW_FRACTION)
        return slow + iid_sigma * self._pool.first_normals(words)

    @property
    def shared_noise(self) -> np.ndarray:
        """:func:`shared_scene_noise` per frame (computed once, all models)."""
        if self._shared_noise is None:
            self._shared_noise = self.correlated_noise(0, SCENE_NOISE_SIGMA)
        return self._shared_noise

    def model_rng_words(self, spec: ModelSpec) -> np.ndarray:
        """Seed words of :func:`_model_rng` for every frame of the batch."""
        return pcg64_state_words(
            [_STREAM_SALT, self.seed, self.frame_indices, spec.salt],
            count=len(self.frame_indices),
        )

    def model_rng_at(self, words_row: np.ndarray) -> np.random.Generator:
        """A generator positioned exactly like a fresh :func:`_model_rng`."""
        return self._pool.generator_for(words_row)


def detect_batch(spec: ModelSpec, batch: SceneBatch) -> list[DetectionOutcome]:
    """Run ``spec`` over every frame of ``batch`` — the vectorized hot path.

    Outcomes are bit-identical to ``[detect(spec, scene, (seed, index))
    for ...]``: every RNG stream is seeded by the same ``(context_id,
    model)`` contract, only materialized in bulk.  Noise, quality, and
    confidence draws are computed as arrays across all frames; only the
    irreducibly per-frame parts (box objects, NMS over a handful of
    candidates, distractor sampling from the per-frame model RNG) stay
    scalar.
    """
    scenes = batch.scenes
    count = len(scenes)
    if count == 0:
        return []

    quality_skill = np.array(
        [spec.skill.quality(d) for d in batch.difficulties], dtype=np.float64
    )
    shared = batch.shared_noise * spec.scene_sensitivity
    private = batch.correlated_noise(spec.salt, spec.model_noise)
    quality = np.clip(quality_skill + shared + private, 0.0, 1.0)

    has_truth = np.array([t is not None for t in batch.truths], dtype=bool)
    responding = np.flatnonzero(has_truth & (quality >= spec.no_response_floor))

    # The model's localization of the target, where it responds at all.
    predicted: dict[int, BoundingBox] = {}
    if len(responding):
        slack = 1.0 - quality[responding]
        max_widths = np.array(
            [max(batch.truths[i].width, 2.0) for i in responding], dtype=np.float64
        )
        offset_sigma = 0.22 * slack * max_widths
        dx = batch.correlated_noise(spec.salt + 1, offset_sigma, select=responding)
        dy = batch.correlated_noise(spec.salt + 2, offset_sigma, select=responding)
        log_scale = batch.correlated_noise(spec.salt + 3, 0.16 * slack, select=responding)
        for j, i in enumerate(responding):
            truth = batch.truths[i]
            scale = float(np.exp(log_scale[j]))
            cx, cy = truth.center
            size = float(scenes[i].frame_size)
            box = BoundingBox.from_center(
                cx + float(dx[j]), cy + float(dy[j]), truth.width * scale, truth.height * scale
            ).clipped(size, size)
            if not box.is_degenerate():
                predicted[int(i)] = box

    confidence_by_frame: dict[int, float] = {}
    if predicted:
        localized = np.array(sorted(predicted), dtype=np.int64)
        noise = batch.correlated_noise(
            spec.salt + 4, spec.calibration.noise, select=localized
        )
        base = spec.calibration.scale * quality[localized] + spec.calibration.bias
        confidences = np.clip(base + noise, 0.0, 1.0)
        confidence_by_frame = {
            int(i): float(c) for i, c in zip(localized, confidences, strict=True)
        }

    model_words = batch.model_rng_words(spec)
    outcomes: list[DetectionOutcome] = []
    for i, scene in enumerate(scenes):
        rng = batch.model_rng_at(model_words[i])
        components = batch.components[i]
        candidates = _distractor_boxes(
            spec, scene, components["clutter"], components["camouflage"], rng
        )
        true_candidate: ScoredBox | None = None
        box = predicted.get(i)
        if box is not None:
            true_candidate = ScoredBox(box=box, score=confidence_by_frame[i])
            candidates.append(true_candidate)

        # NMS: the common cases (zero or one candidate) shortcut the full
        # suppression pass; single-candidate NMS reduces to the threshold.
        if not candidates:
            best = None
        elif len(candidates) == 1:
            best = candidates[0] if candidates[0].score >= DEFAULT_CONFIDENCE_THRESHOLD else None
        else:
            best = best_detection(candidates)

        frame_quality = float(quality[i])
        truth = batch.truths[i]
        if best is None:
            top_score = max((c.score for c in candidates), default=0.02)
            outcomes.append(
                DetectionOutcome(
                    model_name=spec.name,
                    box=None,
                    confidence=float(top_score),
                    iou=0.0,
                    quality=frame_quality,
                    detected=False,
                    false_positive=False,
                )
            )
            continue
        achieved_iou = box_iou(best.box, truth) if truth is not None else 0.0
        is_false_positive = truth is None or (
            true_candidate is not None and best.box is not true_candidate.box and achieved_iou < 0.1
        ) or (truth is not None and true_candidate is None)
        outcomes.append(
            DetectionOutcome(
                model_name=spec.name,
                box=best.box,
                confidence=best.score,
                iou=float(achieved_iou),
                quality=frame_quality,
                detected=True,
                false_positive=bool(is_false_positive),
            )
        )
    return outcomes
