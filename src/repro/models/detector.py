"""Simulated object detection: scene in, scored bounding boxes out.

Given a :class:`~repro.models.spec.ModelSpec` and the latent
:class:`~repro.data.scene.SceneState` of a frame, the detector produces the
outcome a real network would: a set of candidate boxes (the true target
response plus clutter distractors), reduced by NMS, with a reported
confidence score.  Misses emerge naturally — when the calibrated confidence
of the target response falls below the NMS confidence threshold the
detection is dropped, exactly how a deployed YOLO head loses a target.

Determinism: every stochastic draw comes from an RNG seeded by
``(context_id, model)``, with a *shared* scene-noise component common to
all models on the same frame.  That shared component is what makes
different models' confidence scores co-vary — the statistical structure
the confidence graph mines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.scene import SceneState, difficulty_components, scene_difficulty
from ..vision.bbox import BoundingBox, iou as box_iou
from ..vision.nms import ScoredBox, best_detection
from .spec import ModelSpec

# Salt that namespaces this simulator's RNG streams.
_STREAM_SALT = 0x5E1F7

# Standard deviation of the shared per-frame context noise.
SCENE_NOISE_SIGMA = 0.045

# Temporal correlation of the noise streams: video noise is smooth, not
# iid — a model that barely clears the detection threshold on frame t
# usually clears it on frame t+1 too.  Quality noise is a blend of a
# slowly varying component (cosine-interpolated between Gaussian knots
# every _SLOW_PERIOD frames) and an iid component.
_SLOW_PERIOD = 22.0
_SLOW_FRACTION = 0.8  # fraction of the noise *variance* in the slow part

ContextId = tuple[int, int]


@dataclass(frozen=True)
class DetectionOutcome:
    """What one model reported on one frame.

    ``confidence`` is the model's reported score: the surviving detection's
    score when there is one, otherwise the strongest sub-threshold candidate
    response (real runtimes observe those too).  ``quality`` is the latent
    detection quality — visible to the simulator and to oracle baselines,
    never to SHIFT.
    """

    model_name: str
    box: BoundingBox | None
    confidence: float
    iou: float
    quality: float
    detected: bool
    false_positive: bool


def _model_rng(context_id: ContextId, spec: ModelSpec) -> np.random.Generator:
    return np.random.default_rng((_STREAM_SALT, context_id[0], context_id[1], spec.salt))


def _knot(stream: int, salt: int, index: int, sigma: float) -> float:
    rng = np.random.default_rng((_STREAM_SALT, stream, salt, index))
    return float(rng.normal(0.0, sigma))


def _smooth_noise(stream: int, salt: int, t: float, sigma: float) -> float:
    """Cosine-interpolated Gaussian knot noise: smooth in ``t``, var sigma^2."""
    position = t / _SLOW_PERIOD
    index = int(np.floor(position))
    frac = position - index
    weight = (1.0 - np.cos(np.pi * frac)) / 2.0
    a = _knot(stream, salt, index, sigma)
    b = _knot(stream, salt, index + 1, sigma)
    return float(a * (1.0 - weight) + b * weight)


def _correlated_noise(stream: int, salt: int, context_id: ContextId, sigma: float) -> float:
    """Blend of slow (temporally smooth) and iid noise with total std sigma."""
    slow_sigma = sigma * np.sqrt(_SLOW_FRACTION)
    iid_sigma = sigma * np.sqrt(1.0 - _SLOW_FRACTION)
    slow = _smooth_noise(stream, salt, float(context_id[1]), slow_sigma)
    iid_rng = np.random.default_rng((_STREAM_SALT, stream, salt, context_id[0], context_id[1]))
    return slow + float(iid_rng.normal(0.0, iid_sigma))


def shared_scene_noise(context_id: ContextId) -> float:
    """The per-frame context noise common to every model.

    Smooth over frame index within one stream (``context_id[0]`` selects
    the stream), so consecutive frames see similar conditions.
    """
    return _correlated_noise(0, context_id[0], context_id, SCENE_NOISE_SIGMA)


def _perturbed_target_box(
    truth: BoundingBox,
    quality: float,
    scene: SceneState,
    spec: ModelSpec,
    context_id: ContextId,
) -> BoundingBox:
    """The model's localization of the target: error grows as quality drops.

    The error components are temporally smooth (correlated noise streams):
    a real detector's box drifts around the target over consecutive frames
    rather than teleporting, which keeps per-model IoU stable within a
    scene segment — the stability the Oracle baselines and the momentum
    buffer rely on.
    """
    slack = 1.0 - quality
    offset_sigma = 0.22 * slack * max(truth.width, 2.0)
    dx = _correlated_noise(spec.salt + 1, context_id[0], context_id, offset_sigma)
    dy = _correlated_noise(spec.salt + 2, context_id[0], context_id, offset_sigma)
    log_scale = _correlated_noise(spec.salt + 3, context_id[0], context_id, 0.16 * slack)
    scale = float(np.exp(log_scale))
    cx, cy = truth.center
    box = BoundingBox.from_center(cx + dx, cy + dy, truth.width * scale, truth.height * scale)
    return box.clipped(float(scene.frame_size), float(scene.frame_size))


def _distractor_boxes(
    spec: ModelSpec,
    scene: SceneState,
    clutter: float,
    camouflage: float,
    rng: np.random.Generator,
) -> list[ScoredBox]:
    """Clutter responses: spurious candidates on busy backgrounds."""
    intensity = spec.false_positive_rate * (0.8 * clutter + 0.4 * camouflage)
    count = int(rng.poisson(intensity))
    size = float(scene.frame_size)
    distractors = []
    for _ in range(count):
        w = float(rng.uniform(0.04, 0.22)) * size
        h = w * float(rng.uniform(0.5, 1.1))
        cx = float(rng.uniform(0.1, 0.9)) * size
        cy = float(rng.uniform(0.1, 0.9)) * size
        # Distractor scores concentrate low but overconfident families push
        # them higher — the bias term leaks into clutter responses too.
        score = float(
            np.clip(rng.uniform(0.05, 0.30) + 0.6 * spec.calibration.bias * clutter, 0.0, 0.95)
        )
        box = BoundingBox.from_center(cx, cy, w, h).clipped(size, size)
        if not box.is_degenerate():
            distractors.append(ScoredBox(box=box, score=score))
    return distractors


def detect(spec: ModelSpec, scene: SceneState, context_id: ContextId) -> DetectionOutcome:
    """Run one simulated inference of ``spec`` on the frame ``context_id``.

    ``context_id`` identifies the frame globally — typically
    ``(scenario_seed, frame_index)`` — and fully determines the outcome
    together with the model name, so traces are reproducible and two
    policies that run the same model on the same frame observe identical
    results.
    """
    rng = _model_rng(context_id, spec)
    truth = scene.ground_truth_box()
    components = difficulty_components(scene)
    clutter = components["clutter"]
    camouflage = components["camouflage"]

    # Latent quality: skill at this difficulty, shifted by shared scene
    # noise (common across models) and private model noise; both are
    # temporally smooth within a stream.
    difficulty = scene_difficulty(scene)
    shared = shared_scene_noise(context_id) * spec.scene_sensitivity
    private = _correlated_noise(spec.salt, context_id[0], context_id, spec.model_noise)
    quality = float(np.clip(spec.skill.quality(difficulty) + shared + private, 0.0, 1.0))

    candidates = _distractor_boxes(spec, scene, clutter, camouflage, rng)
    true_candidate: ScoredBox | None = None
    if truth is not None and quality >= spec.no_response_floor:
        predicted = _perturbed_target_box(truth, quality, scene, spec, context_id)
        if not predicted.is_degenerate():
            conf = spec.calibration.scale * quality + spec.calibration.bias
            conf += _correlated_noise(spec.salt + 4, context_id[0], context_id, spec.calibration.noise)
            conf = float(np.clip(conf, 0.0, 1.0))
            true_candidate = ScoredBox(box=predicted, score=conf)
            candidates.append(true_candidate)

    best = best_detection(candidates)
    if best is None:
        # Nothing crossed the confidence threshold: report the strongest
        # sub-threshold response as the model's score.
        top_score = max((c.score for c in candidates), default=0.02)
        return DetectionOutcome(
            model_name=spec.name,
            box=None,
            confidence=float(top_score),
            iou=0.0,
            quality=quality,
            detected=False,
            false_positive=False,
        )

    achieved_iou = box_iou(best.box, truth) if truth is not None else 0.0
    is_false_positive = truth is None or (
        true_candidate is not None and best.box is not true_candidate.box and achieved_iou < 0.1
    ) or (truth is not None and true_candidate is None)
    return DetectionOutcome(
        model_name=spec.name,
        box=best.box,
        confidence=best.score,
        iou=float(achieved_iou),
        quality=quality,
        detected=True,
        false_positive=bool(is_false_positive),
    )
