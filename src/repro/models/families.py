"""The paper's eight object-detection models as simulated specs.

Skill-curve and calibration parameters were fitted (scripts/tune_models.py)
so that each model's average IoU and success rate on the synthetic
validation set land on the paper's Table IV values.  The qualitative
structure is what matters and is preserved:

* YoloV7 is the best all-rounder; the heavier E6E/X variants hold up
  further into hard contexts but average slightly lower (Table IV shows
  exactly this non-monotonicity).
* YoloV7-Tiny matches the big models on easy frames and collapses earlier.
* The SSD family trades accuracy for cost and is systematically
  over-confident — reported scores exceed true quality on hard frames,
  which is why raw confidence cannot be compared across architectures and
  the confidence graph is needed.
"""

from __future__ import annotations

from .spec import ConfidenceCalibration, ModelSpec, SkillCurve

# Family-level calibration: YOLO heads are roughly honest; SSD heads are
# over-confident (positive bias, compressed scale).
_YOLO_CALIBRATION = ConfidenceCalibration(scale=1.00, bias=0.03, noise=0.045)
_SSD_CALIBRATION = ConfidenceCalibration(scale=0.78, bias=0.20, noise=0.060)

YOLO_FAMILY = "yolov7"
SSD_FAMILY = "ssd"


def paper_specs() -> list[ModelSpec]:
    """The eight models of Table IV, largest to smallest."""
    return [
        ModelSpec(
            name="yolov7-e6e",
            family=YOLO_FAMILY,
            input_size=640,
            params_millions=151.7,
            skill=SkillCurve(peak=0.600, break_point=0.620, width=0.185),
            calibration=_YOLO_CALIBRATION,
            scene_sensitivity=0.85,
            model_noise=0.050,
            false_positive_rate=0.40,
        ),
        ModelSpec(
            name="yolov7-x",
            family=YOLO_FAMILY,
            input_size=640,
            params_millions=71.3,
            skill=SkillCurve(peak=0.659, break_point=0.580, width=0.175),
            calibration=_YOLO_CALIBRATION,
            scene_sensitivity=0.90,
            model_noise=0.050,
            false_positive_rate=0.42,
        ),
        ModelSpec(
            name="yolov7",
            family=YOLO_FAMILY,
            input_size=640,
            params_millions=36.9,
            skill=SkillCurve(peak=0.696, break_point=0.540, width=0.165),
            calibration=_YOLO_CALIBRATION,
            scene_sensitivity=1.00,
            model_noise=0.050,
            false_positive_rate=0.45,
        ),
        ModelSpec(
            name="yolov7-tiny",
            family=YOLO_FAMILY,
            input_size=640,
            params_millions=6.2,
            skill=SkillCurve(peak=0.728, break_point=0.450, width=0.150),
            calibration=_YOLO_CALIBRATION,
            scene_sensitivity=1.10,
            model_noise=0.055,
            false_positive_rate=0.55,
        ),
        ModelSpec(
            name="ssd-resnet50",
            family=SSD_FAMILY,
            input_size=640,
            params_millions=43.0,
            skill=SkillCurve(peak=0.724, break_point=0.370, width=0.170),
            calibration=_SSD_CALIBRATION,
            scene_sensitivity=1.00,
            model_noise=0.060,
            false_positive_rate=0.65,
        ),
        ModelSpec(
            name="ssd-mobilenet-v1",
            family=SSD_FAMILY,
            input_size=640,
            params_millions=13.2,
            skill=SkillCurve(peak=0.658, break_point=0.345, width=0.165),
            calibration=_SSD_CALIBRATION,
            scene_sensitivity=1.05,
            model_noise=0.060,
            false_positive_rate=0.70,
        ),
        ModelSpec(
            name="ssd-mobilenet-v2",
            family=SSD_FAMILY,
            input_size=640,
            params_millions=9.1,
            skill=SkillCurve(peak=0.647, break_point=0.305, width=0.160),
            calibration=_SSD_CALIBRATION,
            scene_sensitivity=1.10,
            model_noise=0.065,
            false_positive_rate=0.75,
        ),
        ModelSpec(
            name="ssd-mobilenet-v2-320",
            family=SSD_FAMILY,
            input_size=320,
            params_millions=9.1,
            skill=SkillCurve(peak=0.498, break_point=0.255, width=0.150),
            calibration=_SSD_CALIBRATION,
            scene_sensitivity=1.15,
            model_noise=0.070,
            false_positive_rate=0.80,
        ),
    ]
