"""Simulated object-detection model zoo."""

from .detector import (
    SCENE_NOISE_SIGMA,
    ContextId,
    DetectionOutcome,
    SceneBatch,
    detect,
    detect_batch,
    shared_scene_noise,
)
from .families import SSD_FAMILY, YOLO_FAMILY, paper_specs
from .spec import ConfidenceCalibration, ModelSpec, SkillCurve
from .zoo import ModelZoo, default_zoo

__all__ = [
    "DetectionOutcome",
    "SceneBatch",
    "detect",
    "detect_batch",
    "shared_scene_noise",
    "ContextId",
    "SCENE_NOISE_SIGMA",
    "paper_specs",
    "YOLO_FAMILY",
    "SSD_FAMILY",
    "ModelSpec",
    "SkillCurve",
    "ConfidenceCalibration",
    "ModelZoo",
    "default_zoo",
]
