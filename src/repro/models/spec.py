"""Model specifications for the simulated object-detection zoo.

A :class:`ModelSpec` captures everything the simulation needs to know about
one ODM: its identity (family, input size, parameter count), its *skill
curve* (how detection quality degrades with frame difficulty), and its
*confidence calibration* (how the reported score relates to true quality —
the paper stresses that this relation differs across architectures and is
the reason the confidence graph exists).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class SkillCurve:
    """Detection quality as a function of frame difficulty.

    ``quality(d) = peak * sigmoid((break_point - d) / width)``: on easy
    frames (d << break_point) the model operates near ``peak``; past its
    break point quality collapses.  Big models have high break points
    (robust far into hard contexts); small models have high peaks on easy
    frames but early break points.
    """

    peak: float
    break_point: float
    width: float

    def __post_init__(self) -> None:
        if not 0.0 < self.peak <= 1.0:
            raise ValueError(f"peak must be within (0, 1], got {self.peak}")
        if not 0.0 <= self.break_point <= 1.5:
            raise ValueError(f"break_point must be within [0, 1.5], got {self.break_point}")
        if self.width <= 0.0:
            raise ValueError(f"width must be positive, got {self.width}")

    def quality(self, difficulty: float) -> float:
        """Expected detection quality in [0, 1] at the given difficulty."""
        z = (self.break_point - difficulty) / self.width
        return self.peak / (1.0 + math.exp(-z))


@dataclass(frozen=True)
class ConfidenceCalibration:
    """Linear-with-noise mapping from latent quality to reported confidence.

    ``confidence = clip(scale * quality + bias + N(0, noise))``.  A positive
    bias with scale < 1 models the over-confident architectures the paper
    calls out: inflated scores on frames the model actually fails.
    """

    scale: float
    bias: float
    noise: float

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.noise < 0.0:
            raise ValueError(f"noise must be non-negative, got {self.noise}")

    def mean_confidence(self, quality: float) -> float:
        """Noise-free confidence for a given quality."""
        return min(1.0, max(0.0, self.scale * quality + self.bias))


@dataclass(frozen=True)
class ModelSpec:
    """Full description of one simulated object-detection model."""

    name: str
    family: str
    input_size: int
    params_millions: float
    skill: SkillCurve
    calibration: ConfidenceCalibration
    # How strongly shared per-frame context noise moves this model (models
    # of the same family respond more similarly to the same frame).
    scene_sensitivity: float = 1.0
    # Independent per-model quality noise (sigma).
    model_noise: float = 0.05
    # Rate at which clutter produces competitive false-positive candidates.
    false_positive_rate: float = 0.5
    # Below this quality the network produces no target response at all.
    no_response_floor: float = 0.10

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("model name must be non-empty")
        if self.input_size <= 0:
            raise ValueError(f"input_size must be positive, got {self.input_size}")
        if self.params_millions <= 0:
            raise ValueError(f"params_millions must be positive, got {self.params_millions}")
        if self.scene_sensitivity < 0:
            raise ValueError("scene_sensitivity must be non-negative")
        if self.model_noise < 0:
            raise ValueError("model_noise must be non-negative")
        if not 0.0 <= self.false_positive_rate <= 2.0:
            raise ValueError("false_positive_rate must be within [0, 2]")
        if not 0.0 <= self.no_response_floor < 1.0:
            raise ValueError("no_response_floor must be within [0, 1)")

    @property
    def salt(self) -> int:
        """Stable integer identity used to derive per-model RNG streams."""
        return zlib.crc32(self.name.encode("utf-8"))
