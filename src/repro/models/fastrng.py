"""Bulk seeding for the detector's per-frame RNG streams.

The simulated detectors draw every stochastic value from a *freshly seeded*
``np.random.default_rng((salt, stream, ..., frame))`` so that outcomes are
pure functions of (model, frame).  That contract is what makes traces
cacheable — and it is also the scalar hot path's dominant cost: constructing
a ``SeedSequence`` + ``PCG64`` per draw costs ~12 us, and one detection
performs ~19 of them.

This module makes seeded streams cheap in bulk while staying bit-identical:

* :func:`pcg64_state_words` re-implements the ``SeedSequence`` entropy-pool
  hash (Melissa O'Neill's seed-sequence algorithm, frozen in NumPy since
  1.17) with vectorized uint32 arithmetic, producing the four 64-bit words
  ``SeedSequence(entropy).generate_state(4, uint64)`` would return — for N
  entropy tuples at once.
* :class:`DrawPool` holds one reusable ``PCG64`` bit generator and replays
  NumPy's C-level ``pcg64_srandom`` seeding from those words via the public
  ``.state`` setter (~1.6 us per stream instead of ~12 us), then draws with
  the shared :class:`~numpy.random.Generator`.

Equality with ``np.random.default_rng(entropy)`` is asserted bit-for-bit in
``tests/models/test_fastrng.py``; the batched detector additionally asserts
whole-trace equality against the scalar path, so any future NumPy change to
the (intentionally stable) seeding algorithm fails loudly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

# --- SeedSequence pool-hash constants (numpy/random/bit_generator.pyx) ----
_XSHIFT = 16
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_POOL_SIZE = 4
_MASK32 = 0xFFFFFFFF

# --- PCG64 seeding constants (numpy/random/src/pcg64/pcg64.h) -------------
_PCG64_MULT = (2549297995355413924 << 64) | 4865540595714422341
_MASK128 = (1 << 128) - 1

EntropyPart = int | np.ndarray | Sequence[int]


def _int_words(value: int) -> list[int]:
    """The uint32 little-endian limbs SeedSequence assembles for one int."""
    if value < 0:
        raise ValueError("entropy values must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _MASK32)
        value >>= 32
    return words


def entropy_rows(parts: Sequence[EntropyPart], count: int | None = None) -> np.ndarray:
    """Assemble N parallel entropy tuples into an ``(N, W)`` uint32 matrix.

    ``parts`` mirrors the tuple passed to ``np.random.default_rng``: scalar
    ints are broadcast to every row; one or more array parts supply the
    varying element (e.g. the frame index) and must contain values below
    2**32 so every row assembles to the same word count.
    """
    columns: list[np.ndarray] = []
    sizes = [len(p) for p in parts if not isinstance(p, (int, np.integer))]
    if count is None:
        if not sizes:
            raise ValueError("pass count when every entropy part is a scalar")
        count = sizes[0]
    if any(size != count for size in sizes):
        raise ValueError("varying entropy parts must share a length")
    for part in parts:
        if isinstance(part, (int, np.integer)):
            for word in _int_words(int(part)):
                columns.append(np.full(count, word, dtype=np.uint32))
        else:
            values = np.asarray(part, dtype=np.uint64)
            if values.ndim != 1:
                raise ValueError("varying entropy parts must be 1-D")
            if values.size and int(values.max()) > _MASK32:
                raise ValueError("varying entropy values must be below 2**32")
            columns.append(values.astype(np.uint32))
    return np.stack(columns, axis=1) if columns else np.zeros((count, 0), dtype=np.uint32)


def _hashmix(values: np.ndarray, hash_const: int) -> tuple[np.ndarray, int]:
    """One SeedSequence hash step over a column of entropy words."""
    values = values ^ np.uint32(hash_const)
    hash_const = (hash_const * _MULT_A) & _MASK32
    values = (values * np.uint32(hash_const)).astype(np.uint32)
    values = values ^ (values >> np.uint32(_XSHIFT))
    return values, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence's pool-mixing combiner (uint32, wraparound)."""
    result = (x * np.uint32(_MIX_MULT_L) - y * np.uint32(_MIX_MULT_R)).astype(np.uint32)
    return result ^ (result >> np.uint32(_XSHIFT))


def seed_pools(rows: np.ndarray) -> np.ndarray:
    """Vectorized ``SeedSequence`` entropy pools: ``(N, W)`` -> ``(N, 4)``."""
    rows = np.ascontiguousarray(rows, dtype=np.uint32)
    count, width = rows.shape
    pool = np.zeros((count, _POOL_SIZE), dtype=np.uint32)
    hash_const = _INIT_A
    for i in range(_POOL_SIZE):
        source = rows[:, i] if i < width else np.zeros(count, dtype=np.uint32)
        pool[:, i], hash_const = _hashmix(source, hash_const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, hash_const = _hashmix(pool[:, i_src], hash_const)
                pool[:, i_dst] = _mix(pool[:, i_dst], hashed)
    for i_src in range(_POOL_SIZE, width):
        for i_dst in range(_POOL_SIZE):
            hashed, hash_const = _hashmix(rows[:, i_src], hash_const)
            pool[:, i_dst] = _mix(pool[:, i_dst], hashed)
    return pool


def generate_state64(pools: np.ndarray, n_words: int = 4) -> np.ndarray:
    """Vectorized ``SeedSequence.generate_state(n_words, uint64)`` per pool row."""
    pools = np.ascontiguousarray(pools, dtype=np.uint32)
    count = pools.shape[0]
    n_half = n_words * 2
    state = np.zeros((count, n_half), dtype=np.uint32)
    hash_const = _INIT_B
    for i_dst in range(n_half):
        values = pools[:, i_dst % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _MASK32
        values = (values * np.uint32(hash_const)).astype(np.uint32)
        state[:, i_dst] = values ^ (values >> np.uint32(_XSHIFT))
    # Pair uint32 words little-endian-first, exactly as SeedSequence does.
    return (
        state.astype("<u4").reshape(count, n_words, 2).view("<u8").reshape(count, n_words)
        .astype(np.uint64)
    )


def pcg64_state_words(parts: Sequence[EntropyPart], count: int | None = None) -> np.ndarray:
    """``(N, 4)`` uint64 seed words for PCG64, one row per entropy tuple.

    Row ``i`` equals ``np.random.SeedSequence(tuple_i).generate_state(4,
    np.uint64)`` where ``tuple_i`` takes element ``i`` of every array part.
    """
    return generate_state64(seed_pools(entropy_rows(parts, count=count)))


def _pcg64_state_dict(words: np.ndarray) -> dict:
    """The post-seeding PCG64 ``.state`` dict for one row of seed words.

    Replays ``pcg64_srandom``: ``inc = (initseq << 1) | 1`` and two LCG
    steps folding in the init state, in 128-bit arithmetic.
    """
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _MASK128
    state = ((inc + initstate) * _PCG64_MULT + inc) & _MASK128
    return {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }


class DrawPool:
    """One reusable ``Generator`` re-seeded per stream via cheap state sets.

    ``generator_for(words)`` returns the shared generator positioned exactly
    where ``np.random.default_rng(entropy)`` would start; it stays valid
    until the next ``generator_for``/``first_normals`` call, which matches
    how the detector consumes its streams (one at a time).
    """

    def __init__(self) -> None:
        self._bit_generator = np.random.PCG64(0)
        self._generator = np.random.Generator(self._bit_generator)

    def generator_for(self, words: np.ndarray) -> np.random.Generator:
        """The shared generator, seeded from one ``(4,)`` row of seed words."""
        self._bit_generator.state = _pcg64_state_dict(words)
        return self._generator

    def first_normals(self, words: np.ndarray) -> np.ndarray:
        """First ``standard_normal`` of each stream in an ``(N, 4)`` word array.

        Equals ``np.random.default_rng(entropy_i).standard_normal()`` per
        row; multiply by sigma for ``normal(0.0, sigma)`` (NumPy computes
        ``loc + scale * z`` internally, so the scaled values are identical).
        """
        bit_generator = self._bit_generator
        draw = self._generator.standard_normal
        out = np.empty(len(words), dtype=np.float64)
        for i, row in enumerate(words):
            bit_generator.state = _pcg64_state_dict(row)
            out[i] = draw()
        return out
