"""Model zoo: the registry of ODMs available to characterization and SHIFT."""

from __future__ import annotations

import hashlib
from collections.abc import Iterator

from .families import paper_specs
from .spec import ModelSpec


class ModelZoo:
    """An ordered registry of model specs, keyed by canonical name.

    Order matters only for presentation (tables list models largest to
    smallest, like the paper); lookups are by name.
    """

    def __init__(self, specs: list[ModelSpec] | None = None) -> None:
        self._specs: dict[str, ModelSpec] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: ModelSpec, replace: bool = False) -> None:
        """Add a model; ``replace=True`` overwrites an existing entry."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"model {spec.name!r} is already registered")
        self._specs[spec.name] = spec

    def remove(self, name: str) -> ModelSpec:
        """Remove and return a model spec."""
        try:
            return self._specs.pop(name)
        except KeyError:
            raise KeyError(f"no model named {name!r} in the zoo") from None

    def get(self, name: str) -> ModelSpec:
        """Look up a model by canonical name."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self.names())
            raise KeyError(f"no model named {name!r}; registered models: {known}") from None

    def names(self) -> list[str]:
        """Model names in registration order."""
        return list(self._specs)

    def specs(self) -> list[ModelSpec]:
        """Model specs in registration order."""
        return list(self._specs.values())

    def fingerprint(self) -> str:
        """Content-addressed identity of the zoo (hex digest).

        Hashes every spec's full parameterization in registration order;
        traces persisted on disk are keyed by this alongside the scenario
        fingerprint, so adding, removing, or retuning a model invalidates
        stored traces instead of silently reusing them.
        """
        digest = hashlib.sha256()
        digest.update("\n".join(repr(spec) for spec in self._specs.values()).encode("utf-8"))
        return digest.hexdigest()

    def families(self) -> list[str]:
        """Distinct family names, in first-seen order."""
        seen: dict[str, None] = {}
        for spec in self._specs.values():
            seen.setdefault(spec.family, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ModelSpec]:
        return iter(self._specs.values())


def default_zoo() -> ModelZoo:
    """The paper's eight-model zoo."""
    return ModelZoo(paper_specs())
