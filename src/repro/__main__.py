"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # Piping into e.g. ``head`` closes stdout early; that's not an error.
    sys.stderr.close()
    code = 0
sys.exit(code)
