"""Determinism rules: no ambient entropy in the deterministic tiers.

The reproduction's central guarantee is that every engine is a pure
function of its seeds: traces, runs, and fingerprints must be bit-stable
across processes, hosts, and reruns (the differential fuzz harness proves
it dynamically; these rules prove the *absence of entropy sources*
statically).  Scope: the packages that compute results or identity —
``vision``, ``models``, ``data``, ``sim``, ``core``.

* ``determinism/wall-clock`` — ``time.time()``/``datetime.now()`` and
  friends inject the host clock into results.
* ``determinism/unseeded-rng`` — ``np.random.default_rng()`` or
  ``random.Random()`` with no seed draws from OS entropy.
* ``determinism/global-rng`` — module-level ``random.*`` /
  ``np.random.*`` calls share cross-cutting global state: any other
  caller perturbs the stream, so outcomes depend on call *order*.
* ``determinism/unordered-iter`` — iterating a ``set`` while computing a
  fingerprint or serializing makes output depend on hash order (this one
  is enforced everywhere, not just the deterministic tiers: fingerprint
  code also lives in the stores).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from .base import Checker, Project
from .findings import Finding, Rule
from .source import SourceModule, resolve_call_name

#: Packages whose code must be a pure function of explicit seeds.
DETERMINISTIC_PACKAGES = frozenset({"vision", "models", "data", "sim", "core", "util"})

WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: stdlib ``random`` module functions that mutate/read the global stream.
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "normalvariate", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
})

#: ``numpy.random`` names that are *not* global-state calls (seeded
#: constructors and generator classes).
NUMPY_RANDOM_ALLOWED = frozenset({"default_rng"})

#: Function names that compute identity or serialize state.
FINGERPRINT_FUNC_RE = re.compile(
    r"fingerprint|content_key|to_dict|serialize|digest|canonical|index_meta|_row$"
)


class DeterminismChecker(Checker):
    rules = (
        Rule("determinism/wall-clock", "error",
             "wall-clock reads make results depend on the host clock"),
        Rule("determinism/unseeded-rng", "error",
             "an RNG constructed without a seed draws OS entropy"),
        Rule("determinism/global-rng", "error",
             "module-level RNG state makes outcomes depend on call order"),
        Rule("determinism/unordered-iter", "error",
             "set iteration in fingerprint/serialization code depends on hash order"),
    )

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        deterministic_tier = module.package in DETERMINISTIC_PACKAGES
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and deterministic_tier:
                findings.extend(self._check_call(node, module))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and FINGERPRINT_FUNC_RE.search(node.name):
                findings.extend(self._check_fingerprint_func(node, module))
        return findings

    # ----------------------------------------------------------- entropy

    def _check_call(self, node: ast.Call, module: SourceModule) -> Iterator[Finding]:
        name = resolve_call_name(node, module.symbol_origins)
        if name is None:
            return
        if name in WALL_CLOCK_CALLS:
            yield self.finding(
                "determinism/wall-clock", module, node,
                f"call to {name}() reads the wall clock; results must be pure "
                f"functions of explicit seeds",
            )
            return
        if name in ("numpy.random.default_rng", "random.Random") and _unseeded(node):
            yield self.finding(
                "determinism/unseeded-rng", module, node,
                f"{name}() without a seed draws OS entropy; pass an explicit seed",
            )
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in GLOBAL_RANDOM_FNS:
            yield self.finding(
                "determinism/global-rng", module, node,
                f"{name}() uses the interpreter-global random stream; use a "
                f"seeded random.Random instance",
            )
            return
        if (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in NUMPY_RANDOM_ALLOWED
            and parts[2][:1].islower()
        ):
            yield self.finding(
                "determinism/global-rng", module, node,
                f"{name}() uses numpy's global RNG state; use "
                f"numpy.random.default_rng(seed)",
            )

    # ------------------------------------------------------- unordered sets

    def _check_fingerprint_func(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, module: SourceModule
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if _is_set_expression(candidate, module):
                    yield self.finding(
                        "determinism/unordered-iter", module, candidate,
                        f"iteration over an unordered set inside {func.name}(); "
                        f"wrap the set in sorted(...) so output is hash-order-free",
                    )


def _unseeded(node: ast.Call) -> bool:
    if node.keywords:
        return all(
            kw.arg == "seed" and isinstance(kw.value, ast.Constant) and kw.value.value is None
            for kw in node.keywords
        )
    if not node.args:
        return True
    return (
        len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value is None
    )


def _is_set_expression(node: ast.expr, module: SourceModule) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = resolve_call_name(node, module.symbol_origins)
        if name in ("set", "frozenset"):
            return True
        # RunResult.pairs_used()-style accessors are beyond static reach;
        # the rule stays syntactic and accepts the false negative.
    return False
