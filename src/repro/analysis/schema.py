"""Schema coverage: persisted formats change only on purpose.

The stores are content-addressed: what a run *is* is decided by
``fingerprint()`` methods, and what a run *looks like on disk* is decided
by the serializer functions.  Both change silently — add a dataclass
field and the serializer emits it, reorder a row and old files misparse —
so this checker pins them to a committed manifest
(``analysis/schema_manifest.json``):

* ``schema/fingerprint`` — every class the manifest lists under
  ``fingerprint_required`` must define a ``fingerprint()`` method.  These
  are the classes whose identity feeds store keys; losing the method
  silently degrades content-addressing to name-addressing.
* ``schema/manifest`` — each listed serializer's emitted field list
  (dict keys, or attribute order for row serializers) must match the
  manifest, each listed ``*_VERSION`` constant must match, and any
  serializer-shaped function (``*_to_dict``, ``*_row``, ``_index_meta``)
  in a covered module must be listed.  Changing a persisted format is
  fine — the manifest edit shows up in the same diff, which is the point:
  schema changes become reviewable.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from .base import Checker, Project
from .findings import Finding, Rule
from .source import SourceModule

#: Top-level function names that shape persisted bytes.
SERIALIZER_NAME_RE = re.compile(r"(_to_dict|_row|_index_meta)$")


class SchemaChecker(Checker):
    rules = (
        Rule("schema/fingerprint", "error",
             "store-keyed classes must define fingerprint()"),
        Rule("schema/manifest", "error",
             "persisted field sets and schema versions must match the committed manifest"),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if project.manifest is None:
            return ()
        findings: list[Finding] = []
        findings.extend(self._check_fingerprints(project))
        findings.extend(self._check_versions(project))
        findings.extend(self._check_serializers(project))
        return findings

    # ------------------------------------------------------------ fingerprints

    def _check_fingerprints(self, project: Project) -> Iterator[Finding]:
        required: dict[str, list[str]] = project.manifest.get("fingerprint_required", {})
        for rel, class_names in sorted(required.items()):
            module = project.module_by_rel(rel)
            if module is None:
                yield self._manifest_finding(
                    project, f"manifest lists {rel} under fingerprint_required "
                    f"but the file does not exist",
                )
                continue
            classes = {
                node.name: node
                for node in module.tree.body
                if isinstance(node, ast.ClassDef)
            }
            for name in class_names:
                cls = classes.get(name)
                if cls is None:
                    yield self.finding(
                        "schema/fingerprint", module, None,
                        f"manifest requires class {name} in {rel}, but it is gone; "
                        f"update analysis/schema_manifest.json if this rename is deliberate",
                    )
                    continue
                if not _has_method(cls, "fingerprint"):
                    yield self.finding(
                        "schema/fingerprint", module, cls,
                        f"{name} feeds store keys but defines no fingerprint(); "
                        f"identity would silently fall back to the class name",
                    )

    # ---------------------------------------------------------------- versions

    def _check_versions(self, project: Project) -> Iterator[Finding]:
        versions: dict[str, dict[str, int]] = project.manifest.get("schema_versions", {})
        for rel, expected in sorted(versions.items()):
            module = project.module_by_rel(rel)
            if module is None:
                yield self._manifest_finding(
                    project, f"manifest pins schema versions for missing file {rel}",
                )
                continue
            for constant, value in sorted(expected.items()):
                actual = _module_constant(module, constant)
                if actual is None:
                    yield self.finding(
                        "schema/manifest", module, None,
                        f"manifest pins {constant}={value} but {rel} no longer "
                        f"defines it",
                    )
                elif actual != value:
                    yield self.finding(
                        "schema/manifest", module, None,
                        f"{constant} is {actual} but the manifest pins {value}; "
                        f"a version bump must update analysis/schema_manifest.json "
                        f"in the same change",
                        line=_constant_line(module, constant),
                    )

    # -------------------------------------------------------------- serializers

    def _check_serializers(self, project: Project) -> Iterator[Finding]:
        serializers: dict[str, list[str]] = project.manifest.get("serializers", {})
        covered_rels = {key.split("::", 1)[0] for key in serializers}
        listed: dict[str, set[str]] = {}
        for key, expected_fields in sorted(serializers.items()):
            rel, _, func_name = key.partition("::")
            listed.setdefault(rel, set()).add(func_name)
            module = project.module_by_rel(rel)
            if module is None:
                yield self._manifest_finding(
                    project, f"manifest lists serializer {key} in a missing file",
                )
                continue
            func = _top_level_function(module, func_name)
            if func is None:
                yield self.finding(
                    "schema/manifest", module, None,
                    f"manifest lists serializer {func_name}() but {rel} no longer "
                    f"defines it",
                )
                continue
            actual = _emitted_fields(func)
            if actual is None:
                yield self.finding(
                    "schema/manifest", module, func,
                    f"{func_name}() no longer returns a literal dict/row, so its "
                    f"field set cannot be verified against the manifest; keep "
                    f"serializers literal",
                )
            elif actual != list(expected_fields):
                yield self.finding(
                    "schema/manifest", module, func,
                    f"{func_name}() emits {actual} but the manifest pins "
                    f"{list(expected_fields)}; a format change must update "
                    f"analysis/schema_manifest.json in the same change",
                )
        # Serializer-shaped functions the manifest does not know about.
        for rel in sorted(covered_rels):
            module = project.module_by_rel(rel)
            if module is None:
                continue
            for node in module.tree.body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if "from" in node.name or not SERIALIZER_NAME_RE.search(node.name):
                    continue
                if node.name not in listed.get(rel, set()):
                    yield self.finding(
                        "schema/manifest", module, node,
                        f"{node.name}() looks like a serializer but is not in "
                        f"analysis/schema_manifest.json; list its field set so "
                        f"format drift is reviewable",
                    )

    def _manifest_finding(self, project: Project, message: str) -> Finding:
        rel = "analysis/schema_manifest.json"
        if project.manifest_path is not None:
            try:
                rel = project.manifest_path.relative_to(project.root).as_posix()
            except ValueError:
                rel = project.manifest_path.as_posix()
        rule = self.rule("schema/manifest")
        return Finding(
            rule=rule.id, severity=rule.severity,
            path=rel, line=1, column=1, message=message,
        )


# ---------------------------------------------------------------- extraction


def _has_method(cls: ast.ClassDef, name: str) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name
        for node in cls.body
    )


def _top_level_function(
    module: SourceModule, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _module_constant(module: SourceModule, name: str) -> object | None:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name) and target.id == name
                        and isinstance(node.value, ast.Constant)):
                    return node.value.value
    return None


def _constant_line(module: SourceModule, name: str) -> int:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.lineno
    return 1


def _emitted_fields(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str] | None:
    """The field list a serializer emits, or None when not statically literal.

    Dict returns yield their constant keys in source order; list ("row")
    returns yield, per element, the first attribute read off the
    function's first parameter — for row formats, *order is the schema*.
    """
    returned = _single_return(func)
    if returned is None:
        return None
    if isinstance(returned, ast.Dict):
        fields: list[str] = []
        for key in returned.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            fields.append(key.value)
        return fields
    if isinstance(returned, ast.List):
        param = _first_param(func)
        if param is None:
            return None
        fields = []
        for element in returned.elts:
            attr = _first_attribute_of(element, param)
            if attr is None:
                return None
            fields.append(attr)
        return fields
    return None


def _single_return(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.expr | None:
    returns = [
        node for node in ast.walk(func)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    return returns[0].value if len(returns) == 1 else None


def _first_param(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = func.args.args
    return args[0].arg if args else None


def _first_attribute_of(node: ast.expr, param: str) -> str | None:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == param
        ):
            return child.attr
    return None
