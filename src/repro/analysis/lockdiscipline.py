"""Lock and atomic-write discipline for the persistence/service tiers.

PR 5 made both stores crash-consistent: every data-file write goes
through a writer-unique temp + ``os.replace`` (so readers never see a
torn file), mutations hold per-shard advisory locks, and shared service
state hides behind one mutex.  Those guarantees only hold while *every*
write site keeps the discipline — which is exactly what dynamic tests
cannot prove (they execute the writes that exist, not the ones a patch
adds).  Two rules make the discipline structural:

* ``locks/raw-write`` — in ``runtime``, ``service``, and
  ``characterization``, file writes must route through the
  :mod:`repro.util.atomicio` helpers (re-exported by
  :mod:`repro.runtime.shards`).  Raw ``open(..., "w")``,
  ``Path.write_text``/``write_bytes``, ``json.dump``-to-handle, and bare
  ``os.replace``/``os.rename`` are flagged.
* ``locks/guarded-attr`` — a lock assignment annotated
  ``# repro: guards[a, b, ...]`` declares that those sibling attributes
  (or module globals, for a module-level lock) may only be touched while
  holding that lock.  Accesses outside a ``with <lock>:`` block are
  flagged, except in ``__init__`` (construction precedes sharing) and in
  methods/functions named ``*_locked`` (documented as
  called-under-lock).
* ``locks/locked-call`` — the other half of the ``*_locked`` convention
  (PR 7's job queue leans on it hard: the per-path shard mutex is *not*
  reentrant, so multi-entry operations compose ``*_locked`` helpers
  under one acquisition).  A call to any ``*_locked`` function must be
  lexically inside a ``with`` on something lock-like — a ``shard_lock``
  call, a guards-declared lock attribute, anything named ``*lock*`` —
  or inside a function itself named ``*_locked``.  Calling one unheld
  is either a data race or (re-entering) a deadlock.
* ``locks/io-seam`` — PR 9 routes every store-tier write through the
  injectable seam :mod:`repro.runtime.iolayer`, which is where the
  deterministic fault plans, degraded (read-only) mode, and ``io_errors``
  accounting all live.  In the seam-covered modules
  (:data:`IO_SEAM_MODULES`) a raw write *or* a direct
  ``atomic_write_text``/``atomic_write_json`` call is a write the fault
  plan cannot see and degraded mode cannot refuse — flagged here (in
  place of ``locks/raw-write``, so one bad call yields one finding).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .base import Checker, Project
from .findings import Finding, Rule
from .source import SourceModule, resolve_call_name

#: Packages whose file writes must be crash-safe.
WRITE_SCOPE_PACKAGES = frozenset({"runtime", "service", "characterization"})

WRITE_METHODS = frozenset({"write_text", "write_bytes"})
RENAME_CALLS = frozenset({"os.replace", "os.rename", "os.renames"})

#: Modules whose writes must route through :mod:`repro.runtime.iolayer`.
#: The seam is where fault plans fire, degraded mode flips, and
#: ``io_errors`` are counted — a write that bypasses it is invisible to
#: all three.  ``runtime.iolayer`` itself is deliberately absent: it is
#: the seam's implementation, and its raw sites carry explicit
#: ``# repro: allow[locks/raw-write]`` pragmas.
IO_SEAM_MODULES = frozenset({
    "runtime.colfmt",
    "runtime.shards",
    "runtime.store",
    "runtime.runstore",
    "runtime.export",
    "runtime.maintenance",
    "service.queue",
})

#: Function tails that name the un-instrumented atomic writers.  Matched
#: on the last dotted component so every import path is caught —
#: ``util.atomicio.atomic_write_text``, the ``util`` package re-export,
#: and the ``runtime.shards`` compatibility re-export alike.
ATOMICIO_TAILS = frozenset({"atomic_write_text", "atomic_write_json"})


class LockDisciplineChecker(Checker):
    rules = (
        Rule("locks/raw-write", "error",
             "file writes in the persistence tiers must be atomic (temp + os.replace)"),
        Rule("locks/guarded-attr", "error",
             "state declared lock-guarded may only be touched while holding the lock"),
        Rule("locks/locked-call", "error",
             "*_locked functions assume a held lock; call them under `with <lock>:` "
             "or from another *_locked function"),
        Rule("locks/io-seam", "error",
             "store-tier writes must route through repro.runtime.iolayer so "
             "fault plans, degraded mode, and io_error accounting see them"),
    )

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        if module.package in WRITE_SCOPE_PACKAGES:
            seam = module.module_name in IO_SEAM_MODULES
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_write(node, module, seam=seam))
            findings.extend(self._check_locked_calls(module))
        if module.guards:
            findings.extend(self._check_guards(module))
        return findings

    # ------------------------------------------------------------ raw writes

    def _check_write(
        self, node: ast.Call, module: SourceModule, *, seam: bool = False
    ) -> Iterator[Finding]:
        # In a seam-covered module every raw form is reported as io-seam
        # (not raw-write): the fix is the same single call either way, and
        # one bad write should yield one finding, not two.
        rule = "locks/io-seam" if seam else "locks/raw-write"
        remedy = (
            "repro.runtime.iolayer.write_text" if seam
            else "repro.util.atomicio.atomic_write_text"
        )
        name = resolve_call_name(node, module.symbol_origins)
        if name is not None and name.startswith("runtime.iolayer."):
            return  # a call INTO the seam is the discipline, not a breach
        if name == "open" or (name is None and _method_name(node) == "open"):
            mode = _open_mode(node)
            if mode is not None and any(flag in mode for flag in "wax+"):
                yield self.finding(
                    rule, module, node,
                    f"raw open(..., {mode!r}): a crash mid-write leaves a torn file; "
                    f"use {remedy}",
                )
            return
        if name in RENAME_CALLS:
            yield self.finding(
                rule, module, node,
                f"bare {name}(): renames belong inside the "
                f"{'iolayer' if seam else 'shards/atomicio'} helpers "
                f"so temp hygiene and shard indexes stay consistent",
            )
            return
        if name == "json.dump":
            yield self.finding(
                rule, module, node,
                f"json.dump to an open handle is not crash-safe; serialize with "
                f"json.dumps and write via {remedy}",
            )
            return
        if seam and name is not None and name.rsplit(".", 1)[-1] in ATOMICIO_TAILS:
            yield self.finding(
                "locks/io-seam", module, node,
                f"{name}() bypasses the repro.runtime.iolayer seam: the write "
                f"is atomic but invisible to fault plans, degraded mode, and "
                f"io_error accounting; use iolayer.write_text / write_json / "
                f"replace with root= set to the store root",
            )
            return
        method = _method_name(node)
        if method in WRITE_METHODS:
            yield self.finding(
                rule, module, node,
                f".{method}() is not crash-safe; use {remedy}",
            )

    # ----------------------------------------------------------- locked calls

    def _check_locked_calls(self, module: SourceModule) -> Iterator[Finding]:
        attr_locks, global_locks = _declared_locks(module)
        for func in _all_functions(module.tree):
            if func.name.endswith("_locked"):
                continue
            walker = _LockedCallWalker(module, attr_locks, global_locks)
            walker.walk(func)
            for call, callee in walker.violations:
                yield self.finding(
                    "locks/locked-call", module, call,
                    f"{callee}() assumes its lock is already held, but no enclosing "
                    f"`with <lock>:` is visible in {func.name}; acquire the lock "
                    f"around it (or rename the caller *_locked if its own callers "
                    f"hold it)",
                )

    # --------------------------------------------------------- guarded state

    def _check_guards(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class_guards(node, module)
        yield from self._check_module_guards(module)

    def _check_class_guards(self, cls: ast.ClassDef, module: SourceModule) -> Iterator[Finding]:
        # Lock declarations: `self.<lock> = ...  # repro: guards[...]` in any method.
        declarations: list[tuple[str, tuple[str, ...]]] = []
        for method in _methods(cls):
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                guarded = module.guards.get(stmt.lineno)
                if not guarded:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if _is_self_attribute(target):
                        declarations.append((target.attr, guarded))
        for lock_attr, guarded in declarations:
            guarded_set = frozenset(guarded)
            for method in _methods(cls):
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue
                walker = _GuardWalker(
                    lock_is_attr=True, lock_name=lock_attr, guarded=guarded_set
                )
                walker.walk(method)
                for access in walker.violations:
                    yield self.finding(
                        "locks/guarded-attr", module, access,
                        f"self.{access.attr} is declared guarded by self.{lock_attr} "
                        f"but is touched outside `with self.{lock_attr}:` "
                        f"(in {cls.name}.{method.name})",
                    )

    def _check_module_guards(self, module: SourceModule) -> Iterator[Finding]:
        declarations: list[tuple[str, tuple[str, ...]]] = []
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            guarded = module.guards.get(stmt.lineno)
            if not guarded:
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    declarations.append((target.id, guarded))
        for lock_name, guarded in declarations:
            guarded_set = frozenset(guarded)
            for stmt in module.tree.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name.endswith("_locked"):
                    continue
                walker = _GuardWalker(
                    lock_is_attr=False, lock_name=lock_name, guarded=guarded_set
                )
                walker.walk(stmt)
                for access in walker.violations:
                    label = access.attr if isinstance(access, ast.Attribute) else access.id
                    yield self.finding(
                        "locks/guarded-attr", module, access,
                        f"{label} is declared guarded by {lock_name} but is touched "
                        f"outside `with {lock_name}:` (in {stmt.name})",
                    )


class _GuardWalker:
    """Walks one function tracking whether the declared lock is held."""

    def __init__(self, *, lock_is_attr: bool, lock_name: str, guarded: frozenset[str]) -> None:
        self.lock_is_attr = lock_is_attr
        self.lock_name = lock_name
        self.guarded = guarded
        self.violations: list[ast.AST] = []

    def walk(self, func: ast.AST) -> None:
        for stmt in getattr(func, "body", []):
            self._visit(stmt, held=False)

    def _visit(self, node: ast.AST, held: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            takes = any(self._is_lock(item.context_expr) for item in node.items)
            for item in node.items:
                self._visit(item.context_expr, held)
            for child in node.body:
                self._visit(child, held or takes)
            return
        if self._is_violation(node, held):
            self.violations.append(node)
            # Still recurse: the subexpression may contain more accesses.
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _is_lock(self, expr: ast.expr) -> bool:
        if self.lock_is_attr:
            return _is_self_attribute(expr) and expr.attr == self.lock_name
        return isinstance(expr, ast.Name) and expr.id == self.lock_name

    def _is_violation(self, node: ast.AST, held: bool) -> bool:
        if held:
            return False
        if self.lock_is_attr:
            return _is_self_attribute(node) and node.attr in self.guarded
        return isinstance(node, ast.Name) and node.id in self.guarded


class _LockedCallWalker:
    """Finds ``*_locked(...)`` calls made without a visible lock context.

    Lexical and per-function: a ``with`` on anything lock-like (a call or
    name containing ``lock``, or a guards-declared lock attribute/global)
    marks its body held.  Nested function bodies are *not* marked by an
    enclosing ``with`` — they run later, at their call site — and are
    walked separately on their own.
    """

    def __init__(self, module: SourceModule, attr_locks: frozenset[str],
                 global_locks: frozenset[str]) -> None:
        self.module = module
        self.attr_locks = attr_locks
        self.global_locks = global_locks
        self.violations: list[tuple[ast.Call, str]] = []

    def walk(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in func.body:
            self._visit(stmt, held=False)

    def _visit(self, node: ast.AST, held: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # gets its own walk; the lock is not held at *its* call time
        if isinstance(node, ast.Lambda):
            self._visit(node.body, False)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            takes = any(self._is_lockish(item.context_expr) for item in node.items)
            for item in node.items:
                self._visit(item.context_expr, held)
            for child in node.body:
                self._visit(child, held or takes)
            return
        if isinstance(node, ast.Call) and not held:
            callee = self._locked_callee(node)
            if callee is not None:
                self.violations.append((node, callee))
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _locked_callee(self, node: ast.Call) -> str | None:
        name = resolve_call_name(node, self.module.symbol_origins)
        if name is not None and name.rsplit(".", 1)[-1].endswith("_locked"):
            return name
        if isinstance(node.func, ast.Attribute) and node.func.attr.endswith("_locked"):
            return node.func.attr
        return None

    def _is_lockish(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            name = resolve_call_name(expr, self.module.symbol_origins)
            if name is not None and "lock" in name.lower():
                return True
            return (isinstance(expr.func, ast.Attribute)
                    and "lock" in expr.func.attr.lower())
        if _is_self_attribute(expr):
            return "lock" in expr.attr.lower() or expr.attr in self.attr_locks
        if isinstance(expr, ast.Attribute):
            return "lock" in expr.attr.lower()
        if isinstance(expr, ast.Name):
            return "lock" in expr.id.lower() or expr.id in self.global_locks
        return False


def _declared_locks(module: SourceModule) -> tuple[frozenset[str], frozenset[str]]:
    """Lock names declared via ``# repro: guards[...]``: (self-attrs, globals)."""
    attr_locks: set[str] = set()
    global_locks: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if not module.guards.get(node.lineno):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if _is_self_attribute(target):
                attr_locks.add(target.attr)
            elif isinstance(target, ast.Name):
                global_locks.add(target.id)
    return frozenset(attr_locks), frozenset(global_locks)


def _all_functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _methods(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [n for n in cls.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _method_name(node: ast.Call) -> str | None:
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def _open_mode(node: ast.Call) -> str | None:
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None  # default "r": read-only
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: beyond static reach
