"""Exception hygiene: failures must surface, not vanish.

The orchestrator and the stores run work in background threads and
process pools; an exception swallowed there turns a hard failure into a
silent wrong answer (a sweep that "completes" with missing runs, a store
that "loads" a half-written shard).  Two rules:

* ``exceptions/bare`` — ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit`` too, so a worker cannot even be cancelled.  Enforced
  repo-wide.
* ``exceptions/swallow`` — an ``except`` whose body is only
  ``pass``/``continue``/``...`` discards the error.  Enforced in the
  tiers that execute work (``runtime``, ``service``): either handle it,
  re-raise, or annotate the line with ``# repro: allow[exceptions/swallow]``
  and a comment saying *why* dropping it is sound.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .base import Checker, Project
from .findings import Finding, Rule
from .source import SourceModule

#: Packages whose loops execute jobs/IO and must not drop errors.
SWALLOW_SCOPE_PACKAGES = frozenset({"runtime", "service"})


class ExceptionHygieneChecker(Checker):
    rules = (
        Rule("exceptions/bare", "error",
             "bare `except:` catches KeyboardInterrupt/SystemExit; name the exceptions"),
        Rule("exceptions/swallow", "error",
             "an except body of pass/continue discards the failure silently"),
    )

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        check_swallow = module.package in SWALLOW_SCOPE_PACKAGES
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(node, module, check_swallow))
        return findings

    def _check_handler(
        self, handler: ast.ExceptHandler, module: SourceModule, check_swallow: bool
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                "exceptions/bare", module, handler,
                "bare `except:` also catches KeyboardInterrupt and SystemExit; "
                "catch a named exception (or `Exception` at an outermost boundary)",
            )
            return
        if check_swallow and all(_is_noop(stmt) for stmt in handler.body):
            caught = ast.unparse(handler.type)
            yield self.finding(
                "exceptions/swallow", module, handler,
                f"`except {caught}` swallows the error; handle it, re-raise, or "
                f"annotate with `# repro: allow[exceptions/swallow]` explaining "
                f"why dropping it is sound",
            )


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
