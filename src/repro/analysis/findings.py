"""Findings: what a checker reports and how it is rendered.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen dataclasses so the engine can sort, deduplicate, diff
against a baseline, and serialize them without any checker cooperation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, in increasing order of importance.
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)


@dataclass(frozen=True)
class Rule:
    """One enforceable rule: stable id, severity, one-line rationale.

    Rule ids are ``family/name`` (e.g. ``locks/raw-write``); the family
    groups rules that share a checker and lets ``--rules locks`` select
    the whole group.
    """

    id: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if "/" not in self.id:
            raise ValueError(f"rule id {self.id!r} must be family/name")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def family(self) -> str:
        """The group this rule belongs to (text before the slash)."""
        return self.id.split("/", 1)[0]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location (path is root-relative, posix)."""

    rule: str
    severity: str
    path: str
    line: int
    column: int
    message: str

    @property
    def location(self) -> str:
        """``path:line:column`` — the clickable form."""
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-row form (stable keys; the ``--format json`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        """One human-readable line."""
        return f"{self.location}: {self.rule}: {self.message}"
