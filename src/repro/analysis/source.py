"""Parsed source modules: AST, comment pragmas, and resolved imports.

Every checker consumes :class:`SourceModule` — one parsed file plus the
repo-aware context rules need:

* **suppressions** — ``# repro: allow[rule-id]`` comments.  A pragma on a
  code line suppresses findings on that line; a pragma on a comment-only
  line suppresses the next code line.  ``allow[family]`` suppresses every
  rule in the family; ``allow[*]`` suppresses everything.
* **guard declarations** — ``# repro: guards[attr, ...]`` on the line
  assigning a lock declares which sibling attributes (or module globals)
  may only be touched while holding that lock; the ``locks/guarded-attr``
  rule enforces the declaration.
* **imports** — every ``import``/``from … import`` resolved against the
  package root, tagged lazy (inside a function) and/or typing-only
  (inside an ``if TYPE_CHECKING:`` block), so the layering checker can
  reason about the *runtime* import graph.
* **symbol origins** — local name → dotted origin (``np`` →
  ``numpy``, ``default_rng`` → ``numpy.random.default_rng``), so
  call-site rules can resolve attribute chains without guessing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
GUARDS_RE = re.compile(r"#\s*repro:\s*guards\[([^\]]*)\]")


@dataclass(frozen=True)
class ImportRecord:
    """One resolved import edge out of a module.

    ``target`` is the dotted module path *relative to the package root*
    (``data.generator``) for in-repo imports, or the absolute external
    name (``numpy``) with ``external=True``.
    """

    target: str
    line: int
    external: bool
    lazy: bool
    type_checking: bool


@dataclass
class SourceModule:
    """One parsed source file with its repo-aware context."""

    path: Path
    rel: str  # root-relative posix path, e.g. "runtime/store.py"
    text: str
    tree: ast.Module
    #: line -> rule ids (or families, or "*") suppressed on that line
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: line -> attribute/global names declared guarded by the lock assigned there
    guards: dict[int, tuple[str, ...]] = field(default_factory=dict)
    imports: list[ImportRecord] = field(default_factory=list)
    #: local name -> dotted origin for imported symbols/modules
    symbol_origins: dict[str, str] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """First path component (the layer package); "" for root modules."""
        return self.rel.split("/", 1)[0] if "/" in self.rel else ""

    @property
    def module_name(self) -> str:
        """Dotted module path relative to the package root."""
        parts = self.rel[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when a pragma on ``line`` covers ``rule_id``."""
        allowed = self.suppressions.get(line, frozenset())
        family = rule_id.split("/", 1)[0]
        return "*" in allowed or rule_id in allowed or family in allowed


def parse_module(path: Path, rel: str, text: str) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (raises SyntaxError)."""
    tree = ast.parse(text, filename=str(path))
    module = SourceModule(path=path, rel=rel, text=text, tree=tree)
    _collect_pragmas(module)
    _collect_imports(module)
    return module


# ------------------------------------------------------------------ pragmas


def _collect_pragmas(module: SourceModule) -> None:
    lines = module.text.splitlines()
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(module.text).readline))
    except tokenize.TokenizeError:  # ast.parse succeeded, so this is unreachable
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        lineno = token.start[0]
        source_line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        comment_only = source_line.lstrip().startswith("#")
        allow = ALLOW_RE.search(token.string)
        if allow:
            rules = {part.strip() for part in allow.group(1).split(",") if part.strip()}
            target = _next_code_line(lines, lineno) if comment_only else lineno
            suppressions.setdefault(target, set()).update(rules)
        guard = GUARDS_RE.search(token.string)
        if guard:
            names = tuple(part.strip() for part in guard.group(1).split(",") if part.strip())
            target = _next_code_line(lines, lineno) if comment_only else lineno
            module.guards[target] = names
    module.suppressions = {line: frozenset(rules) for line, rules in suppressions.items()}


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """The first non-blank, non-comment line after ``comment_line``."""
    for offset, text in enumerate(lines[comment_line:], start=comment_line + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return comment_line


# ------------------------------------------------------------------ imports


def _collect_imports(module: SourceModule) -> None:
    # Drop the filename (or the "__init__" marker): either way the
    # containing package is everything above the last component.
    package_parts = module.rel[: -len(".py")].split("/")[:-1]

    visitor = _ImportVisitor(package_parts)
    visitor.visit(module.tree)
    module.imports = visitor.records
    module.symbol_origins = visitor.origins


class _ImportVisitor(ast.NodeVisitor):
    """Collects imports with lazy/TYPE_CHECKING context and name origins."""

    def __init__(self, package_parts: list[str]) -> None:
        self.package_parts = package_parts
        self.records: list[ImportRecord] = []
        self.origins: dict[str, str] = {}
        self._function_depth = 0
        self._type_checking_depth = 0

    # -- context tracking

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- imports

    def _record(self, target_parts: list[str], line: int, external: bool) -> None:
        self.records.append(
            ImportRecord(
                target=".".join(target_parts),
                line=line,
                external=external,
                lazy=self._function_depth > 0,
                type_checking=self._type_checking_depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name.split("."), node.lineno, external=True)
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self.origins[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module_parts = node.module.split(".") if node.module else []
        if node.level:
            base = self.package_parts[: len(self.package_parts) - (node.level - 1)]
            if node.level - 1 > len(self.package_parts):
                base = []
            target = base + module_parts
            self._record(target, node.lineno, external=False)
            for alias in node.names:
                if alias.name == "*":
                    continue
                # `from . import shards` names a submodule: record the edge.
                self._record(target + [alias.name], node.lineno, external=False)
                self.origins[alias.asname or alias.name] = ".".join(target + [alias.name])
        else:
            self._record(module_parts, node.lineno, external=True)
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.origins[alias.asname or alias.name] = ".".join(module_parts + [alias.name])


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


# -------------------------------------------------------------- call lookup


def resolve_call_name(node: ast.Call, origins: dict[str, str]) -> str | None:
    """The dotted origin of a call target, or None when unresolvable.

    ``np.random.default_rng(...)`` with ``np`` imported as numpy resolves
    to ``numpy.random.default_rng``; a call through a local variable (no
    import record) resolves to None — rules accept the false negative
    rather than guess.
    """
    parts: list[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if not isinstance(target, ast.Name):
        return None
    parts.append(target.id)
    parts.reverse()
    head, rest = parts[0], parts[1:]
    origin = origins.get(head)
    if origin is None:
        # Not imported: only bare builtins (open, set, sorted...) resolve.
        return None if rest else head
    return ".".join([origin, *rest])
