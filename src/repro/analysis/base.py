"""Checker protocol and the rule registry.

A checker owns one rule family.  Per-module rules override
:meth:`Checker.check_module`; whole-project rules (layering, schema) get
every parsed module at once via :meth:`Checker.check_project`.  Checkers
*report* raw findings — suppression pragmas, rule selection, and baseline
filtering are the engine's job, so every rule gets them for free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable

from .findings import Finding, Rule
from .source import SourceModule


@dataclass
class Project:
    """Everything the engine parsed, handed to project-level checkers."""

    root: Path
    package: str
    modules: list[SourceModule]
    manifest_path: Path | None = None
    manifest: dict | None = None

    def module_by_rel(self, rel: str) -> SourceModule | None:
        for module in self.modules:
            if module.rel == rel:
                return module
        return None


class Checker:
    """Base class: subclasses declare ``rules`` and override one hook."""

    rules: tuple[Rule, ...] = ()

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # ---------------------------------------------------------------- helpers

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(f"{type(self).__name__} does not declare rule {rule_id!r}")

    def finding(
        self, rule_id: str, module: SourceModule, node: ast.AST | None, message: str,
        line: int | None = None,
    ) -> Finding:
        """Build a finding for ``node`` (or an explicit line) in ``module``."""
        rule = self.rule(rule_id)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=module.rel,
            line=line if line is not None else getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1 if node is not None else 1,
            message=message,
        )


@dataclass
class Registry:
    """The set of checkers the engine runs, with rule-id lookup."""

    checkers: list[Checker] = field(default_factory=list)

    @property
    def rules(self) -> dict[str, Rule]:
        table: dict[str, Rule] = {}
        for checker in self.checkers:
            for rule in checker.rules:
                if rule.id in table:
                    raise ValueError(f"duplicate rule id {rule.id!r}")
                table[rule.id] = rule
        return table

    def resolve_selection(self, selection: Iterable[str]) -> frozenset[str]:
        """Expand rule ids / families into concrete rule ids.

        Raises :class:`KeyError` naming the first unknown selector — the
        CLI turns that into exit code 2.
        """
        table = self.rules
        families = {rule.family for rule in table.values()}
        selected: set[str] = set()
        for item in selection:
            if item in table:
                selected.add(item)
            elif item in families:
                selected.update(rid for rid, rule in table.items() if rule.family == item)
            else:
                raise KeyError(
                    f"unknown rule or family {item!r}; known: "
                    f"{', '.join(sorted(table))}"
                )
        return frozenset(selected)
