"""``python -m repro lint`` — the static-analysis entry point.

Exit codes follow ``repro verify``: 0 = tree is clean, 1 = findings,
2 = bad usage (unknown rule, unreadable root).  The default root is the
installed ``repro`` package itself, so CI needs no arguments.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import IO

from .engine import LintConfig, default_registry, run_lint, write_baseline

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``lint``'s arguments (shared by the repro CLI subcommand)."""
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory to lint (default: the repro package source tree)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids or families (default: all rules)",
    )
    parser.add_argument(
        "--format", dest="output_format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id with its severity and rationale, then exit",
    )


def run(args: argparse.Namespace, stream: IO[str]) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    registry = default_registry()

    if args.list_rules:
        for rule_id, rule in sorted(registry.rules.items()):
            stream.write(f"{rule_id:28s} {rule.severity:8s} {rule.summary}\n")
        return EXIT_CLEAN

    default_root = Path(__file__).resolve().parent.parent
    root = Path(args.root) if args.root is not None else default_root
    if not root.is_dir():
        stream.write(f"lint: root {root} is not a directory\n")
        return EXIT_USAGE

    selection: frozenset[str] | None = None
    if args.rules is not None:
        wanted = [part.strip() for part in args.rules.split(",") if part.strip()]
        if not wanted:
            stream.write("lint: --rules given but empty\n")
            return EXIT_USAGE
        try:
            selection = registry.resolve_selection(wanted)
        except KeyError as error:
            stream.write(f"lint: {error.args[0]}\n")
            return EXIT_USAGE

    config = LintConfig(
        root=root,
        rules=selection,
        baseline_path=Path(args.baseline) if args.baseline else None,
    )
    result = run_lint(config, registry)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), result.findings)
        stream.write(
            f"lint: wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}\n"
        )
        return EXIT_CLEAN

    if args.output_format == "json":
        stream.write(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        for finding in result.findings:
            stream.write(finding.render() + "\n")
        tail = (
            f"lint: {len(result.findings)} finding(s) in {result.files_checked} "
            f"file(s) ({result.suppressed} suppressed"
        )
        if result.baseline_filtered:
            tail += f", {result.baseline_filtered} baselined"
        stream.write(tail + ")\n")

    return EXIT_CLEAN if result.clean else EXIT_FINDINGS
