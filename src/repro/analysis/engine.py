"""The lint engine: parse the tree once, run every checker, filter, sort.

Checkers report raw findings; the engine owns everything cross-cutting so
each rule gets it for free:

* ``# repro: allow[...]`` suppression pragmas (per line),
* ``--rules`` selection (ids or families),
* optional committed baseline (grandfathered findings, keyed by
  rule + path + message so they survive line drift),
* deterministic ordering (path, line, column, rule).

Parse failures are findings too (rule ``parse/error``) — a tree that does
not parse must fail the lint gate, not crash it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .base import Checker, Project, Registry
from .determinism import DeterminismChecker
from .exceptions import ExceptionHygieneChecker
from .findings import SEVERITY_ERROR, Finding
from .layering import LayeringChecker
from .lockdiscipline import LockDisciplineChecker
from .schema import SchemaChecker
from .source import SourceModule, parse_module

#: Synthetic rule id for files the parser rejects.
PARSE_RULE = "parse/error"

#: Default manifest location, relative to the lint root.
MANIFEST_REL = "analysis/schema_manifest.json"


def default_registry() -> Registry:
    """Every shipped checker, in deterministic order."""
    return Registry(checkers=[
        DeterminismChecker(),
        LockDisciplineChecker(),
        SchemaChecker(),
        LayeringChecker(),
        ExceptionHygieneChecker(),
    ])


@dataclass
class LintConfig:
    """One lint invocation."""

    root: Path
    rules: frozenset[str] | None = None  # None = all
    manifest_path: Path | None = None  # None = <root>/analysis/schema_manifest.json
    baseline_path: Path | None = None


@dataclass
class LintResult:
    """What one lint run produced (post-filtering, sorted)."""

    findings: list[Finding]
    files_checked: int
    suppressed: int
    baseline_filtered: int
    parse_failures: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        """The ``--format json`` document (stable keys)."""
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "finding_count": len(self.findings),
            "suppressed": self.suppressed,
            "baseline_filtered": self.baseline_filtered,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def run_lint(config: LintConfig, registry: Registry | None = None) -> LintResult:
    """Lint every ``*.py`` under ``config.root`` and return the findings."""
    registry = registry if registry is not None else default_registry()
    modules: list[SourceModule] = []
    findings: list[Finding] = []

    paths = sorted(
        path for path in config.root.rglob("*.py") if "__pycache__" not in path.parts
    )
    parse_failures = 0
    for path in paths:
        rel = path.relative_to(config.root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            modules.append(parse_module(path, rel, text))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            parse_failures += 1
            line = getattr(error, "lineno", None) or 1
            findings.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR,
                path=rel, line=line, column=1,
                message=f"file does not parse: {error}",
            ))

    manifest_path = config.manifest_path
    if manifest_path is None:
        candidate = config.root / MANIFEST_REL
        manifest_path = candidate if candidate.exists() else None
    manifest = None
    if manifest_path is not None:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            findings.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR,
                path=str(manifest_path), line=1, column=1,
                message=f"schema manifest does not parse: {error}",
            ))

    project = Project(
        root=config.root, package="repro", modules=modules,
        manifest_path=manifest_path, manifest=manifest,
    )
    for checker in registry.checkers:
        for module in modules:
            findings.extend(checker.check_module(module, project))
        findings.extend(checker.check_project(project))

    # --- selection (parse errors are never deselectable)
    selected = config.rules
    if selected is not None:
        findings = [f for f in findings if f.rule in selected or f.rule == PARSE_RULE]
        rules_run = tuple(sorted(selected))
    else:
        rules_run = tuple(sorted(registry.rules))

    # --- suppression pragmas
    by_rel = {module.rel: module for module in modules}
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    findings = kept

    # --- baseline
    baseline_filtered = 0
    if config.baseline_path is not None and config.baseline_path.exists():
        baseline = load_baseline(config.baseline_path)
        kept = []
        for finding in findings:
            if _baseline_key(finding) in baseline:
                baseline_filtered += 1
            else:
                kept.append(finding)
        findings = kept

    findings.sort(key=lambda f: f.sort_key)
    return LintResult(
        findings=findings,
        files_checked=len(paths),
        suppressed=suppressed,
        baseline_filtered=baseline_filtered,
        parse_failures=parse_failures,
        rules_run=rules_run,
    )


# ------------------------------------------------------------------ baseline


def _baseline_key(finding: Finding) -> tuple[str, str, str]:
    # No line number: baselines must survive unrelated edits above a finding.
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["rule"], entry["path"], entry["message"])
        for entry in payload.get("findings", [])
    }


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Persist current findings as the grandfathered set (sorted, stable)."""
    keys = sorted({_baseline_key(f) for f in findings})
    entries = [{"rule": rule, "path": path_, "message": message}
               for rule, path_, message in keys]
    path.write_text(
        json.dumps({"findings": entries}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
