"""Import layering: the dependency order of the repo, enforced.

The codebase layers bottom-up:

====  =======================================================  =============
rank  packages                                                 role
====  =======================================================  =============
0     ``util``, ``vision``, ``models``, ``data``, ``sim``      deterministic leaves
1     ``characterization``                                     offline profiling
2     ``core``                                                 scheduling engine
3     ``runtime``, ``baselines``                               execution + stores
4     ``service``, ``experiments``, ``verify``, ``analysis``   orchestration
5     root modules (``cli``, ``__main__``, ...)                entry points
====  =======================================================  =============

A module may import same-rank or lower-rank packages, never higher: the
engine must not know about stores, the stores must not know about the
service.  ``if TYPE_CHECKING:`` imports are exempt (annotations are not a
runtime dependency); lazy (function-level) imports still count for the
order rule — the layering is conceptual, not just an import-time cycle
dodge — but are excluded from the cycle graph, which models what the
interpreter actually executes at import time.

* ``layering/order`` — an import that points up the tower.
* ``layering/cycle`` — a cycle among eagerly-imported modules; reported
  once per cycle, at the edge with the lexicographically first source.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .base import Checker, Project
from .findings import Finding, Rule
from .source import ImportRecord, SourceModule

#: Dotted name -> layer rank, matched by longest prefix (see
#: :func:`rank_for`).  Root-level modules ("" package) sit on top.
#: Sub-module entries (e.g. ``service.http``) pin files whose rank is
#: not obvious from their package alone — the network front-end rides
#: with the service layer it fronts, not above it.
LAYER_RANKS: dict[str, int] = {
    "util": 0,
    "vision": 0,
    "models": 0,
    "data": 0,
    "sim": 0,
    "characterization": 1,
    "core": 2,
    "runtime": 3,
    "runtime.colfmt": 3,
    "runtime.iolayer": 3,
    "baselines": 3,
    "service": 4,
    "service.http": 4,
    "experiments": 4,
    "verify": 4,
    "analysis": 4,
    "": 5,  # cli.py, __main__.py, __init__.py at the package root
}

TOP_RANK = max(LAYER_RANKS.values())


def rank_for(dotted: str) -> int:
    """Layer rank of a package-relative dotted name, longest prefix first.

    ``service.http`` finds its own entry; ``service.queue`` falls back
    to ``service``; a name nobody ranked falls through to the root rank
    (:data:`TOP_RANK`), so importing it from inside the tower fails loud
    until someone assigns it a layer.
    """
    parts = dotted.split(".") if dotted else []
    while parts:
        candidate = ".".join(parts)
        if candidate in LAYER_RANKS:
            return LAYER_RANKS[candidate]
        parts.pop()
    return LAYER_RANKS[""]


class LayeringChecker(Checker):
    rules = (
        Rule("layering/order", "error",
             "imports must point down the layer tower, never up"),
        Rule("layering/cycle", "error",
             "import cycles make module initialization order-dependent"),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self._check_order(module))
        findings.extend(self._check_cycles(project))
        return findings

    # ------------------------------------------------------------------ order

    def _check_order(self, module: SourceModule) -> Iterator[Finding]:
        source_rank = rank_for(module.module_name)
        for record in module.imports:
            target = _internal_target(record)
            if target is None or record.type_checking:
                continue
            target_rank = rank_for(target)
            if target_rank > source_rank:
                yield self.finding(
                    "layering/order", module, None,
                    f"{module.package or 'root'} (layer {source_rank}) imports "
                    f"{target} (layer {target_rank}); dependencies must point "
                    f"down the tower",
                    line=record.line,
                )

    # ------------------------------------------------------------------ cycles

    def _check_cycles(self, project: Project) -> Iterator[Finding]:
        graph: dict[str, dict[str, int]] = {}
        names = {module.module_name for module in project.modules}
        # `from x import name` records both `x` and `x.name`; collapse
        # edges onto real module names so the graph matches the files.
        for module in project.modules:
            edges = graph.setdefault(module.module_name, {})
            for record in module.imports:
                target = _internal_target(record)
                if target is None or record.type_checking or record.lazy:
                    continue
                resolved = _resolve_to_module(target, names)
                if resolved is None or resolved == module.module_name:
                    continue
                if module.module_name.startswith(resolved + "."):
                    # A submodule "imports" its own package __init__ on any
                    # `from . import x` — Python resolves that against the
                    # partially-initialized parent, so it is not a real cycle.
                    continue
                edges.setdefault(resolved, record.line)

        reported: set[frozenset[str]] = set()
        for cycle in _find_cycles(graph):
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            start = min(cycle)
            ordered = _rotate(cycle, start)
            first_hop = ordered[1] if len(ordered) > 1 else ordered[0]
            line = graph[start].get(first_hop, 1)
            module = project.module_by_rel(_module_rel(start, project))
            if module is None:
                continue
            yield self.finding(
                "layering/cycle", module, None,
                "import cycle: " + " -> ".join([*ordered, ordered[0]]),
                line=line,
            )


def _internal_target(record: ImportRecord) -> str | None:
    """Package-relative dotted target for in-repo imports, else None.

    Relative imports are already package-relative; absolute
    ``repro.x.y`` imports are internal too — strip the package prefix.
    """
    if not record.external:
        return record.target
    parts = record.target.split(".")
    if parts[0] == "repro":
        return ".".join(parts[1:]) if len(parts) > 1 else ""
    return None


def _resolve_to_module(target: str, names: set[str]) -> str | None:
    """Longest prefix of ``target`` that is a real module, or None."""
    parts = target.split(".")
    while parts:
        candidate = ".".join(parts)
        if candidate in names:
            return candidate
        parts.pop()
    return None


def _module_rel(module_name: str, project: Project) -> str:
    rel = module_name.replace(".", "/") + ".py"
    if project.module_by_rel(rel) is not None:
        return rel
    return module_name.replace(".", "/") + "/__init__.py"


def _find_cycles(graph: dict[str, dict[str, int]]) -> list[list[str]]:
    """Elementary cycles via iterative DFS back-edge detection.

    Not Johnson's algorithm: a lint pass only needs *which* cycles exist,
    and a back-edge walk finds at least one representative per strongly
    connected component, which is what a human needs to fix it.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    cycles: list[list[str]] = []

    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        path = [root]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in color:
                    continue
                if color[child] == GRAY:
                    cycles.append(path[path.index(child):])
                elif color[child] == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    stack.append((child, iter(sorted(graph.get(child, {})))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return cycles


def _rotate(cycle: list[str], start: str) -> list[str]:
    index = cycle.index(start)
    return cycle[index:] + cycle[:index]
