"""Repo-aware static analysis: the invariants the tests assume, checked at lint time.

The differential fuzz harness (``repro verify``) proves determinism
*dynamically* — same seeds, same bytes.  This package proves the
structural preconditions *statically*, on every file, before anything
runs: no ambient entropy in the deterministic tiers, atomic writes and
lock discipline in the stores, persisted schemas pinned to a committed
manifest, imports pointing down the layer tower, and no swallowed
exceptions in the execution loops.

Run it as ``python -m repro lint`` (exit 0 clean / 1 findings / 2 bad
usage).  Silence a deliberate violation inline::

    handle = open(lock_path, "a+")  # repro: allow[locks/raw-write]

and declare lock-guarded state so the guard is enforced::

    self._state = threading.Lock()  # repro: guards[_jobs, _closed]
"""

from .base import Checker, Project, Registry
from .engine import LintConfig, LintResult, default_registry, run_lint
from .findings import Finding, Rule
from .source import SourceModule, parse_module

__all__ = [
    "Checker",
    "Finding",
    "LintConfig",
    "LintResult",
    "Project",
    "Registry",
    "Rule",
    "SourceModule",
    "default_registry",
    "parse_module",
    "run_lint",
]
