"""Marlin baseline (Apicharttrisorn et al., SenSys'19), paper's SOTA rival.

Marlin saves energy by alternating a full DNN with a lightweight visual
tracker: the DNN anchors the target, the tracker follows it cheaply, and
the DNN re-fires when the tracker loses confidence, when the scene shifts,
or after a refresh interval.  It is context-aware but single-model and
GPU-only — exactly the comparison point for SHIFT's multi-model,
multi-accelerator advantage (Table II).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..data.generator import Frame
from ..core.policy import Policy, RuntimeServices
from ..core.records import FrameRecord
from ..sim.accelerator import Accelerator
from ..vision.bbox import iou as box_iou
from ..vision.ncc import ncc
from ..vision.tracker import TemplateTracker

# Cost of one tracker step on the CPU: template matching over a bounded
# search window (measured order of magnitude for correlation trackers on
# embedded ARM cores).
TRACKER_LATENCY_S = 0.008
TRACKER_POWER_W = 3.5

# Tracker freshness: re-run the DNN at least this often (frames).
DEFAULT_REDETECT_INTERVAL = 12
# Global scene change that forces a redetection.
DEFAULT_SCENE_CHANGE_NCC = 0.35


class MarlinPolicy(Policy):
    """DNN + tracker alternation on a fixed model and accelerator."""

    def __init__(
        self,
        model_name: str = "yolov7",
        accelerator_name: str = "gpu",
        redetect_interval: int = DEFAULT_REDETECT_INTERVAL,
        scene_change_ncc: float = DEFAULT_SCENE_CHANGE_NCC,
    ) -> None:
        if redetect_interval < 1:
            raise ValueError("redetect_interval must be >= 1")
        self.model_name = model_name
        self.accelerator_name = accelerator_name
        self.redetect_interval = redetect_interval
        self.scene_change_ncc = scene_change_ncc
        self.name = f"marlin:{model_name}"
        self._services: RuntimeServices | None = None
        self._accelerator: Accelerator | None = None
        self._tracker = TemplateTracker()
        self._frames_since_detection = 0
        self._previous_image = None
        self._previous_index: int | None = None
        self._first_frame = True
        self._frame_ncc: np.ndarray | None = None

    def fingerprint(self) -> str:
        """Run-store identity: model, accelerator, and both thresholds."""
        return hashlib.sha256(
            "|".join(
                (
                    "marlin",
                    self.model_name,
                    self.accelerator_name,
                    str(self.redetect_interval),
                    repr(self.scene_change_ncc),
                    repr(TRACKER_LATENCY_S),
                    repr(TRACKER_POWER_W),
                )
            ).encode("utf-8")
        ).hexdigest()

    def begin(self, services: RuntimeServices) -> None:
        """Bind to the platform and reset the tracker state."""
        accelerator = services.soc.accelerator(self.accelerator_name)
        if not accelerator.supports(self.model_name):
            raise ValueError(
                f"model {self.model_name!r} cannot run on {self.accelerator_name!r}"
            )
        self._services = services
        self._accelerator = accelerator
        self._tracker.reset()
        self._frames_since_detection = 0
        self._previous_image = None
        self._previous_index = None
        self._first_frame = True
        # Fast tier: the scene-change gate compares consecutive frames —
        # the exact signal the trace precomputes (bit-identically) with
        # its stacked NCC kernel.
        self._frame_ncc = services.trace.consecutive_frame_ncc() if services.fast else None

    # ------------------------------------------------------------- step

    def step(self, frame: Frame) -> FrameRecord:
        """Track when stable; redetect when stale, lost, or scene changed."""
        if self._services is None or self._accelerator is None:
            raise RuntimeError("MarlinPolicy.step() called before begin()")

        must_detect = self._first_frame or not self._tracker.has_target
        if not must_detect and self._frames_since_detection >= self.redetect_interval:
            must_detect = True
        if not must_detect and self._previous_image is not None:
            precomputed = (
                self._frame_ncc is not None
                and self._previous_index == frame.index - 1
            )
            scene_similarity = (
                float(self._frame_ncc[frame.index - 1]) if precomputed
                else ncc(self._previous_image, frame.image)
            )
            if scene_similarity < self.scene_change_ncc:
                must_detect = True

        if must_detect:
            record = self._detect_step(frame)
        else:
            record = self._track_step(frame)
            if record is None:  # tracker lost the target mid-frame
                record = self._detect_step(frame)
        self._previous_image = frame.image
        self._previous_index = frame.index
        return record

    def _detect_step(self, frame: Frame) -> FrameRecord:
        services = self._services
        assert services is not None and self._accelerator is not None
        stall_s = 0.0
        load_energy = 0.0
        cold = False
        if self._first_frame:
            load = services.engine.run_load(self.model_name, self._accelerator)
            stall_s = load.load_time_s
            load_energy = load.energy_j
            cold = True
            self._first_frame = False

        inference = services.engine.run_inference(self.model_name, self._accelerator)
        outcome = services.trace.outcome(self.model_name, frame.index)
        self._frames_since_detection = 0
        if outcome.box is not None and not outcome.box.is_degenerate():
            self._tracker.anchor(frame.image, outcome.box)
        else:
            self._tracker.reset()
        return FrameRecord(
            frame_index=frame.index,
            model_name=self.model_name,
            accelerator_name=self.accelerator_name,
            box=outcome.box,
            confidence=outcome.confidence,
            iou=outcome.iou,
            ground_truth_present=frame.ground_truth is not None,
            detected=outcome.detected,
            latency_s=inference.latency_s + stall_s,
            inference_s=inference.latency_s,
            stall_s=stall_s,
            overhead_s=0.0,
            energy_j=inference.energy_j + load_energy,
            swap=False,
            cold_load=cold,
            used_tracker=False,
        )

    def _track_step(self, frame: Frame) -> FrameRecord | None:
        services = self._services
        assert services is not None
        result = self._tracker.track(frame.image)
        if result.lost:
            return None
        services.engine.charge_overhead("VDD_CPU", TRACKER_POWER_W, TRACKER_LATENCY_S)
        self._frames_since_detection += 1
        achieved_iou = 0.0
        if frame.ground_truth is not None and result.box is not None:
            achieved_iou = box_iou(result.box, frame.ground_truth)
        return FrameRecord(
            frame_index=frame.index,
            model_name=self.model_name,
            accelerator_name=self.accelerator_name,
            box=result.box,
            confidence=max(0.0, result.score),
            iou=achieved_iou,
            ground_truth_present=frame.ground_truth is not None,
            detected=result.box is not None,
            latency_s=TRACKER_LATENCY_S,
            inference_s=0.0,
            stall_s=0.0,
            overhead_s=TRACKER_LATENCY_S,
            energy_j=TRACKER_POWER_W * TRACKER_LATENCY_S,
            swap=False,
            cold_load=False,
            used_tracker=True,
        )
