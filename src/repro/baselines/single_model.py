"""Single-model baseline: the conventional one-size-fits-all deployment.

Runs one fixed (model, accelerator) pair on every frame — the setup the
paper's introduction critiques and the reference point for the headline
"up to 7.5x energy / 2.8x latency" claims (YoloV7 on GPU).
"""

from __future__ import annotations

import hashlib

from ..data.generator import Frame
from ..core.policy import Policy, RuntimeServices
from ..core.records import FrameRecord
from ..sim.accelerator import Accelerator


class SingleModelPolicy(Policy):
    """Always run ``model_name`` on ``accelerator_name``."""

    def __init__(self, model_name: str, accelerator_name: str = "gpu") -> None:
        self.model_name = model_name
        self.accelerator_name = accelerator_name
        self.name = f"single:{model_name}@{accelerator_name}"
        self._services: RuntimeServices | None = None
        self._accelerator: Accelerator | None = None
        self._first_frame = True

    def fingerprint(self) -> str:
        """Run-store identity: the fixed (model, accelerator) pair."""
        return hashlib.sha256(
            f"single-model|{self.model_name}|{self.accelerator_name}".encode("utf-8")
        ).hexdigest()

    def begin(self, services: RuntimeServices) -> None:
        """Validate the pair and charge the one-time model load."""
        accelerator = services.soc.accelerator(self.accelerator_name)
        if not accelerator.supports(self.model_name):
            raise ValueError(
                f"model {self.model_name!r} cannot run on {self.accelerator_name!r}"
            )
        self._services = services
        self._accelerator = accelerator
        self._first_frame = True

    def step(self, frame: Frame) -> FrameRecord:
        """Run the fixed pair on one frame."""
        if self._services is None or self._accelerator is None:
            raise RuntimeError("SingleModelPolicy.step() called before begin()")
        services = self._services

        stall_s = 0.0
        load_energy = 0.0
        cold = False
        if self._first_frame:
            # The deployment loads its engine once at startup.
            load = services.engine.run_load(self.model_name, self._accelerator)
            stall_s = load.load_time_s
            load_energy = load.energy_j
            cold = True
            self._first_frame = False

        inference = services.engine.run_inference(self.model_name, self._accelerator)
        outcome = services.trace.outcome(self.model_name, frame.index)
        return FrameRecord(
            frame_index=frame.index,
            model_name=self.model_name,
            accelerator_name=self.accelerator_name,
            box=outcome.box,
            confidence=outcome.confidence,
            iou=outcome.iou,
            ground_truth_present=frame.ground_truth is not None,
            detected=outcome.detected,
            latency_s=inference.latency_s + stall_s,
            inference_s=inference.latency_s,
            stall_s=stall_s,
            overhead_s=0.0,
            energy_j=inference.energy_j + load_energy,
            swap=False,
            cold_load=cold,
        )
