"""Oracle baselines: the paper's performance ceilings (§IV).

The Oracle sees every model's result on every frame in advance.  Among the
(model, accelerator) pairs whose IoU meets the 0.5 threshold it picks the
one optimizing the targeted metric (Energy, Accuracy, or Latency); when no
pair qualifies, it optimizes the metric alone.  All models are presumed
preloaded — switching is free — so Oracle numbers bound what any real
scheduler could do.
"""

from __future__ import annotations

import hashlib
from enum import Enum

from ..data.generator import Frame
from ..core.policy import Policy, RuntimeServices
from ..core.records import FrameRecord
from ..sim.profiles import perf_point

ORACLE_IOU_THRESHOLD = 0.5


class OracleObjective(Enum):
    """The metric an Oracle optimizes."""

    ENERGY = "energy"
    ACCURACY = "accuracy"
    LATENCY = "latency"


class OraclePolicy(Policy):
    """Clairvoyant per-frame pair selection with free switching."""

    def __init__(self, objective: OracleObjective) -> None:
        self.objective = objective
        self.name = f"oracle:{objective.value}"
        self._services: RuntimeServices | None = None
        self._pairs: list[tuple[str, str]] = []
        self._previous_pair: tuple[str, str] | None = None

    def fingerprint(self) -> str:
        """Run-store identity: the objective and the IoU threshold."""
        return hashlib.sha256(
            f"oracle|{self.objective.value}|{ORACLE_IOU_THRESHOLD!r}".encode("utf-8")
        ).hexdigest()

    def begin(self, services: RuntimeServices) -> None:
        """Enumerate the schedulable pairs of the platform."""
        self._services = services
        self._pairs = services.soc.schedulable_pairs(services.trace.model_names())
        if not self._pairs:
            raise RuntimeError("no schedulable (model, accelerator) pairs on this platform")
        self._previous_pair = None

    # ------------------------------------------------------------- step

    def _pair_cost(self, pair: tuple[str, str], iou: float) -> tuple[float, ...]:
        """Sort key: lower is better for the pair under this objective."""
        services = self._services
        assert services is not None
        accel = services.soc.accelerator(pair[1])
        point = perf_point(pair[0], accel.accel_class)
        if self.objective is OracleObjective.ENERGY:
            primary = point.energy_j
        elif self.objective is OracleObjective.LATENCY:
            primary = point.latency_s
        else:
            primary = -iou
        # Deterministic tie-breaks: energy, then name.
        return (primary, point.energy_j, pair[0], pair[1])

    def step(self, frame: Frame) -> FrameRecord:
        """Pick the clairvoyantly best pair for this frame and run it."""
        services = self._services
        if services is None:
            raise RuntimeError("OraclePolicy.step() called before begin()")

        ious = {
            pair: services.trace.outcome(pair[0], frame.index).iou for pair in self._pairs
        }
        qualifying = [pair for pair in self._pairs if ious[pair] >= ORACLE_IOU_THRESHOLD]
        candidates = qualifying if qualifying else self._pairs
        best = min(candidates, key=lambda pair: self._pair_cost(pair, ious[pair]))

        accelerator = services.soc.accelerator(best[1])
        inference = services.engine.run_inference(best[0], accelerator)
        outcome = services.trace.outcome(best[0], frame.index)
        swap = self._previous_pair is not None and best != self._previous_pair
        self._previous_pair = best
        return FrameRecord(
            frame_index=frame.index,
            model_name=best[0],
            accelerator_name=best[1],
            box=outcome.box,
            confidence=outcome.confidence,
            iou=outcome.iou,
            ground_truth_present=frame.ground_truth is not None,
            detected=outcome.detected,
            latency_s=inference.latency_s,
            inference_s=inference.latency_s,
            stall_s=0.0,
            overhead_s=0.0,
            energy_j=inference.energy_j,
            swap=swap,
            cold_load=False,
        )


def oracle_energy() -> OraclePolicy:
    """Oracle E: minimum energy among qualifying pairs."""
    return OraclePolicy(OracleObjective.ENERGY)


def oracle_accuracy() -> OraclePolicy:
    """Oracle A: maximum IoU."""
    return OraclePolicy(OracleObjective.ACCURACY)


def oracle_latency() -> OraclePolicy:
    """Oracle L: minimum latency among qualifying pairs."""
    return OraclePolicy(OracleObjective.LATENCY)
