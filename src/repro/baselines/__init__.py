"""Baseline policies: single-model, Marlin, and the Oracles."""

from .marlin import (
    DEFAULT_REDETECT_INTERVAL,
    DEFAULT_SCENE_CHANGE_NCC,
    TRACKER_LATENCY_S,
    TRACKER_POWER_W,
    MarlinPolicy,
)
from .oracle import (
    ORACLE_IOU_THRESHOLD,
    OracleObjective,
    OraclePolicy,
    oracle_accuracy,
    oracle_energy,
    oracle_latency,
)
from .single_model import SingleModelPolicy

__all__ = [
    "MarlinPolicy",
    "DEFAULT_REDETECT_INTERVAL",
    "DEFAULT_SCENE_CHANGE_NCC",
    "TRACKER_LATENCY_S",
    "TRACKER_POWER_W",
    "OraclePolicy",
    "OracleObjective",
    "oracle_energy",
    "oracle_accuracy",
    "oracle_latency",
    "ORACLE_IOU_THRESHOLD",
    "SingleModelPolicy",
]
