"""SHIFT: context-aware multi-model object detection for heterogeneous SoCs.

A full reproduction of Davis & Belviranli, *"Context-aware Multi-Model
Object Detection for Diversely Heterogeneous Compute Systems"* (DATE 2024),
including the simulated substrates (heterogeneous SoC, object-detection
model zoo, drone-video scenarios) the paper's testbed provided in hardware.

Quickstart::

    from repro import (
        default_zoo, xavier_nx_with_oakd, characterize,
        ShiftPipeline, ExperimentRunner, TraceStore,
        evaluation_scenarios, average_metrics,
    )

    zoo = default_zoo()
    soc = xavier_nx_with_oakd()
    bundle = characterize(zoo, soc)           # offline phase (paper SIII-A)
    shift = ShiftPipeline(bundle)             # the runtime (SIII-B/C)

    # Traces build in parallel and persist under ./traces — a second
    # invocation of this script rebuilds nothing.
    runner = ExperimentRunner(zoo, store=TraceStore("traces"), max_workers=4)
    metrics = runner.run_policy_on_scenarios(shift, evaluation_scenarios())
    print(average_metrics(metrics, "shift").mean_iou)

For a single scenario, ``trace = runner.trace(scenario_by_name(...))`` and
``aggregate(run_policy(shift, trace, soc=soc))`` mirror the paper's
one-policy-one-video runs.
"""

from .baselines import (
    MarlinPolicy,
    OracleObjective,
    OraclePolicy,
    SingleModelPolicy,
    oracle_accuracy,
    oracle_energy,
    oracle_latency,
)
from .characterization import CharacterizationBundle, characterize
from .core import (
    PAPER_CONFIG,
    ConfidenceGraph,
    ContextDetector,
    DynamicModelLoader,
    ShiftConfig,
    ShiftPipeline,
    ShiftScheduler,
    TraitTable,
)
from .data import (
    Scenario,
    ScenarioMatrix,
    ScenarioRecipe,
    Segment,
    SegmentFamily,
    all_scenarios,
    build_validation_set,
    default_matrix,
    evaluation_scenarios,
    extended_scenarios,
    register_scenario,
    render_scenario,
    scenario_by_name,
    scenario_names,
)
from .models import ModelSpec, ModelZoo, default_zoo, detect
from .runtime import (
    ExperimentRunner,
    FrameRecord,
    Policy,
    RunMetrics,
    RunResult,
    ScenarioTrace,
    TraceCache,
    TraceStore,
    aggregate,
    average_metrics,
    run_policy,
    run_policy_on_scenarios,
)
from .service import SweepHandle, SweepRequest, SweepService
from .verify import FuzzReport, fuzz_matrix, fuzz_scenarios, verify_scenario
from .sim import (
    AcceleratorClass,
    ExecutionEngine,
    SoC,
    gpu_only_soc,
    xavier_nx_with_oakd,
)
from .vision import BoundingBox, iou

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # baselines
    "MarlinPolicy",
    "OraclePolicy",
    "OracleObjective",
    "SingleModelPolicy",
    "oracle_energy",
    "oracle_accuracy",
    "oracle_latency",
    # characterization
    "CharacterizationBundle",
    "characterize",
    # core
    "ConfidenceGraph",
    "ContextDetector",
    "DynamicModelLoader",
    "ShiftConfig",
    "PAPER_CONFIG",
    "ShiftPipeline",
    "ShiftScheduler",
    "TraitTable",
    # data
    "Scenario",
    "ScenarioMatrix",
    "ScenarioRecipe",
    "Segment",
    "SegmentFamily",
    "build_validation_set",
    "default_matrix",
    "evaluation_scenarios",
    "extended_scenarios",
    "all_scenarios",
    "register_scenario",
    "render_scenario",
    "scenario_by_name",
    "scenario_names",
    # service
    "SweepHandle",
    "SweepRequest",
    "SweepService",
    # verify
    "FuzzReport",
    "fuzz_matrix",
    "fuzz_scenarios",
    "verify_scenario",
    # models
    "ModelSpec",
    "ModelZoo",
    "default_zoo",
    "detect",
    # runtime
    "ExperimentRunner",
    "FrameRecord",
    "Policy",
    "RunMetrics",
    "RunResult",
    "ScenarioTrace",
    "TraceCache",
    "TraceStore",
    "aggregate",
    "average_metrics",
    "run_policy",
    "run_policy_on_scenarios",
    # sim
    "AcceleratorClass",
    "ExecutionEngine",
    "SoC",
    "xavier_nx_with_oakd",
    "gpu_only_soc",
    # vision
    "BoundingBox",
    "iou",
]
