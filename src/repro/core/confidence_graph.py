"""Confidence graphs: fast cross-model accuracy prediction (paper §III-A).

The confidence graph (CG) converts the confidence score of the *currently
running* model into accuracy predictions for *every* model, without running
them.  Construction follows the paper's six steps:

1. **Nodes** — one per (model, confidence-score range); each node stores the
   model's expected accuracy (mean IoU) inside that range.
2. **Edges** — for every validation image, connect the nodes each model's
   confidence landed in; repeated co-occurrence increments the edge weight.
3. **Normalize + invert** — weights are normalized *per node* (so globally
   popular edges don't dominate) and inverted into traversal costs: strongly
   correlated score ranges become cheap to traverse.
4. **Bounded search** — from every node, collect neighbours within a
   distance threshold (Dijkstra bounded by the threshold; the paper says
   BFS, which on a weighted graph is exactly a bounded shortest-path pass).
5. **Consolidate** — multiple reachable nodes of the same model collapse
   into a single prediction by distance-weighted averaging.
6. **Map** — the result is stored as a plain lookup: node -> {model ->
   (predicted accuracy, distance)}.  Runtime prediction is a dict lookup.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..characterization.profiler import ConfidenceObservation

DEFAULT_BIN_WIDTH = 0.1
DEFAULT_DISTANCE_THRESHOLD = 0.5

# Weight used when consolidating a node reached at distance d; close nodes
# dominate, but even the threshold-edge nodes retain influence.
_CONSOLIDATION_EPSILON = 0.1

NodeKey = tuple[str, int]  # (model name, confidence bin index)


@dataclass(frozen=True)
class Prediction:
    """Predicted accuracy of one model, from the CG lookup."""

    model_name: str
    accuracy: float
    distance: float


class DenseConfidenceLookup:
    """The prediction map flattened into ndarrays for the run hot path.

    :meth:`ConfidenceGraph.predict` walks ``dict`` chains and materializes
    sorted :class:`Prediction` lists — fine offline, measurable per frame.
    This view stores the same floats as three arrays indexed by
    ``(source model, confidence bin, target model)``:

    ``accuracy``
        predicted accuracy (exactly the value ``predict`` would report);
    ``distance``
        consolidated traversal distance of that prediction;
    ``valid``
        whether the target model is reachable from that source node.

    Source rows for (model, bin) nodes never observed during
    characterization are pre-filled from the nearest populated bin of the
    same model — the same totality fallback ``predict`` applies at
    runtime, paid once at build instead of per lookup.  Models are the
    graph's sorted model list; bins cover the full ``[0, 1]`` confidence
    range under the graph's bin width.
    """

    def __init__(self, graph: "ConfidenceGraph") -> None:
        self.models: list[str] = graph.models()
        self.model_index: dict[str, int] = {m: i for i, m in enumerate(self.models)}
        self.bin_count = int(math.ceil(1.0 / graph.bin_width))
        self._graph = graph
        count = len(self.models)
        self.accuracy = np.full((count, self.bin_count, count), np.nan, dtype=np.float64)
        self.distance = np.full((count, self.bin_count, count), np.nan, dtype=np.float64)
        self.valid = np.zeros((count, self.bin_count, count), dtype=bool)
        for source_idx, model in enumerate(self.models):
            for bin_idx in range(self.bin_count):
                key = (model, bin_idx)
                if key not in graph._prediction_map:
                    fallback = graph._nearest_populated_bin(model, bin_idx)
                    if fallback is None:  # pragma: no cover - model has nodes by construction
                        continue
                    key = fallback
                for prediction in graph._prediction_map[key].values():
                    target_idx = self.model_index.get(prediction.model_name)
                    if target_idx is None:  # pragma: no cover - map models ⊆ graph models
                        continue
                    self.accuracy[source_idx, bin_idx, target_idx] = prediction.accuracy
                    self.distance[source_idx, bin_idx, target_idx] = prediction.distance
                    self.valid[source_idx, bin_idx, target_idx] = True

    def row(self, model_name: str, confidence: float) -> tuple[np.ndarray, np.ndarray] | None:
        """``(accuracy, valid)`` vectors over target models, or ``None``.

        ``None`` mirrors ``predict`` returning an empty list for a model
        the graph has never seen.  The returned arrays are views into the
        dense tables and must be treated as read-only.
        """
        source_idx = self.model_index.get(model_name)
        if source_idx is None:
            return None
        bin_idx = self._graph.bin_index(confidence)
        return self.accuracy[source_idx, bin_idx], self.valid[source_idx, bin_idx]


@dataclass
class _Node:
    key: NodeKey
    expected_accuracy: float
    observation_count: int
    edges: dict[NodeKey, float] = field(default_factory=dict)  # neighbour -> raw weight


class ConfidenceGraph:
    """The built graph plus its prediction map.

    Build once from characterization observations with :meth:`build`; the
    distance threshold can be re-applied cheaply via
    :meth:`with_distance_threshold` (the graph structure is reused, only
    the bounded search and consolidation re-run) — the sensitivity analysis
    sweeps this parameter.
    """

    def __init__(
        self,
        nodes: dict[NodeKey, _Node],
        bin_width: float,
        distance_threshold: float,
    ) -> None:
        if not nodes:
            raise ValueError("a confidence graph needs at least one node")
        self._nodes = nodes
        self.bin_width = bin_width
        self.distance_threshold = distance_threshold
        self._prediction_map = self._build_prediction_map()
        self._dense: DenseConfidenceLookup | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------- build

    @classmethod
    def build(
        cls,
        observations: list[ConfidenceObservation],
        bin_width: float = DEFAULT_BIN_WIDTH,
        distance_threshold: float = DEFAULT_DISTANCE_THRESHOLD,
    ) -> "ConfidenceGraph":
        """Construct the CG from per-image confidence/IoU observations."""
        if not observations:
            raise ValueError("cannot build a confidence graph from zero observations")
        if not 0.0 < bin_width <= 1.0:
            raise ValueError(f"bin_width must be within (0, 1], got {bin_width}")
        if distance_threshold < 0.0:
            raise ValueError("distance_threshold must be non-negative")

        # Step 1: nodes with expected accuracy per (model, bin).
        sums: dict[NodeKey, float] = {}
        counts: dict[NodeKey, int] = {}
        for obs in observations:
            for model, (confidence, iou) in obs.readings.items():
                key = (model, cls.bin_index_static(confidence, bin_width))
                sums[key] = sums.get(key, 0.0) + iou
                counts[key] = counts.get(key, 0) + 1
        nodes = {
            key: _Node(
                key=key,
                expected_accuracy=sums[key] / counts[key],
                observation_count=counts[key],
            )
            for key in sums
        }

        # Step 2: co-occurrence edges between different models' nodes.
        for obs in observations:
            keys = [
                (model, cls.bin_index_static(confidence, bin_width))
                for model, (confidence, _iou) in obs.readings.items()
            ]
            for i in range(len(keys)):
                for j in range(i + 1, len(keys)):
                    a, b = keys[i], keys[j]
                    if a[0] == b[0]:
                        continue
                    nodes[a].edges[b] = nodes[a].edges.get(b, 0.0) + 1.0
                    nodes[b].edges[a] = nodes[b].edges.get(a, 0.0) + 1.0

        return cls(nodes=nodes, bin_width=bin_width, distance_threshold=distance_threshold)

    @staticmethod
    def bin_index_static(confidence: float, bin_width: float) -> int:
        """Bin index of a confidence score; 1.0 folds into the top bin."""
        clamped = min(max(confidence, 0.0), 1.0)
        index = int(clamped / bin_width)
        top = int(math.ceil(1.0 / bin_width)) - 1
        return min(index, top)

    def bin_index(self, confidence: float) -> int:
        """Bin index under this graph's bin width."""
        return self.bin_index_static(confidence, self.bin_width)

    # --------------------------------------------------------- traversal

    def _edge_cost(self, source: NodeKey, target: NodeKey) -> float:
        """Step 3: per-node normalized, inverted edge weight."""
        node = self._nodes[source]
        max_weight = max(node.edges.values())
        return 1.0 - node.edges[target] / max_weight

    def _bounded_search(self, start: NodeKey) -> dict[NodeKey, float]:
        """Step 4: all nodes within ``distance_threshold`` of ``start``."""
        distances: dict[NodeKey, float] = {start: 0.0}
        frontier: list[tuple[float, NodeKey]] = [(0.0, start)]
        while frontier:
            dist, key = heapq.heappop(frontier)
            if dist > distances.get(key, math.inf):
                continue
            node = self._nodes[key]
            if not node.edges:
                continue
            for neighbour in node.edges:
                cost = self._edge_cost(key, neighbour)
                candidate = dist + cost
                if candidate > self.distance_threshold:
                    continue
                if candidate < distances.get(neighbour, math.inf):
                    distances[neighbour] = candidate
                    heapq.heappush(frontier, (candidate, neighbour))
        return distances

    def _consolidate(self, reachable: dict[NodeKey, float]) -> dict[str, Prediction]:
        """Step 5: distance-weighted average per model."""
        weight_sum: dict[str, float] = {}
        acc_sum: dict[str, float] = {}
        dist_sum: dict[str, float] = {}
        for key, distance in reachable.items():
            model = key[0]
            weight = 1.0 / (_CONSOLIDATION_EPSILON + distance)
            weight_sum[model] = weight_sum.get(model, 0.0) + weight
            acc_sum[model] = acc_sum.get(model, 0.0) + weight * self._nodes[key].expected_accuracy
            dist_sum[model] = dist_sum.get(model, 0.0) + weight * distance
        return {
            model: Prediction(
                model_name=model,
                accuracy=acc_sum[model] / weight_sum[model],
                distance=dist_sum[model] / weight_sum[model],
            )
            for model in weight_sum
        }

    def _build_prediction_map(self) -> dict[NodeKey, dict[str, Prediction]]:
        """Step 6: the runtime lookup map."""
        return {key: self._consolidate(self._bounded_search(key)) for key in self._nodes}

    # ------------------------------------------------------------ lookup

    def predict(self, model_name: str, confidence: float) -> list[Prediction]:
        """Accuracy predictions for all reachable models (runtime hot path).

        When the exact (model, bin) node was never observed during
        characterization, the nearest populated bin of the same model is
        used — the runtime must stay total over unseen confidence values.
        """
        key = (model_name, self.bin_index(confidence))
        if key not in self._prediction_map:
            fallback = self._nearest_populated_bin(model_name, key[1])
            if fallback is None:
                return []
            key = fallback
        return sorted(self._prediction_map[key].values(), key=lambda p: p.model_name)

    def _nearest_populated_bin(self, model_name: str, bin_idx: int) -> NodeKey | None:
        candidates = [key for key in self._nodes if key[0] == model_name]
        if not candidates:
            return None
        return min(candidates, key=lambda key: (abs(key[1] - bin_idx), key[1]))

    def dense(self) -> DenseConfidenceLookup:
        """The ndarray view of the prediction map (built once, cached).

        Serves the fast-run scheduler: one ``(source, bin)`` index replaces
        the per-frame dict walk + sort of :meth:`predict`, with the exact
        same floats.
        """
        if self._dense is None:
            self._dense = DenseConfidenceLookup(self)
        return self._dense

    def fingerprint(self) -> str:
        """Content-addressed identity of the graph (hex digest).

        Hashes every node (key, expected accuracy, observation count, full
        edge set) plus the bin width and distance threshold — everything
        :meth:`predict` depends on.  The run store keys persisted SHIFT
        runs by this (via the policy fingerprint), so rebuilding the graph
        from different observations or parameters invalidates cached runs.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            parts = [repr(self.bin_width), repr(self.distance_threshold)]
            for key in sorted(self._nodes):
                node = self._nodes[key]
                edges = ";".join(
                    f"{neighbour}:{weight!r}" for neighbour, weight in sorted(node.edges.items())
                )
                parts.append(
                    f"{key}|{node.expected_accuracy!r}|{node.observation_count}|{edges}"
                )
            digest.update("\n".join(parts).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------- re-threshold

    def with_distance_threshold(self, distance_threshold: float) -> "ConfidenceGraph":
        """A new graph view with a different bounded-search threshold."""
        if distance_threshold < 0.0:
            raise ValueError("distance_threshold must be non-negative")
        return ConfidenceGraph(
            nodes=self._nodes,
            bin_width=self.bin_width,
            distance_threshold=distance_threshold,
        )

    # ---------------------------------------------------------- metadata

    @property
    def node_count(self) -> int:
        """Number of (model, bin) nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(node.edges) for node in self._nodes.values()) // 2

    def node_keys(self) -> list[NodeKey]:
        """All node keys, sorted."""
        return sorted(self._nodes)

    def expected_accuracy(self, key: NodeKey) -> float:
        """Expected accuracy stored at one node."""
        return self._nodes[key].expected_accuracy

    def observation_count(self, key: NodeKey) -> int:
        """Observations that fell into one node's bin."""
        return self._nodes[key].observation_count

    def models(self) -> list[str]:
        """Distinct models present in the graph."""
        return sorted({key[0] for key in self._nodes})
