"""Trait tables: normalized per-pair energy/latency for the scheduler.

Algorithm 1 consumes energy and latency values that are "pre-determined,
normalized to a 0 to 1 range, and inverted for bigger-is-better
performance indication".  A :class:`TraitTable` holds those values for the
concrete (model, accelerator) pairs of a platform, built from a
characterization bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..characterization.profiler import CharacterizationBundle
from ..sim.soc import SoC

Pair = tuple[str, str]  # (model name, accelerator name)


def _normalize_inverted(values: dict[Pair, float]) -> dict[Pair, float]:
    """Min-max normalize then invert: the cheapest pair scores 1.0."""
    if not values:
        return {}
    low = min(values.values())
    high = max(values.values())
    if high == low:
        return {pair: 1.0 for pair in values}
    return {pair: 1.0 - (value - low) / (high - low) for pair, value in values.items()}


@dataclass(frozen=True)
class PairTraits:
    """Raw and normalized traits of one schedulable pair."""

    pair: Pair
    latency_s: float
    energy_j: float
    power_w: float
    latency_score: float  # normalized+inverted: 1.0 = fastest
    energy_score: float  # normalized+inverted: 1.0 = most frugal


class TraitTable:
    """Scheduler-facing view of the characterization data for one SoC."""

    def __init__(self, pairs: dict[Pair, PairTraits], accuracy_prior: dict[str, float]) -> None:
        if not pairs:
            raise ValueError("a trait table needs at least one schedulable pair")
        self._pairs = pairs
        self._accuracy_prior = dict(accuracy_prior)

    @classmethod
    def build(
        cls,
        bundle: CharacterizationBundle,
        soc: SoC,
        allow_cpu: bool = False,
    ) -> "TraitTable":
        """Assemble the table for every schedulable (model, accelerator) pair."""
        raw_latency: dict[Pair, float] = {}
        raw_energy: dict[Pair, float] = {}
        raw_power: dict[Pair, float] = {}
        for accel in soc.accelerators:
            if not accel.schedulable and not allow_cpu:
                continue
            for model_name in bundle.model_names():
                perf = bundle.performance.get((model_name, accel.accel_class))
                if perf is None:
                    continue
                pair = (model_name, accel.name)
                raw_latency[pair] = perf.mean_latency_s
                raw_energy[pair] = perf.mean_energy_j
                raw_power[pair] = perf.mean_power_w

        latency_scores = _normalize_inverted(raw_latency)
        energy_scores = _normalize_inverted(raw_energy)
        pairs = {
            pair: PairTraits(
                pair=pair,
                latency_s=raw_latency[pair],
                energy_j=raw_energy[pair],
                power_w=raw_power[pair],
                latency_score=latency_scores[pair],
                energy_score=energy_scores[pair],
            )
            for pair in raw_latency
        }
        prior = {name: trait.mean_iou for name, trait in bundle.accuracy.items()}
        return cls(pairs=pairs, accuracy_prior=prior)

    # ------------------------------------------------------------ access

    def pairs(self) -> list[Pair]:
        """All schedulable pairs, sorted for determinism."""
        return sorted(self._pairs)

    def get(self, pair: Pair) -> PairTraits:
        """Traits of one pair."""
        try:
            return self._pairs[pair]
        except KeyError:
            raise KeyError(f"pair {pair!r} is not schedulable on this platform") from None

    def __contains__(self, pair: object) -> bool:
        return pair in self._pairs

    def pairs_for_model(self, model_name: str) -> list[Pair]:
        """Schedulable pairs executing ``model_name``."""
        return sorted(pair for pair in self._pairs if pair[0] == model_name)

    def models(self) -> list[str]:
        """Distinct model names with at least one schedulable pair."""
        return sorted({pair[0] for pair in self._pairs})

    def accuracy_prior(self, model_name: str) -> float:
        """Characterization mean IoU — the scheduler's prior belief."""
        try:
            return self._accuracy_prior[model_name]
        except KeyError:
            raise KeyError(f"no accuracy prior for model {model_name!r}") from None

    def __len__(self) -> int:
        return len(self._pairs)
