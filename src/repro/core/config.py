"""SHIFT runtime configuration.

Defaults are the paper's Table III operating point: goal accuracy 0.25,
momentum 30, distance threshold 0.5, knobs (accuracy, energy, latency) =
(1.0, 0.5, 0.5).  The paper lowers goal accuracy from 0.5 to 0.25 because
the confidence graph systematically *under*-estimates accuracy (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShiftConfig:
    """Tunable parameters of the SHIFT scheduler and pipeline."""

    # Scheduler heuristic (Algorithm 1).
    accuracy_goal: float = 0.25
    momentum: int = 30
    knob_accuracy: float = 1.0
    knob_energy: float = 0.5
    knob_latency: float = 0.5
    # Swap hysteresis: a challenger pair must beat the incumbent's score by
    # this margin before the scheduler switches.  Algorithm 1 leaves this
    # implicit; without it near-tied pairs flip-flop every reschedule and
    # the swap counts of Table III are unreachable.
    switch_margin: float = 0.04

    # Confidence graph.
    bin_width: float = 0.1
    distance_threshold: float = 0.5

    # Ablation switches (all True/False = the paper's full system).
    # use_confidence_graph=False replaces CG predictions with the raw
    # confidence of the running model (other models keep their prior);
    # context_gate=False disables the NCC early-exit (reschedule every
    # frame); naive_loading=True keeps only one model resident per
    # accelerator (no LRU cache of warm engines).
    use_confidence_graph: bool = True
    context_gate: bool = True
    naive_loading: bool = False

    # Pipeline.
    initial_model: str = "yolov7"
    scheduler_overhead_s: float = 0.0015  # <2 ms per frame, §III-B
    scheduler_overhead_power_w: float = 3.0  # CPU draw during scheduling
    prefetch: bool = True  # DML fills free memory with candidate models
    allow_cpu: bool = False  # CPU is profiled but not schedulable (paper)

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy_goal <= 1.0:
            raise ValueError(f"accuracy_goal must be within [0, 1], got {self.accuracy_goal}")
        if self.momentum < 1:
            raise ValueError(f"momentum must be >= 1, got {self.momentum}")
        for knob, label in (
            (self.knob_accuracy, "knob_accuracy"),
            (self.knob_energy, "knob_energy"),
            (self.knob_latency, "knob_latency"),
        ):
            if knob < 0.0:
                raise ValueError(f"{label} must be non-negative, got {knob}")
        if self.switch_margin < 0.0:
            raise ValueError("switch_margin must be non-negative")
        if not 0.0 < self.bin_width <= 1.0:
            raise ValueError(f"bin_width must be within (0, 1], got {self.bin_width}")
        if self.distance_threshold < 0.0:
            raise ValueError("distance_threshold must be non-negative")
        if self.scheduler_overhead_s < 0.0:
            raise ValueError("scheduler_overhead_s must be non-negative")
        if self.scheduler_overhead_power_w <= 0.0:
            raise ValueError("scheduler_overhead_power_w must be positive")

    @property
    def weights(self) -> tuple[float, float, float]:
        """The (accuracy, energy, latency) knob tuple of Algorithm 1."""
        return (self.knob_accuracy, self.knob_energy, self.knob_latency)


# The exact configuration behind Table III.
PAPER_CONFIG = ShiftConfig()
