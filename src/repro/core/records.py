"""Per-frame records and per-run results.

These are the vocabulary types every policy speaks: the runner, the
metric pipeline, the stores, and every baseline exchange
:class:`FrameRecord` and :class:`RunResult`.  They live in ``core`` (below
``runtime`` in the layer order) so that policy implementations never need
to reach *up* into the runtime tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vision.bbox import BoundingBox


@dataclass(frozen=True)
class FrameRecord:
    """Everything a policy did and observed on one frame.

    ``latency_s`` is the end-to-end frame processing time (inference +
    scheduler overhead + any load stall); ``energy_j`` the matching energy
    (inference + loads + overhead).  ``swap`` marks a (model, accelerator)
    pair change relative to the previous frame; ``cold_load`` marks frames
    that stalled on a synchronous model load.
    """

    frame_index: int
    model_name: str
    accelerator_name: str
    box: BoundingBox | None
    confidence: float
    iou: float
    ground_truth_present: bool
    detected: bool
    latency_s: float
    inference_s: float
    stall_s: float
    overhead_s: float
    energy_j: float
    swap: bool
    cold_load: bool
    used_tracker: bool = False
    rescheduled: bool = False
    similarity: float = 0.0

    @property
    def pair(self) -> tuple[str, str]:
        """The (model, accelerator) pair charged for this frame."""
        return (self.model_name, self.accelerator_name)

    @property
    def success(self) -> bool:
        """Paper's success criterion: IoU >= 0.5."""
        return self.iou >= 0.5

    @property
    def non_gpu(self) -> bool:
        """True when the frame executed off the GPU."""
        return self.accelerator_name != "gpu"


@dataclass
class RunResult:
    """One policy's full pass over one scenario."""

    policy_name: str
    scenario_name: str
    records: list[FrameRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.policy_name:
            raise ValueError("policy_name must be non-empty")

    @property
    def frame_count(self) -> int:
        """Frames processed."""
        return len(self.records)

    def pairs_used(self) -> set[tuple[str, str]]:
        """Distinct (model, accelerator) pairs that executed."""
        return {record.pair for record in self.records}
