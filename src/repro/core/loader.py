"""Dynamic model loader (paper §III-C).

The DML owns model residency on every accelerator:

* On a scheduling decision it guarantees the requested model is loaded,
  synchronously if needed (the pipeline stalls for the load and pays its
  energy), evicting the **least recently requested** models when memory is
  tight.
* It "attempts to occupy the entire memory with ODMs": after a swap it can
  prefetch further candidate models into *free* memory in the background —
  energy is charged, but the pipeline does not stall, and a later switch to
  a prefetched model is free once its load has completed in virtual time.
* Accelerators are handled separately — they do not share memory, and a
  model can only be placed on an accelerator that can execute it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.accelerator import Accelerator
from ..sim.engine import ExecutionEngine
from ..sim.memory import OutOfMemoryError
from ..sim.profiles import load_cost
from ..sim.soc import SoC
from .traits import Pair


@dataclass(frozen=True)
class LoadOutcome:
    """What one ``ensure_loaded`` call cost."""

    pair: Pair
    stall_s: float
    energy_j: float
    cold_load: bool  # a synchronous load happened
    evicted: tuple[Pair, ...] = ()


@dataclass
class _Residency:
    """Bookkeeping for one loaded (model, accelerator) pair."""

    pair: Pair
    ready_at: float  # virtual time at which the engine becomes usable
    last_requested: float = field(default=0.0)


class DynamicModelLoader:
    """LRU model residency manager over the SoC's memory pools."""

    def __init__(self, soc: SoC, engine: ExecutionEngine, naive: bool = False) -> None:
        self.soc = soc
        self.engine = engine
        # Naive mode (ablation): at most one model resident per accelerator,
        # i.e. no warm-engine cache — every model change is a cold load.
        self.naive = naive
        self._resident: dict[Pair, _Residency] = {}
        self._cold_loads = 0
        self._prefetch_loads = 0
        self._evictions = 0

    # ----------------------------------------------------------- queries

    def is_resident(self, pair: Pair) -> bool:
        """True when the pair is loaded (possibly still warming up)."""
        return pair in self._resident

    def is_ready(self, pair: Pair) -> bool:
        """True when the pair is loaded and its load has completed."""
        residency = self._resident.get(pair)
        return residency is not None and residency.ready_at <= self.soc.clock.now

    def resident_pairs(self) -> list[Pair]:
        """All currently loaded pairs, sorted."""
        return sorted(self._resident)

    @property
    def cold_load_count(self) -> int:
        """Synchronous (pipeline-stalling) loads so far."""
        return self._cold_loads

    @property
    def prefetch_load_count(self) -> int:
        """Background loads so far."""
        return self._prefetch_loads

    @property
    def eviction_count(self) -> int:
        """Models evicted so far."""
        return self._evictions

    # ------------------------------------------------------------- core

    def ensure_loaded_cost(self, pair: Pair) -> tuple[float, float, bool]:
        """``(stall_s, energy_j, cold_load)`` of making ``pair`` executable.

        The fast run tier's warm-hit path: a ready resident model costs
        nothing, so no :class:`LoadOutcome` is built and no accelerator
        re-validation runs (residency implies the pair was validated when
        it loaded).  Cold and in-flight cases delegate to
        :meth:`ensure_loaded` — identical state transitions either way.
        """
        residency = self._resident.get(pair)
        if residency is not None and residency.ready_at <= self.soc.clock.now:
            residency.last_requested = self.soc.clock.now
            return (0.0, 0.0, False)
        outcome = self.ensure_loaded(pair)
        return (outcome.stall_s, outcome.energy_j, outcome.cold_load)

    def ensure_loaded(self, pair: Pair) -> LoadOutcome:
        """Make ``pair`` executable now; returns the stall/energy incurred."""
        model_name, accel_name = pair
        accelerator = self.soc.accelerator(accel_name)
        if not accelerator.supports(model_name):
            raise ValueError(
                f"model {model_name!r} cannot execute on accelerator {accel_name!r}"
            )
        now = self.soc.clock.now
        residency = self._resident.get(pair)
        if residency is not None:
            residency.last_requested = now
            if residency.ready_at <= now:
                return LoadOutcome(pair=pair, stall_s=0.0, energy_j=0.0, cold_load=False)
            # Prefetch still in flight: stall until it completes.  The load
            # energy was charged when the prefetch was issued.
            stall = residency.ready_at - now
            self.soc.clock.advance(stall)
            return LoadOutcome(pair=pair, stall_s=stall, energy_j=0.0, cold_load=False)

        if self.naive:
            for stale in [p for p in self._resident if p[1] == accel_name]:
                self.evict(stale)
        evicted = self._make_room(accelerator, model_name)
        record = self.engine.run_load(model_name, accelerator)  # advances clock
        accelerator.memory.allocate(model_name, record.memory_mb)
        self._resident[pair] = _Residency(
            pair=pair, ready_at=self.soc.clock.now, last_requested=self.soc.clock.now
        )
        self._cold_loads += 1
        return LoadOutcome(
            pair=pair,
            stall_s=record.load_time_s,
            energy_j=record.energy_j,
            cold_load=True,
            evicted=tuple(evicted),
        )

    def _make_room(self, accelerator: Accelerator, model_name: str) -> list[Pair]:
        """Evict least-recently-requested models until the load fits."""
        needed = load_cost(model_name, accelerator.accel_class).memory_mb
        if needed > accelerator.memory.capacity_mb:
            raise OutOfMemoryError(
                f"model {model_name!r} ({needed:.0f} MB) can never fit accelerator "
                f"{accelerator.name!r} ({accelerator.memory.capacity_mb:.0f} MB)"
            )
        evicted: list[Pair] = []
        while not accelerator.memory.can_fit(needed):
            victim = self._lru_victim(accelerator.name)
            if victim is None:
                raise OutOfMemoryError(
                    f"accelerator {accelerator.name!r} cannot free enough memory "
                    f"for {model_name!r}"
                )
            self.evict(victim)
            evicted.append(victim)
        return evicted

    def _lru_victim(self, accel_name: str) -> Pair | None:
        candidates = [
            residency
            for pair, residency in self._resident.items()
            if pair[1] == accel_name
        ]
        if not candidates:
            return None
        oldest = min(candidates, key=lambda r: (r.last_requested, r.pair))
        return oldest.pair

    def evict(self, pair: Pair) -> None:
        """Remove one model from its accelerator's memory."""
        if pair not in self._resident:
            raise KeyError(f"pair {pair!r} is not resident")
        del self._resident[pair]
        self.soc.accelerator(pair[1]).memory.free(pair[0])
        self._evictions += 1

    # --------------------------------------------------------- prefetch

    def prefetch(self, ranked_pairs: list[Pair]) -> list[Pair]:
        """Fill *free* memory with the highest-ranked absent models.

        Prefetching never evicts (evicting on speculation would defeat the
        LRU policy); it only uses memory that is currently free.  Energy is
        charged immediately; the model becomes ready ``load_time`` later in
        virtual time without stalling the pipeline.
        """
        if self.naive:
            return []
        started: list[Pair] = []
        for pair in ranked_pairs:
            model_name, accel_name = pair
            if pair in self._resident:
                continue
            accelerator = self.soc.accelerator(accel_name)
            if not accelerator.supports(model_name):
                continue
            footprint = load_cost(model_name, accelerator.accel_class).memory_mb
            if not accelerator.memory.can_fit(footprint):
                continue
            record = self.engine.run_load(model_name, accelerator, advance_clock=False)
            accelerator.memory.allocate(model_name, record.memory_mb)
            self._resident[pair] = _Residency(
                pair=pair,
                ready_at=self.soc.clock.now + record.load_time_s,
                last_requested=self.soc.clock.now,
            )
            self._prefetch_loads += 1
            started.append(pair)
        return started

    # ------------------------------------------------------------ reset

    def reset(self) -> None:
        """Unload everything and zero the counters."""
        for pair in list(self._resident):
            self.evict(pair)
        self._cold_loads = 0
        self._prefetch_loads = 0
        self._evictions = 0
