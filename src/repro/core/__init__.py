"""SHIFT core: confidence graph, scheduler, loader, pipeline."""

from .confidence_graph import (
    DEFAULT_BIN_WIDTH,
    DEFAULT_DISTANCE_THRESHOLD,
    ConfidenceGraph,
    Prediction,
)
from .config import PAPER_CONFIG, ShiftConfig
from .context import ContextDetector
from .loader import DynamicModelLoader, LoadOutcome
from .pipeline import ShiftPipeline
from .policy import Policy, RuntimeServices
from .presets import config_for_objective, objective_names
from .records import FrameRecord, RunResult
from .scheduler import SchedulingDecision, ShiftScheduler
from .traits import Pair, PairTraits, TraitTable

__all__ = [
    "Policy",
    "RuntimeServices",
    "FrameRecord",
    "RunResult",
    "config_for_objective",
    "objective_names",
    "ConfidenceGraph",
    "Prediction",
    "DEFAULT_BIN_WIDTH",
    "DEFAULT_DISTANCE_THRESHOLD",
    "ShiftConfig",
    "PAPER_CONFIG",
    "ContextDetector",
    "DynamicModelLoader",
    "LoadOutcome",
    "ShiftPipeline",
    "ShiftScheduler",
    "SchedulingDecision",
    "TraitTable",
    "PairTraits",
    "Pair",
]
