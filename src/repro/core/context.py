"""Context detection: when has the input stream changed? (paper §III-B)

The SHIFT scheduler re-evaluates its model choice only when the context
shifts.  The signal is ``min(NCC(previous frame, frame), NCC(previous
detection crop, detection crop))`` — cheap enough for every frame, and
sensitive to both global scene changes and local target changes (including
the target vanishing while the model keeps reporting high confidence).
"""

from __future__ import annotations

import numpy as np

from ..vision.bbox import BoundingBox
from ..vision.ncc import frame_similarity


class ContextDetector:
    """Tracks the previous frame/detection and scores similarity."""

    def __init__(self) -> None:
        self._previous_image: np.ndarray | None = None
        self._previous_box: BoundingBox | None = None

    @property
    def primed(self) -> bool:
        """True once at least one frame has been observed."""
        return self._previous_image is not None

    def reset(self) -> None:
        """Forget all history (start of a new stream)."""
        self._previous_image = None
        self._previous_box = None

    def similarity(self, image: np.ndarray, box: BoundingBox | None) -> float:
        """Similarity of the incoming frame to the previous one, in [0, 1].

        The first frame of a stream has no history and scores 0.0 — by
        construction a context change, which forces the scheduler to make
        an initial decision.
        """
        if self._previous_image is None:
            return 0.0
        return frame_similarity(self._previous_image, image, self._previous_box, box)

    def observe(self, image: np.ndarray, box: BoundingBox | None) -> None:
        """Record the processed frame and its detection for the next call."""
        self._previous_image = image
        self._previous_box = box
