"""Configuration presets for common deployment objectives.

The paper describes the scheduler as adaptable "to specific system
constraints by targeting model accuracy, latency, or energy consumption".
These presets encode the three targets plus the exact Table III operating
point, so integrators start from a sane knob vector instead of guessing.
"""

from __future__ import annotations

from .config import ShiftConfig

# Objective name -> (knob_accuracy, knob_energy, knob_latency, accuracy_goal)
_PRESETS: dict[str, tuple[float, float, float, float]] = {
    # The paper's Table III operating point.
    "paper": (1.0, 0.5, 0.5, 0.25),
    # Maximize detection quality; cost is secondary.
    "accuracy": (1.5, 0.2, 0.2, 0.40),
    # Battery-constrained platforms: accuracy goal low, energy dominant.
    "energy": (0.6, 1.5, 0.3, 0.20),
    # Deadline-driven pipelines (e.g. obstacle avoidance): latency dominant.
    "latency": (0.6, 0.3, 1.5, 0.20),
    # Even split, for exploration.
    "balanced": (1.0, 1.0, 1.0, 0.25),
}


def objective_names() -> list[str]:
    """Names accepted by :func:`config_for_objective`."""
    return sorted(_PRESETS)


def config_for_objective(objective: str, **overrides) -> ShiftConfig:
    """A :class:`ShiftConfig` tuned for one deployment objective.

    ``overrides`` are forwarded to :class:`ShiftConfig`, so any field
    (momentum, distance threshold, ablation switches, ...) can still be
    customized on top of the preset knobs.
    """
    try:
        knob_accuracy, knob_energy, knob_latency, goal = _PRESETS[objective]
    except KeyError:
        known = ", ".join(objective_names())
        raise KeyError(f"unknown objective {objective!r}; known objectives: {known}") from None
    params = {
        "knob_accuracy": knob_accuracy,
        "knob_energy": knob_energy,
        "knob_latency": knob_latency,
        "accuracy_goal": goal,
    }
    params.update(overrides)
    return ShiftConfig(**params)
