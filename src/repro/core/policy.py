"""Policy protocol: how continuous-detection strategies plug into the runner.

A policy processes frames one at a time against a set of runtime services
(the SoC, its execution engine, and the scenario trace that stands in for
real camera frames + real inference).  SHIFT, the single-model baselines,
Marlin, and the Oracles all implement this interface, so the runner and the
metric pipeline treat them identically.

The protocol lives in ``core`` (below ``runtime`` in the layer order):
policies are implemented in ``core`` and ``baselines``, and neither may
import upward into the runtime tier.  The :class:`RuntimeServices` trace
field is typed against :class:`~repro.runtime.trace.ScenarioTrace` for
tooling only — the annotation is never evaluated at import time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..data.generator import Frame
from ..sim.engine import ExecutionEngine
from ..sim.soc import SoC
from .records import FrameRecord

if TYPE_CHECKING:  # typing-only: keeps core below runtime in the import graph
    from ..runtime.trace import ScenarioTrace


@dataclass
class RuntimeServices:
    """Everything a policy may touch while running a scenario.

    ``fast`` marks a fast-tier run: the engine pre-plans its jitter
    stream, and policies that support it (SHIFT, Marlin) serve the
    policy-independent half of their context signals from trace-level
    caches instead of recomputing per frame.  Results are bit-identical
    either way — the differential harness's ``fastrun`` check enforces
    full :class:`~repro.core.records.FrameRecord` equality.
    """

    trace: ScenarioTrace
    soc: SoC
    engine: ExecutionEngine
    fast: bool = False


class Policy(ABC):
    """A continuous object-detection strategy."""

    #: Human-readable policy name used in tables and plots.
    name: str = "policy"

    @abstractmethod
    def begin(self, services: RuntimeServices) -> None:
        """Reset internal state for a fresh run over one scenario."""

    @abstractmethod
    def step(self, frame: Frame) -> FrameRecord:
        """Process one frame and account for its time and energy."""

    def fingerprint(self) -> str:
        """Content-addressed identity of this policy's configuration.

        The run store keys persisted results by this digest, so it must
        cover *everything* that can change the policy's frame records —
        model choices, thresholds, scheduler knobs, characterization
        inputs.  The base class deliberately has no default: a policy
        that does not define its identity is simply never cached (the
        runner treats :class:`NotImplementedError` as "skip the store").
        """
        raise NotImplementedError(
            f"policy {self.name!r} defines no fingerprint; runs cannot be persisted"
        )
